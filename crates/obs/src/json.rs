//! Minimal hand-rolled JSON formatting and scanning.
//!
//! The build environment is fully offline and the vendored `serde` is a
//! marker-trait stub, so every JSON byte this workspace emits is written by
//! hand. This module centralizes the two halves the telemetry layer needs:
//! formatting `f64`s so they round-trip (and never emit invalid tokens like
//! `NaN`), and a tiny flat-object key scanner for reading journal lines back
//! in tests and validation tools.

use std::fmt::Write as _;

/// Formats an `f64` as a JSON value.
///
/// Uses the shortest round-trip representation; non-finite values become
/// `null` (JSON has no NaN/Infinity tokens).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Appends `"key":value` (plus a leading comma unless first) to `out`.
pub fn push_f64_field(out: &mut String, first: &mut bool, key: &str, v: f64) {
    push_sep(out, first);
    let _ = write!(out, "\"{key}\":{}", fmt_f64(v));
}

/// Appends an unsigned integer field.
pub fn push_u64_field(out: &mut String, first: &mut bool, key: &str, v: u64) {
    push_sep(out, first);
    let _ = write!(out, "\"{key}\":{v}");
}

/// Appends a JSON-escaped string field.
pub fn push_str_field(out: &mut String, first: &mut bool, key: &str, v: &str) {
    push_sep(out, first);
    let _ = write!(out, "\"{key}\":");
    push_json_string(out, v);
}

/// Appends a raw (pre-rendered) field value, e.g. an array or `null`.
pub fn push_raw_field(out: &mut String, first: &mut bool, key: &str, raw: &str) {
    push_sep(out, first);
    let _ = write!(out, "\"{key}\":{raw}");
}

/// Appends a JSON string literal with the escapes JSON requires.
pub fn push_json_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns the raw text of `"key":<value>` in a flat JSON object, or `None`
/// if the key is absent.
///
/// Only intended for the flat objects this crate itself emits (no nested
/// objects behind the scanned key, values are numbers, `null`, or flat
/// arrays of numbers).
#[must_use]
pub fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' if depth > 0 => depth -= 1,
            ',' | '}' | ']' if depth == 0 => return Some(rest[..i].trim()),
            _ => {}
        }
    }
    None
}

/// Scans a finite `f64` value for `key`; `null` and absence return `None`.
#[must_use]
pub fn scan_f64(json: &str, key: &str) -> Option<f64> {
    let raw = raw_value(json, key)?;
    if raw == "null" {
        return None;
    }
    raw.parse().ok()
}

/// Scans a `u64` value for `key`.
#[must_use]
pub fn scan_u64(json: &str, key: &str) -> Option<u64> {
    raw_value(json, key)?.parse().ok()
}

/// Scans a flat array of `f64`s for `key`.
#[must_use]
pub fn scan_f64_array(json: &str, key: &str) -> Option<Vec<f64>> {
    let raw = raw_value(json, key)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<f64>>>()
}

/// Returns the raw text of a nested `{...}` object value for `key`
/// (braces included), or `None` if the key is absent or its value is not
/// an object. Brace-matches with string awareness, so object values may
/// contain string fields.
#[must_use]
pub fn scan_raw_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&rest[..=i]);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_shortest() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(1e-9), "1e-9");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let v = 0.123_456_789_012_345_67_f64;
        let parsed: f64 = fmt_f64(v).parse().unwrap();
        assert_eq!(parsed.to_bits(), v.to_bits());
    }

    #[test]
    fn scanner_reads_back_fields() {
        let mut s = String::from("{");
        let mut first = true;
        push_u64_field(&mut s, &mut first, "point", 3);
        push_f64_field(&mut s, &mut first, "tau_s", 1.25e-10);
        push_raw_field(&mut s, &mut first, "level", "null");
        push_raw_field(&mut s, &mut first, "tangent", "[0.5,-0.25]");
        push_str_field(&mut s, &mut first, "note", "a \"b\"\n");
        s.push('}');
        assert_eq!(scan_u64(&s, "point"), Some(3));
        assert_eq!(scan_f64(&s, "tau_s"), Some(1.25e-10));
        assert_eq!(scan_f64(&s, "level"), None);
        assert_eq!(scan_f64_array(&s, "tangent"), Some(vec![0.5, -0.25]));
        assert_eq!(raw_value(&s, "note"), Some("\"a \\\"b\\\"\\n\""));
        assert_eq!(scan_u64(&s, "missing"), None);
    }

    #[test]
    fn scan_raw_object_brace_matches_nested_values() {
        let s = "{\"a\":1,\"phases\":{\"newton\":{\"self_ns\":12,\"count\":3},\"note\":\"x}y\"},\"b\":2}";
        assert_eq!(
            scan_raw_object(s, "phases"),
            Some("{\"newton\":{\"self_ns\":12,\"count\":3},\"note\":\"x}y\"}")
        );
        assert_eq!(scan_raw_object(s, "a"), None, "number is not an object");
        assert_eq!(scan_raw_object(s, "missing"), None);
        assert_eq!(scan_u64(s, "b"), Some(2), "later keys still scannable");
    }

    #[test]
    fn scanner_stops_at_object_end() {
        let s = "{\"a\":1}";
        assert_eq!(scan_u64(s, "a"), Some(1));
    }
}
