//! The fixed metric and span taxonomies.
//!
//! Both enums are closed sets so the collector can back every series with a
//! fixed-size atomic array: recording a sample is a couple of relaxed
//! `fetch_add`s, never an allocation or a lock.

/// A monotonically increasing counter (optionally with a log-scale
/// histogram of per-observation values, see [`crate::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Completed transient runs (calibration + characterization).
    TransientRuns,
    /// Accepted integration steps across all transient runs.
    TransientSteps,
    /// Inner Newton iterations across all transient steps.
    NewtonIterations,
    /// Steps rejected by the local-truncation-error controller.
    LteRejections,
    /// Fresh LU factorizations (allocating).
    LuFactorizations,
    /// In-place LU refactorizations (allocation-free).
    LuRefactors,
    /// LU forward/back substitutions.
    LuSolves,
    /// Moore-Penrose pseudo-inverse solves (MPNR corrector steps).
    PinvSolves,
    /// Dense matrix buffer allocations (mirrors
    /// `shc_linalg::matrix_allocations`).
    MatrixAllocations,
    /// MPNR corrector invocations.
    MpnrSolves,
    /// MPNR corrector iterations (histogram: iterations per solve).
    MpnrIterations,
    /// MPNR solves that failed to converge.
    MpnrFailures,
    /// Predictor step-length (alpha) adaptations in the tracer.
    AlphaAdaptations,
    /// Contour points successfully traced.
    ContourPoints,
    /// Journal events emitted to the sink.
    JournalEvents,
    /// Faults injected by an installed `shc-fault` plan.
    FaultsInjected,
    /// Newton solves rescued by the jittered damped-retry policy.
    NewtonRecoveries,
    /// Tracer restarts after the step-halving ladder was exhausted.
    TracerRestarts,
    /// Corrector divergences rescued by the bisection-on-`h` fallback.
    MpnrFallbacks,
    /// Trace checkpoints written for `--resume`.
    CheckpointsWritten,
    /// Sparse-LU symbolic analyses (fill-reducing ordering + pattern).
    SparseAnalyses,
    /// Sparse-LU fresh numeric factorizations (allocating).
    SparseFactors,
    /// Sparse-LU value-only refactorizations (allocation-free).
    SparseRefactors,
    /// Sparse-LU forward/back substitutions.
    SparseSolves,
    /// Fill-in produced by symbolic analysis (histogram: nnz(L+U) −
    /// nnz(A) per analysis).
    SparseFillNnz,
}

impl Metric {
    /// Number of metric variants; sizes the collector's atomic arrays.
    pub const COUNT: usize = 25;

    /// All variants, in `repr` order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::TransientRuns,
        Metric::TransientSteps,
        Metric::NewtonIterations,
        Metric::LteRejections,
        Metric::LuFactorizations,
        Metric::LuRefactors,
        Metric::LuSolves,
        Metric::PinvSolves,
        Metric::MatrixAllocations,
        Metric::MpnrSolves,
        Metric::MpnrIterations,
        Metric::MpnrFailures,
        Metric::AlphaAdaptations,
        Metric::ContourPoints,
        Metric::JournalEvents,
        Metric::FaultsInjected,
        Metric::NewtonRecoveries,
        Metric::TracerRestarts,
        Metric::MpnrFallbacks,
        Metric::CheckpointsWritten,
        Metric::SparseAnalyses,
        Metric::SparseFactors,
        Metric::SparseRefactors,
        Metric::SparseSolves,
        Metric::SparseFillNnz,
    ];

    /// Stable snake_case name used in reports and JSON output.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Metric::TransientRuns => "transient_runs",
            Metric::TransientSteps => "transient_steps",
            Metric::NewtonIterations => "newton_iterations",
            Metric::LteRejections => "lte_rejections",
            Metric::LuFactorizations => "lu_factorizations",
            Metric::LuRefactors => "lu_refactors",
            Metric::LuSolves => "lu_solves",
            Metric::PinvSolves => "pinv_solves",
            Metric::MatrixAllocations => "matrix_allocations",
            Metric::MpnrSolves => "mpnr_solves",
            Metric::MpnrIterations => "mpnr_iterations",
            Metric::MpnrFailures => "mpnr_failures",
            Metric::AlphaAdaptations => "alpha_adaptations",
            Metric::ContourPoints => "contour_points",
            Metric::JournalEvents => "journal_events",
            Metric::FaultsInjected => "faults_injected",
            Metric::NewtonRecoveries => "newton_recoveries",
            Metric::TracerRestarts => "tracer_restarts",
            Metric::MpnrFallbacks => "mpnr_fallbacks",
            Metric::CheckpointsWritten => "checkpoints_written",
            Metric::SparseAnalyses => "sparse_analyses",
            Metric::SparseFactors => "sparse_factors",
            Metric::SparseRefactors => "sparse_refactors",
            Metric::SparseSolves => "sparse_solves",
            Metric::SparseFillNnz => "sparse_fill_nnz",
        }
    }
}

/// A timed region of the solver stack.
///
/// Spans nest: the collector records wall-clock time per `(parent, child)`
/// edge, so e.g. transient time spent under the MPNR corrector is separated
/// from transient time spent during calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpanKind {
    /// Whole CLI invocation.
    CliRun,
    /// Problem-builder reference (calibration) simulation.
    Calibration,
    /// First-point search (hold bisection + setup bracketing + polish).
    Seed,
    /// One Euler-Newton contour trace.
    Trace,
    /// One MPNR corrector solve.
    MpnrSolve,
    /// One transient simulation run.
    Transient,
    /// Brute-force surface generation sweep.
    Surface,
    /// Monte Carlo sweep.
    MonteCarlo,
    /// PVT corner sweep.
    Corners,
    /// Batch contour tracing over degradation levels.
    TraceBatch,
    /// One sparse-LU symbolic analysis (cold, once per topology).
    SparseAnalyze,
}

impl SpanKind {
    /// Number of span variants; sizes the collector's edge matrices.
    pub const COUNT: usize = 11;

    /// All variants, in `repr` order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::CliRun,
        SpanKind::Calibration,
        SpanKind::Seed,
        SpanKind::Trace,
        SpanKind::MpnrSolve,
        SpanKind::Transient,
        SpanKind::Surface,
        SpanKind::MonteCarlo,
        SpanKind::Corners,
        SpanKind::TraceBatch,
        SpanKind::SparseAnalyze,
    ];

    /// Stable snake_case name used in reports and JSON output.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::CliRun => "cli_run",
            SpanKind::Calibration => "calibration",
            SpanKind::Seed => "seed",
            SpanKind::Trace => "trace",
            SpanKind::MpnrSolve => "mpnr_solve",
            SpanKind::Transient => "transient",
            SpanKind::Surface => "surface",
            SpanKind::MonteCarlo => "monte_carlo",
            SpanKind::Corners => "corners",
            SpanKind::TraceBatch => "trace_batch",
            SpanKind::SparseAnalyze => "sparse_analyze",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_all_matches_repr_order() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "{}", m.name());
        }
    }

    #[test]
    fn span_all_matches_repr_order() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{}", k.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.extend(SpanKind::ALL.iter().map(|k| k.name()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
