//! The collector: shared atomic storage plus a thread-local installation.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Every recording entry point first reads a
//!    thread-local `Cell<bool>`; with no collector installed that is the
//!    entire cost, so instrumentation can live inside the allocation-free
//!    transient hot loop.
//! 2. **Thread-aware.** Storage is `Arc`-shared atomics, so the worker
//!    threads spawned by `parallel::run_indexed` feed the same collector
//!    once it is re-installed on them (the parallel layer captures
//!    [`current`] and installs it per worker).
//! 3. **Test isolation.** Installation is thread-local and scoped, so
//!    concurrent tests in one binary never observe each other's metrics.

use std::cell::{Cell, RefCell};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::journal::{JournalEvent, Sink};
use crate::metric::{Metric, SpanKind};
use crate::snapshot::{MetricsSnapshot, SpanEdge, HIST_BUCKETS};

/// Span edge matrix rows: one per possible parent, plus one for "no
/// parent" (root spans), indexed [`ROOT_ROW`].
const EDGE_ROWS: usize = SpanKind::COUNT + 1;
const ROOT_ROW: usize = SpanKind::COUNT;

struct Inner {
    counters: [AtomicU64; Metric::COUNT],
    histograms: [[AtomicU64; HIST_BUCKETS]; Metric::COUNT],
    edge_count: [[AtomicU64; SpanKind::COUNT]; EDGE_ROWS],
    edge_ns: [[AtomicU64; SpanKind::COUNT]; EDGE_ROWS],
    sink: Option<Arc<dyn Sink>>,
}

impl Inner {
    fn new(sink: Option<Arc<dyn Sink>>) -> Inner {
        Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            edge_count: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            edge_ns: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            sink,
        }
    }
}

/// Handle to a telemetry collector; cheap to clone (an `Arc`).
///
/// A collector does nothing until installed on a thread with
/// [`install_scoped`]; recording goes through the free functions
/// ([`count`], [`observe`], [`span`], [`journal`]).
#[derive(Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("has_sink", &self.inner.sink.is_some())
            .finish()
    }
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// Creates a collector with no journal sink (counters and spans only).
    #[must_use]
    pub fn new() -> Collector {
        Collector {
            inner: Arc::new(Inner::new(None)),
        }
    }

    /// Creates a collector that forwards journal events to `sink`.
    #[must_use]
    pub fn with_sink(sink: Arc<dyn Sink>) -> Collector {
        Collector {
            inner: Arc::new(Inner::new(Some(sink))),
        }
    }

    /// Current value of one counter.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.inner.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Flushes the journal sink, if any.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    /// Takes a consistent-enough snapshot of all metrics for reporting.
    ///
    /// Individual loads are relaxed; call this after the instrumented work
    /// has joined (the sweeps all join their workers before returning).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = std::array::from_fn(|i| self.inner.counters[i].load(Ordering::Relaxed));
        let histograms = std::array::from_fn(|i| {
            std::array::from_fn(|b| self.inner.histograms[i][b].load(Ordering::Relaxed))
        });
        let mut spans = Vec::new();
        for parent_row in 0..EDGE_ROWS {
            for child in 0..SpanKind::COUNT {
                let count = self.inner.edge_count[parent_row][child].load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                spans.push(SpanEdge {
                    parent: (parent_row != ROOT_ROW).then(|| SpanKind::ALL[parent_row]),
                    kind: SpanKind::ALL[child],
                    count,
                    nanos: self.inner.edge_ns[parent_row][child].load(Ordering::Relaxed),
                });
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
            spans,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SPAN_STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    static JOURNAL_LEVEL: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The journal level (degradation-level index) in effect on this thread.
///
/// Batch sweeps set it per job with [`with_journal_level`]; the tracer
/// stamps it into every event so batch journals stay attributable.
#[must_use]
pub fn journal_level() -> Option<u64> {
    JOURNAL_LEVEL.with(Cell::get)
}

/// Tags journal events emitted on this thread with `level` until the
/// guard drops.
#[must_use]
pub fn with_journal_level(level: u64) -> LevelGuard {
    LevelGuard {
        previous: JOURNAL_LEVEL.with(|l| l.replace(Some(level))),
    }
}

/// Restores the previous journal level on drop.
pub struct LevelGuard {
    previous: Option<u64>,
}

impl Drop for LevelGuard {
    fn drop(&mut self) {
        JOURNAL_LEVEL.with(|l| l.set(self.previous));
    }
}

/// True when a collector is installed on this thread.
///
/// This is the hot-path gate: a single thread-local `Cell<bool>` read.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// The collector installed on this thread, if any.
///
/// Captured by the parallel layer before spawning workers so telemetry
/// follows the work onto its threads.
#[must_use]
pub fn current() -> Option<Collector> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `collector` on the current thread until the guard drops.
///
/// Nested installs are allowed; the previous collector (and its span
/// stack) is restored on drop.
#[must_use]
pub fn install_scoped(collector: &Collector) -> InstallGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(collector.clone()));
    let was_enabled = ENABLED.with(|e| e.replace(true));
    let stack_depth = SPAN_STACK.with(|s| s.borrow().len());
    InstallGuard {
        previous,
        was_enabled,
        stack_depth,
    }
}

/// Restores the previous thread-local collector state on drop.
pub struct InstallGuard {
    previous: Option<Collector>,
    was_enabled: bool,
    stack_depth: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| s.borrow_mut().truncate(self.stack_depth));
        ENABLED.with(|e| e.set(self.was_enabled));
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

#[inline]
fn with_current(f: impl FnOnce(&Collector)) {
    CURRENT.with(|c| {
        if let Some(collector) = c.borrow().as_ref() {
            f(collector);
        }
    });
}

/// Adds `n` to `metric`'s counter. A no-op when telemetry is off.
#[inline]
pub fn count(metric: Metric, n: u64) {
    if !enabled() {
        return;
    }
    with_current(|c| {
        c.inner.counters[metric as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Adds `value` to `metric`'s counter and records it in the metric's
/// log2-bucket histogram. A no-op when telemetry is off.
#[inline]
pub fn observe(metric: Metric, value: u64) {
    if !enabled() {
        return;
    }
    with_current(|c| {
        let i = metric as usize;
        c.inner.counters[i].fetch_add(value, Ordering::Relaxed);
        c.inner.histograms[i][crate::snapshot::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    });
}

/// Opens a timed span; close it by dropping the guard.
///
/// Time is attributed to the `(parent, kind)` edge, where the parent is
/// the innermost span already open *on this thread* (worker threads start
/// with an empty stack, so their outermost spans report as roots).
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    if !enabled() {
        return SpanGuard { state: None };
    }
    let parent_row = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(ROOT_ROW);
        stack.push(kind as usize);
        parent
    });
    // This is the one sanctioned wall-clock read: spans are where all
    // timing in the workspace is supposed to come from (clippy.toml).
    #[allow(clippy::disallowed_methods)]
    SpanGuard {
        state: Some(SpanState {
            kind,
            parent_row,
            start: Instant::now(),
        }),
    }
}

struct SpanState {
    kind: SpanKind,
    parent_row: usize,
    start: Instant,
}

/// RAII guard for a span; records elapsed time when dropped.
#[must_use = "a span measures the time until this guard drops"]
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let elapsed = state.start.elapsed();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        with_current(|c| {
            let child = state.kind as usize;
            c.inner.edge_count[state.parent_row][child].fetch_add(1, Ordering::Relaxed);
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            c.inner.edge_ns[state.parent_row][child].fetch_add(ns, Ordering::Relaxed);
        });
    }
}

/// Emits a journal event to the installed collector's sink (if any) and
/// bumps [`Metric::JournalEvents`]. A no-op when telemetry is off.
pub fn journal(event: &JournalEvent) {
    if !enabled() {
        return;
    }
    with_current(|c| {
        c.inner.counters[Metric::JournalEvents as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &c.inner.sink {
            sink.record(event);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemorySink;

    fn event(point: u64) -> JournalEvent {
        JournalEvent {
            point,
            level: None,
            tau_s: 0.0,
            tau_h: 0.0,
            residual: 0.0,
            jacobian_norm: 1.0,
            tangent: [1.0, 0.0],
            corrector_iterations: 1,
            alpha: 1.0,
            transient_steps: 0,
            newton_iterations: 0,
            rejected_steps: 0,
            recovery_attempts: 0,
            phases: None,
        }
    }

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!enabled());
        count(Metric::TransientRuns, 5);
        observe(Metric::MpnrIterations, 3);
        let _span = span(SpanKind::Trace);
        journal(&event(0));
        assert!(current().is_none());
    }

    #[test]
    fn install_scoped_gates_and_restores() {
        let collector = Collector::new();
        {
            let _guard = install_scoped(&collector);
            assert!(enabled());
            count(Metric::TransientRuns, 2);
            count(Metric::TransientRuns, 1);
            observe(Metric::MpnrIterations, 4);
        }
        assert!(!enabled());
        count(Metric::TransientRuns, 100); // dropped: guard gone
        assert_eq!(collector.counter(Metric::TransientRuns), 3);
        assert_eq!(collector.counter(Metric::MpnrIterations), 4);
        let snap = collector.snapshot();
        assert_eq!(snap.counter(Metric::TransientRuns), 3);
        assert_eq!(snap.histogram(Metric::MpnrIterations)[3], 1); // 4 -> [4,8)
    }

    #[test]
    fn nested_install_restores_outer_collector() {
        let outer = Collector::new();
        let inner = Collector::new();
        let _g1 = install_scoped(&outer);
        {
            let _g2 = install_scoped(&inner);
            count(Metric::ContourPoints, 1);
        }
        count(Metric::ContourPoints, 10);
        assert_eq!(inner.counter(Metric::ContourPoints), 1);
        assert_eq!(outer.counter(Metric::ContourPoints), 10);
    }

    #[test]
    fn spans_record_parent_child_edges() {
        let collector = Collector::new();
        let _guard = install_scoped(&collector);
        {
            let _outer = span(SpanKind::Trace);
            {
                let _inner = span(SpanKind::MpnrSolve);
            }
            {
                let _inner = span(SpanKind::MpnrSolve);
            }
        }
        let snap = collector.snapshot();
        let root = snap
            .spans
            .iter()
            .find(|e| e.kind == SpanKind::Trace && e.parent.is_none())
            .expect("root trace span");
        assert_eq!(root.count, 1);
        let child = snap
            .spans
            .iter()
            .find(|e| e.kind == SpanKind::MpnrSolve && e.parent == Some(SpanKind::Trace))
            .expect("mpnr under trace");
        assert_eq!(child.count, 2);
        assert!(root.nanos >= child.nanos);
    }

    #[test]
    fn collector_follows_worker_threads_via_current() {
        let collector = Collector::new();
        let _guard = install_scoped(&collector);
        let captured = current().expect("collector installed");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let captured = &captured;
                scope.spawn(move || {
                    let _g = install_scoped(captured);
                    count(Metric::TransientRuns, 1);
                    let _s = span(SpanKind::Transient);
                });
            }
        });
        assert_eq!(collector.counter(Metric::TransientRuns), 2);
        let snap = collector.snapshot();
        let transient = snap
            .spans
            .iter()
            .find(|e| e.kind == SpanKind::Transient)
            .expect("worker spans recorded");
        assert_eq!(transient.count, 2);
        assert_eq!(transient.parent, None); // workers start a fresh stack
    }

    #[test]
    fn journal_counts_and_forwards_to_sink() {
        let sink = Arc::new(MemorySink::new());
        let collector = Collector::with_sink(sink.clone());
        let _guard = install_scoped(&collector);
        journal(&event(0));
        journal(&event(1));
        assert_eq!(collector.counter(Metric::JournalEvents), 2);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].point, 1);
        collector.flush().unwrap();
    }
}
