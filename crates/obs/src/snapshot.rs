//! Point-in-time metrics snapshot with human- and machine-readable views.

use std::fmt;

use crate::json;
use crate::metric::{Metric, SpanKind};

/// Histogram buckets per metric: bucket 0 holds zero-valued observations,
/// bucket `b >= 1` holds values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 32;

/// Maps an observed value to its log2 bucket.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Lower bound of a bucket's value range (see [`HIST_BUCKETS`]).
#[must_use]
pub fn bucket_low(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// One `(parent, child)` span edge: how many times `kind` ran directly
/// under `parent` (or as a thread root when `parent` is `None`), and the
/// total wall-clock time spent there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEdge {
    /// Enclosing span on the recording thread, if any.
    pub parent: Option<SpanKind>,
    /// The span that ran.
    pub kind: SpanKind,
    /// Number of completed spans on this edge.
    pub count: u64,
    /// Total wall-clock nanoseconds on this edge.
    pub nanos: u64,
}

/// All metrics at one point in time; produced by
/// [`crate::Collector::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, indexed by `Metric as usize`.
    pub counters: [u64; Metric::COUNT],
    /// Log2 histograms, indexed by `Metric as usize`.
    pub histograms: [[u64; HIST_BUCKETS]; Metric::COUNT],
    /// Non-empty span edges.
    pub spans: Vec<SpanEdge>,
}

impl MetricsSnapshot {
    /// Total for one counter.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// Histogram buckets for one metric.
    #[must_use]
    pub fn histogram(&self, metric: Metric) -> &[u64; HIST_BUCKETS] {
        &self.histograms[metric as usize]
    }

    /// Number of observations recorded into `metric`'s histogram.
    #[must_use]
    pub fn observations(&self, metric: Metric) -> u64 {
        self.histogram(metric).iter().sum()
    }

    /// Renders the snapshot as a flat JSON object (counters, histograms
    /// with non-empty buckets, span edges).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"counters\":{");
        let mut first = true;
        for m in Metric::ALL {
            json::push_u64_field(&mut s, &mut first, m.name(), self.counter(m));
        }
        s.push_str("},\"histograms\":{");
        let mut first_metric = true;
        for m in Metric::ALL {
            if self.observations(m) == 0 {
                continue;
            }
            if first_metric {
                first_metric = false;
            } else {
                s.push(',');
            }
            s.push('"');
            s.push_str(m.name());
            s.push_str("\":[");
            let hist = self.histogram(m);
            let mut first_bucket = true;
            for (b, &n) in hist.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if first_bucket {
                    first_bucket = false;
                } else {
                    s.push(',');
                }
                s.push_str(&format!("{{\"low\":{},\"count\":{}}}", bucket_low(b), n));
            }
            s.push(']');
        }
        s.push_str("},\"spans\":[");
        for (i, edge) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            let mut first = true;
            json::push_str_field(&mut s, &mut first, "kind", edge.kind.name());
            match edge.parent {
                Some(p) => json::push_str_field(&mut s, &mut first, "parent", p.name()),
                None => json::push_raw_field(&mut s, &mut first, "parent", "null"),
            }
            json::push_u64_field(&mut s, &mut first, "count", edge.count);
            json::push_u64_field(&mut s, &mut first, "nanos", edge.nanos);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn fmt_duration_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.1} us", secs * 1e6)
    }
}

fn fmt_histogram(hist: &[u64; HIST_BUCKETS]) -> String {
    let mut parts = Vec::new();
    for (b, &n) in hist.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let low = bucket_low(b);
        let high = if b == 0 { 0 } else { bucket_low(b + 1) - 1 };
        if low == high {
            parts.push(format!("{low}:{n}"));
        } else {
            parts.push(format!("{low}-{high}:{n}"));
        }
    }
    parts.join("  ")
}

impl fmt::Display for MetricsSnapshot {
    /// Human-readable end-of-run summary table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry summary")?;
        writeln!(f, "  counters")?;
        for m in Metric::ALL {
            let total = self.counter(m);
            if total == 0 {
                continue;
            }
            write!(f, "    {:<20} {:>12}", m.name(), total)?;
            let observations = self.observations(m);
            if observations > 0 {
                write!(f, "   dist {}", fmt_histogram(self.histogram(m)))?;
            }
            writeln!(f)?;
        }
        if !self.spans.is_empty() {
            writeln!(f, "  spans (kind <- parent: count, total wall time)")?;
            let mut spans = self.spans.clone();
            spans.sort_by_key(|edge| std::cmp::Reverse(edge.nanos));
            for edge in &spans {
                let parent = edge.parent.map_or("(root)", SpanKind::name);
                writeln!(
                    f,
                    "    {:<12} <- {:<12} {:>8}x  {:>10}",
                    edge.kind.name(),
                    parent,
                    edge.count,
                    fmt_duration_ns(edge.nanos),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_low(b)), b);
            assert_eq!(bucket_of(2 * bucket_low(b) - 1), b);
        }
    }

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: [0; Metric::COUNT],
            histograms: [[0; HIST_BUCKETS]; Metric::COUNT],
            spans: vec![
                SpanEdge {
                    parent: None,
                    kind: SpanKind::Trace,
                    count: 1,
                    nanos: 2_000_000,
                },
                SpanEdge {
                    parent: Some(SpanKind::Trace),
                    kind: SpanKind::MpnrSolve,
                    count: 19,
                    nanos: 1_500_000,
                },
            ],
        };
        snap.counters[Metric::TransientRuns as usize] = 42;
        snap.counters[Metric::MpnrIterations as usize] = 40;
        snap.histograms[Metric::MpnrIterations as usize][2] = 19; // 2-3 iters
        snap
    }

    #[test]
    fn display_lists_nonzero_counters_and_spans() {
        let text = sample().to_string();
        assert!(text.contains("transient_runs"), "{text}");
        assert!(text.contains("42"), "{text}");
        assert!(text.contains("dist 2-3:19"), "{text}");
        assert!(text.contains("mpnr_solve"), "{text}");
        assert!(text.contains("<- trace"), "{text}");
        assert!(!text.contains("lu_solves"), "zero counters hidden: {text}");
    }

    #[test]
    fn json_is_scannable() {
        let snap = sample();
        let js = snap.to_json();
        assert_eq!(json::scan_u64(&js, "transient_runs"), Some(42));
        assert!(js.contains("\"mpnr_iterations\":[{\"low\":2,\"count\":19}]"));
        assert!(js.contains("\"kind\":\"mpnr_solve\",\"parent\":\"trace\""));
        assert!(js.contains("\"parent\":null"));
    }
}
