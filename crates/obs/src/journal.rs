//! The structured run journal: one event per traced contour point.
//!
//! Events are serialized as JSON Lines — one flat object per line — so a
//! characterization run can be replayed, diffed, or post-processed without
//! any parsing machinery beyond a line splitter.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json;

/// One journal record, emitted per traced contour point.
///
/// `level` is the degradation-level index for `trace_batch` runs and `None`
/// for single-contour traces. Transient statistics are the totals
/// accumulated over every simulation the corrector ran for this point.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Zero-based index of the point along its contour.
    pub point: u64,
    /// Degradation-level index for batch traces; `None` for single traces.
    pub level: Option<u64>,
    /// Setup skew, seconds.
    pub tau_s: f64,
    /// Hold skew, seconds.
    pub tau_h: f64,
    /// Final corrector residual `|h|`, seconds.
    pub residual: f64,
    /// Euclidean norm of the contour Jacobian `[dh/dtau_s, dh/dtau_h]`.
    pub jacobian_norm: f64,
    /// Unit tangent of the contour at this point.
    pub tangent: [f64; 2],
    /// MPNR corrector iterations spent on this point.
    pub corrector_iterations: u64,
    /// Predictor step length used to reach this point (0 for the seed).
    pub alpha: f64,
    /// Accepted transient integration steps for this point.
    pub transient_steps: u64,
    /// Inner Newton iterations for this point.
    pub newton_iterations: u64,
    /// LTE-rejected steps for this point.
    pub rejected_steps: u64,
    /// Failed corrector attempts (step halvings, bisection fallbacks,
    /// tracer restarts) absorbed since the previous accepted point.
    pub recovery_attempts: u64,
    /// Optional per-point phase breakdown: a pre-rendered JSON object
    /// mapping phase names to `{"self_ns":…,"count":…}` deltas accumulated
    /// since the previous accepted point. Populated by the tracer only
    /// when an `shc-prof` profiler is installed; `None` (and the field is
    /// omitted from the line) otherwise. Kept as a raw string because this
    /// crate must not depend on `shc-prof`.
    pub phases: Option<String>,
}

impl JournalEvent {
    /// Renders the event as a single JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let mut first = true;
        json::push_u64_field(&mut s, &mut first, "point", self.point);
        match self.level {
            Some(l) => json::push_u64_field(&mut s, &mut first, "level", l),
            None => json::push_raw_field(&mut s, &mut first, "level", "null"),
        }
        json::push_f64_field(&mut s, &mut first, "tau_s", self.tau_s);
        json::push_f64_field(&mut s, &mut first, "tau_h", self.tau_h);
        json::push_f64_field(&mut s, &mut first, "residual", self.residual);
        json::push_f64_field(&mut s, &mut first, "jacobian_norm", self.jacobian_norm);
        let tangent = format!(
            "[{},{}]",
            json::fmt_f64(self.tangent[0]),
            json::fmt_f64(self.tangent[1])
        );
        json::push_raw_field(&mut s, &mut first, "tangent", &tangent);
        json::push_u64_field(
            &mut s,
            &mut first,
            "corrector_iterations",
            self.corrector_iterations,
        );
        json::push_f64_field(&mut s, &mut first, "alpha", self.alpha);
        json::push_u64_field(&mut s, &mut first, "transient_steps", self.transient_steps);
        json::push_u64_field(
            &mut s,
            &mut first,
            "newton_iterations",
            self.newton_iterations,
        );
        json::push_u64_field(&mut s, &mut first, "rejected_steps", self.rejected_steps);
        json::push_u64_field(
            &mut s,
            &mut first,
            "recovery_attempts",
            self.recovery_attempts,
        );
        if let Some(phases) = &self.phases {
            json::push_raw_field(&mut s, &mut first, "phases", phases);
        }
        s.push('}');
        s
    }

    /// Parses a line produced by [`JournalEvent::to_json_line`].
    ///
    /// Intended for tests and validation tools; this is a key scanner, not
    /// a general JSON parser.
    #[must_use]
    pub fn from_json(line: &str) -> Option<JournalEvent> {
        let tangent = json::scan_f64_array(line, "tangent")?;
        if tangent.len() != 2 {
            return None;
        }
        Some(JournalEvent {
            point: json::scan_u64(line, "point")?,
            level: json::scan_u64(line, "level"),
            tau_s: json::scan_f64(line, "tau_s")?,
            tau_h: json::scan_f64(line, "tau_h")?,
            residual: json::scan_f64(line, "residual")?,
            jacobian_norm: json::scan_f64(line, "jacobian_norm")?,
            tangent: [tangent[0], tangent[1]],
            corrector_iterations: json::scan_u64(line, "corrector_iterations")?,
            alpha: json::scan_f64(line, "alpha")?,
            transient_steps: json::scan_u64(line, "transient_steps")?,
            newton_iterations: json::scan_u64(line, "newton_iterations")?,
            rejected_steps: json::scan_u64(line, "rejected_steps")?,
            recovery_attempts: json::scan_u64(line, "recovery_attempts")?,
            phases: json::scan_raw_object(line, "phases").map(str::to_string),
        })
    }

    /// Sort key used to order-normalize events across serial/parallel runs.
    #[must_use]
    pub fn sort_key(&self) -> (u64, u64) {
        (self.level.unwrap_or(0), self.point)
    }
}

/// Destination for journal events.
///
/// `record` takes `&self` so a single sink can be shared by the worker
/// threads `parallel::run_indexed` spawns; implementations synchronize
/// internally.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &JournalEvent);

    /// Flushes buffered events to their destination.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for file-backed sinks.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// In-memory sink for tests: collects events behind a mutex.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<JournalEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Returns a copy of all recorded events, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn events(&self) -> Vec<JournalEvent> {
        self.events.lock().expect("journal sink poisoned").clone()
    }

    /// Removes and returns all recorded events.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn drain(&self) -> Vec<JournalEvent> {
        std::mem::take(&mut *self.events.lock().expect("journal sink poisoned"))
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &JournalEvent) {
        self.events
            .lock()
            .expect("journal sink poisoned")
            .push(event.clone());
    }
}

/// Buffered JSONL file writer for CLI runs.
///
/// Events are written eagerly into a `BufWriter`; `flush` (called by the
/// CLI on both success and error paths) pushes them to disk, and `Drop`
/// makes a best-effort flush so partial journals survive early exits.
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncating) the journal file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the `File::create` error.
    pub fn create(path: &Path) -> io::Result<FileSink> {
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for FileSink {
    fn record(&self, event: &JournalEvent) {
        let mut w = self.writer.lock().expect("journal sink poisoned");
        // I/O errors surface at flush(); record() must stay infallible so
        // instrumented solver code needs no error plumbing.
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("journal sink poisoned").flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(point: u64, level: Option<u64>) -> JournalEvent {
        JournalEvent {
            point,
            level,
            tau_s: 1.25e-10,
            tau_h: -3.5e-11,
            residual: 4.2e-15,
            jacobian_norm: 0.731,
            tangent: [0.6, -0.8],
            corrector_iterations: 2,
            alpha: 1.5,
            transient_steps: 1234,
            newton_iterations: 4321,
            rejected_steps: 7,
            recovery_attempts: 1,
            phases: None,
        }
    }

    #[test]
    fn event_round_trips_through_json() {
        for ev in [sample(0, None), sample(3, Some(1))] {
            let line = ev.to_json_line();
            assert!(!line.contains('\n'));
            let back = JournalEvent::from_json(&line).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn phase_breakdown_round_trips_and_is_omitted_when_absent() {
        let mut ev = sample(0, None);
        assert!(!ev.to_json_line().contains("phases"));
        ev.phases = Some("{\"newton_overhead\":{\"self_ns\":1200,\"count\":3}}".to_string());
        let line = ev.to_json_line();
        assert!(line.contains("\"phases\":{\"newton_overhead\""));
        let back = JournalEvent::from_json(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn non_finite_fields_become_null_and_fail_strict_parse() {
        let mut ev = sample(0, None);
        ev.residual = f64::NAN;
        let line = ev.to_json_line();
        assert!(line.contains("\"residual\":null"));
        assert!(JournalEvent::from_json(&line).is_none());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.record(&sample(0, None));
        sink.record(&sample(1, None));
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].point, 0);
        assert_eq!(events[1].point, 1);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("shc_obs_sink_{}.jsonl", std::process::id()));
        {
            let sink = FileSink::create(&path).unwrap();
            sink.record(&sample(0, None));
            sink.record(&sample(1, Some(2)));
            sink.flush().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let events: Vec<JournalEvent> = body
            .lines()
            .map(|l| JournalEvent::from_json(l).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].level, Some(2));
        std::fs::remove_file(&path).ok();
    }
}
