//! Trace checkpoints: serialized tracer state for kill/resume.
//!
//! The Euler-Newton tracer periodically snapshots everything it needs to
//! continue a contour walk — the accepted points so far, the current
//! predictor state (position, tangent, α), accumulated accounting, and the
//! fault-injection cursors — as one JSON line appended to a checkpoint
//! file. Resuming reads the *last complete line* (a torn final write from a
//! killed process is skipped) and re-enters the trace loop with bit-for-bit
//! identical state: every `f64` is serialized with [`crate::json::fmt_f64`],
//! whose shortest-round-trip representation parses back to the exact same
//! bits, so a resumed contour is identical to an uninterrupted one.
//!
//! The checkpoint format is versioned ([`TraceCheckpoint::VERSION`]) and
//! independent of the run-journal schema in [`crate::JournalEvent`]; see
//! DESIGN.md §10.3.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

use crate::json;

/// One accepted contour point inside a [`TraceCheckpoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPoint {
    /// Setup skew, seconds.
    pub tau_s: f64,
    /// Hold skew, seconds.
    pub tau_h: f64,
    /// MPNR corrector iterations the point needed (0 for the seed).
    pub corrector_iterations: u64,
    /// `|h|` at the point.
    pub residual: f64,
}

/// A complete snapshot of the Euler-Newton tracer's loop state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCheckpoint {
    /// Current walk position (τs, τh) — the last accepted point, seconds.
    pub tau_s: f64,
    /// See `tau_s`.
    pub tau_h: f64,
    /// Oriented unit tangent at the current position.
    pub tangent: [f64; 2],
    /// Current adaptive predictor step length α, seconds.
    pub alpha: f64,
    /// MPNR iterations accumulated across all accepted points.
    pub total_corrector_iterations: u64,
    /// Transient simulations attributed to the trace so far.
    pub simulations: u64,
    /// Tracer restarts already consumed from the recovery budget.
    pub restarts: u64,
    /// Per-site `shc-fault` call cursors (empty when no injector was
    /// installed), so `--resume` replays the remainder of a fault stream.
    pub fault_cursors: Vec<u64>,
    /// Every accepted point, in walking order.
    pub points: Vec<CheckpointPoint>,
}

impl TraceCheckpoint {
    /// Checkpoint format version written to (and required from) the file.
    pub const VERSION: u64 = 1;

    /// Renders the checkpoint as a single JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128 + 96 * self.points.len());
        s.push('{');
        let mut first = true;
        json::push_u64_field(&mut s, &mut first, "version", Self::VERSION);
        json::push_f64_field(&mut s, &mut first, "tau_s", self.tau_s);
        json::push_f64_field(&mut s, &mut first, "tau_h", self.tau_h);
        let tangent = format!(
            "[{},{}]",
            json::fmt_f64(self.tangent[0]),
            json::fmt_f64(self.tangent[1])
        );
        json::push_raw_field(&mut s, &mut first, "tangent", &tangent);
        json::push_f64_field(&mut s, &mut first, "alpha", self.alpha);
        json::push_u64_field(
            &mut s,
            &mut first,
            "total_corrector_iterations",
            self.total_corrector_iterations,
        );
        json::push_u64_field(&mut s, &mut first, "simulations", self.simulations);
        json::push_u64_field(&mut s, &mut first, "restarts", self.restarts);
        let mut cursors = String::from("[");
        for (i, c) in self.fault_cursors.iter().enumerate() {
            if i > 0 {
                cursors.push(',');
            }
            cursors.push_str(&c.to_string());
        }
        cursors.push(']');
        json::push_raw_field(&mut s, &mut first, "fault_cursors", &cursors);
        let mut pts = String::from("[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                pts.push(',');
            }
            pts.push_str(&format!(
                "[{},{},{},{}]",
                json::fmt_f64(p.tau_s),
                json::fmt_f64(p.tau_h),
                p.corrector_iterations,
                json::fmt_f64(p.residual),
            ));
        }
        pts.push(']');
        json::push_raw_field(&mut s, &mut first, "points", &pts);
        s.push('}');
        s
    }

    /// Parses a line produced by [`TraceCheckpoint::to_json_line`].
    ///
    /// Returns `None` for torn/garbled lines or a version mismatch.
    #[must_use]
    pub fn from_json(line: &str) -> Option<TraceCheckpoint> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        if json::scan_u64(line, "version")? != Self::VERSION {
            return None;
        }
        let tangent = json::scan_f64_array(line, "tangent")?;
        if tangent.len() != 2 {
            return None;
        }
        let fault_cursors = json::raw_value(line, "fault_cursors").and_then(parse_u64_array)?;
        let points = json::raw_value(line, "points").and_then(parse_points)?;
        Some(TraceCheckpoint {
            tau_s: json::scan_f64(line, "tau_s")?,
            tau_h: json::scan_f64(line, "tau_h")?,
            tangent: [tangent[0], tangent[1]],
            alpha: json::scan_f64(line, "alpha")?,
            total_corrector_iterations: json::scan_u64(line, "total_corrector_iterations")?,
            simulations: json::scan_u64(line, "simulations")?,
            restarts: json::scan_u64(line, "restarts")?,
            fault_cursors,
            points,
        })
    }

    /// Appends this checkpoint as one line to the file at `path`,
    /// creating it if needed, and flushes to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_to(&self, path: &Path) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{}", self.to_json_line())?;
        file.sync_data()
    }

    /// Reads the last complete checkpoint from the file at `path`.
    ///
    /// Unparseable lines (e.g. a torn final write from a killed process)
    /// are skipped; `Ok(None)` means the file holds no valid checkpoint.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (including file-not-found).
    pub fn read_last(path: &Path) -> io::Result<Option<TraceCheckpoint>> {
        let body = std::fs::read_to_string(path)?;
        Ok(body.lines().rev().find_map(TraceCheckpoint::from_json))
    }
}

fn parse_u64_array(raw: &str) -> Option<Vec<u64>> {
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<u64>>>()
}

fn parse_points(raw: &str) -> Option<Vec<CheckpointPoint>> {
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .strip_prefix('[')?
        .strip_suffix(']')?
        .split("],[")
        .map(|quad| {
            let parts: Vec<&str> = quad.split(',').map(str::trim).collect();
            if parts.len() != 4 {
                return None;
            }
            Some(CheckpointPoint {
                tau_s: parts[0].parse().ok()?,
                tau_h: parts[1].parse().ok()?,
                corrector_iterations: parts[2].parse().ok()?,
                residual: parts[3].parse().ok()?,
            })
        })
        .collect::<Option<Vec<CheckpointPoint>>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceCheckpoint {
        TraceCheckpoint {
            tau_s: 1.234_567_890_123e-10,
            tau_h: -9.87e-11,
            tangent: [0.123_456_789, -0.992_351_234_567],
            alpha: 1.25e-11,
            total_corrector_iterations: 42,
            simulations: 137,
            restarts: 1,
            fault_cursors: vec![3, 0, 917, 12, 55],
            points: vec![
                CheckpointPoint {
                    tau_s: 1.0e-10,
                    tau_h: 2.0e-10,
                    corrector_iterations: 0,
                    residual: 4.2e-16,
                },
                CheckpointPoint {
                    tau_s: 1.1e-10,
                    tau_h: 1.9e-10,
                    corrector_iterations: 3,
                    residual: 7.7e-15,
                },
            ],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let ckpt = sample();
        let line = ckpt.to_json_line();
        assert!(!line.contains('\n'));
        let back = TraceCheckpoint::from_json(&line).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.tau_s.to_bits(), ckpt.tau_s.to_bits());
        assert_eq!(back.tangent[1].to_bits(), ckpt.tangent[1].to_bits());
        for (a, b) in back.points.iter().zip(&ckpt.points) {
            assert_eq!(a.tau_s.to_bits(), b.tau_s.to_bits());
            assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        }
    }

    #[test]
    fn empty_collections_round_trip() {
        let mut ckpt = sample();
        ckpt.fault_cursors.clear();
        ckpt.points.clear();
        let back = TraceCheckpoint::from_json(&ckpt.to_json_line()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn version_mismatch_and_garbage_are_rejected() {
        let line = sample()
            .to_json_line()
            .replace("\"version\":1", "\"version\":99");
        assert!(TraceCheckpoint::from_json(&line).is_none());
        assert!(TraceCheckpoint::from_json("not json").is_none());
        assert!(TraceCheckpoint::from_json("{\"version\":1}").is_none());
        // A torn write: the tail of the line is missing.
        let full = sample().to_json_line();
        assert!(TraceCheckpoint::from_json(&full[..full.len() / 2]).is_none());
    }

    #[test]
    fn file_append_and_read_last_skips_torn_tail() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("shc_obs_ckpt_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        assert!(TraceCheckpoint::read_last(&path).is_err(), "missing file");

        let first = sample();
        let mut second = sample();
        second.restarts = 2;
        second.points.push(CheckpointPoint {
            tau_s: 1.2e-10,
            tau_h: 1.8e-10,
            corrector_iterations: 2,
            residual: 1.0e-15,
        });
        first.append_to(&path).unwrap();
        second.append_to(&path).unwrap();
        // Simulate a kill mid-write: append half a line with no newline.
        let torn = sample().to_json_line();
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&torn.as_bytes()[..torn.len() / 2])
            .unwrap();

        let read = TraceCheckpoint::read_last(&path).unwrap().unwrap();
        assert_eq!(read, second);
        std::fs::remove_file(&path).ok();
    }
}
