//! `shc-obs`: zero-dependency observability for the characterization stack.
//!
//! The solver layers (transient integration, MPNR corrector, Euler-Newton
//! tracer, fan-out sweeps) are instrumented against this crate:
//!
//! - **Counters & histograms** ([`count`], [`observe`]) for convergence
//!   work: Newton iterations, LTE rejections, LU refactors/solves, MPNR
//!   iterations per point, predictor α adaptations, matrix allocations.
//! - **Spans** ([`span`]) for hierarchical wall-clock timing, attributed
//!   per `(parent, child)` edge and aware of the worker threads spawned by
//!   `shc_core::parallel::run_indexed`.
//! - **Run journal** ([`journal`]): one structured JSONL event per traced
//!   contour point, via a pluggable [`Sink`] (in-memory for tests,
//!   buffered file writer for the CLI).
//!
//! All instrumentation is compiled in but inert until a [`Collector`] is
//! installed on the thread with [`install_scoped`]; the off-path cost is
//! one thread-local boolean read per call site, so the allocation-free
//! transient hot loop stays allocation-free either way.
//!
//! ```
//! use shc_obs::{Collector, Metric, SpanKind};
//!
//! let collector = Collector::new();
//! {
//!     let _guard = shc_obs::install_scoped(&collector);
//!     let _span = shc_obs::span(SpanKind::Trace);
//!     shc_obs::observe(Metric::MpnrIterations, 3);
//! }
//! assert_eq!(collector.counter(Metric::MpnrIterations), 3);
//! println!("{}", collector.snapshot());
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod collector;
mod journal;
pub mod json;
mod metric;
mod snapshot;

pub use checkpoint::{CheckpointPoint, TraceCheckpoint};
pub use collector::{
    count, current, enabled, install_scoped, journal, journal_level, observe, span,
    with_journal_level, Collector, InstallGuard, LevelGuard, SpanGuard,
};
pub use journal::{FileSink, JournalEvent, MemorySink, Sink};
pub use metric::{Metric, SpanKind};
pub use snapshot::{bucket_low, bucket_of, MetricsSnapshot, SpanEdge, HIST_BUCKETS};
