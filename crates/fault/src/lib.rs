//! `shc-fault`: deterministic fault injection for the characterization stack.
//!
//! The solver layers assume every LU factorization, Newton solve, transient
//! run and MPNR correction succeeds; this crate lets tests and CI prove the
//! stack degrades gracefully when they do not. A [`FaultPlan`] describes
//! *what* to inject (fault kind, optional site filter, probability) and an
//! [`Injector`] decides *where*, deterministically: each instrumented call
//! site asks [`check`] whether this particular call should fail, and the
//! decision is a pure function of `(plan.seed, site, call_index)` via the
//! same SplitMix64 mix used by the Monte-Carlo sampler. Re-running a plan
//! replays the exact same fault sequence; a retried operation gets a fresh
//! call index and therefore (usually) succeeds, which is what makes the
//! recovery policies in `shc-spice`/`shc-core` testable.
//!
//! Like `shc-obs`, the crate is zero-dependency and inert until an
//! [`Injector`] is installed on the current thread with [`install_scoped`];
//! the off-path cost at every hook is a single thread-local boolean read.
//!
//! ```
//! use shc_fault::{FaultKind, FaultPlan, Injector, Site};
//!
//! let plan = FaultPlan {
//!     probability: 1.0,
//!     site: Some(Site::Newton),
//!     kind: FaultKind::NonConvergence,
//!     seed: 42,
//! };
//! let injector = Injector::new(plan);
//! {
//!     let _guard = shc_fault::install_scoped(&injector);
//!     assert_eq!(shc_fault::check(Site::Newton), Some(FaultKind::NonConvergence));
//!     assert_eq!(shc_fault::check(Site::LuFactor), None); // filtered out
//! }
//! assert_eq!(shc_fault::check(Site::Newton), None); // uninstalled: inert
//! assert_eq!(injector.injected(), 1);
//! ```

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instrumented call site in the solver stack where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Dense LU factorization / in-place refactorization (`shc-linalg`).
    LuFactor,
    /// Back-substitution through an existing LU factor (`shc-linalg`).
    LuSolve,
    /// One damped-Newton nonlinear solve, i.e. one transient step (`shc-spice`).
    Newton,
    /// One full transient run (`shc-spice`).
    Transient,
    /// One MPNR corrector solve (`shc-core`).
    Mpnr,
}

impl Site {
    /// Number of sites (length of [`Site::ALL`]).
    pub const COUNT: usize = 5;

    /// Every site, in declaration order.
    pub const ALL: [Site; Site::COUNT] = [
        Site::LuFactor,
        Site::LuSolve,
        Site::Newton,
        Site::Transient,
        Site::Mpnr,
    ];

    /// Stable snake_case name, used by `--fault-plan` specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Site::LuFactor => "lu_factor",
            Site::LuSolve => "lu_solve",
            Site::Newton => "newton",
            Site::Transient => "transient",
            Site::Mpnr => "mpnr",
        }
    }

    /// Parse a site name as produced by [`Site::name`].
    pub fn parse(name: &str) -> Option<Site> {
        Site::ALL.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Site::LuFactor => 0,
            Site::LuSolve => 1,
            Site::Newton => 2,
            Site::Transient => 3,
            Site::Mpnr => 4,
        }
    }

    /// Large odd per-site salt so the per-site fault streams are independent
    /// even under the same plan seed.
    fn salt(self) -> u64 {
        const SALTS: [u64; Site::COUNT] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0xD6E8_FEB8_6659_FD93,
            0xA076_1D64_95FD_5855,
        ];
        SALTS[self.index()]
    }
}

/// What kind of failure an injected fault should present as.
///
/// Each hook site maps the kind onto its layer's own error vocabulary (a
/// singular pivot in `shc-linalg`, `NewtonDiverged` in `shc-spice`, ...), so
/// downstream recovery code sees exactly the errors the real failure modes
/// produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A numerically singular system matrix (pivot below threshold).
    SingularMatrix,
    /// An iteration budget exhausted without meeting tolerance.
    NonConvergence,
    /// A NaN residual / numerical blow-up.
    NanResidual,
    /// A local-truncation-error step-size stall at the `dt_min` floor.
    LteStall,
}

impl FaultKind {
    /// Number of kinds (length of [`FaultKind::ALL`]).
    pub const COUNT: usize = 4;

    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::SingularMatrix,
        FaultKind::NonConvergence,
        FaultKind::NanResidual,
        FaultKind::LteStall,
    ];

    /// Stable snake_case name, used by `--fault-plan` specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SingularMatrix => "singular_matrix",
            FaultKind::NonConvergence => "non_convergence",
            FaultKind::NanResidual => "nan_residual",
            FaultKind::LteStall => "lte_stall",
        }
    }

    /// Parse a kind name as produced by [`FaultKind::name`].
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// A declarative description of which faults to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-call probability in `[0, 1]` that a matching site faults.
    pub probability: f64,
    /// Restrict injection to one site; `None` injects at every site.
    pub site: Option<Site>,
    /// The failure mode injected calls present as.
    pub kind: FaultKind,
    /// Seed for the deterministic `(site, call_index)` decision stream.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            probability: 0.0,
            site: None,
            kind: FaultKind::NonConvergence,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Parse a `--fault-plan` spec string of comma-separated `key=value`
    /// pairs: `p` (or `probability`), `site`, `kind`, `seed`.
    ///
    /// ```
    /// use shc_fault::{FaultKind, FaultPlan, Site};
    /// let plan = FaultPlan::parse("site=newton,kind=non_convergence,p=0.1,seed=7").unwrap();
    /// assert_eq!(plan.site, Some(Site::Newton));
    /// assert_eq!(plan.kind, FaultKind::NonConvergence);
    /// assert!((plan.probability - 0.1).abs() < 1e-12);
    /// assert_eq!(plan.seed, 7);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut saw_probability = false;
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("fault-plan entry `{pair}` is not key=value"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "p" | "probability" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("fault-plan probability `{value}` is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("fault-plan probability {p} outside [0, 1]"));
                    }
                    plan.probability = p;
                    saw_probability = true;
                }
                "site" => {
                    if value == "all" || value == "any" {
                        plan.site = None;
                    } else {
                        plan.site = Some(Site::parse(value).ok_or_else(|| {
                            format!(
                                "unknown fault site `{value}` (expected one of {})",
                                Site::ALL.map(Site::name).join(", ")
                            )
                        })?);
                    }
                }
                "kind" => {
                    plan.kind = FaultKind::parse(value).ok_or_else(|| {
                        format!(
                            "unknown fault kind `{value}` (expected one of {})",
                            FaultKind::ALL.map(FaultKind::name).join(", ")
                        )
                    })?;
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault-plan seed `{value}` is not a u64"))?;
                }
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        if !saw_probability {
            return Err("fault-plan must set p=<probability>".to_string());
        }
        Ok(plan)
    }
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    /// One monotonically increasing call counter per site. The counter value
    /// at the time of a call is its `call_index`; the fault decision for
    /// `(site, call_index)` never changes, which is what makes plans
    /// replayable and checkpoints resumable.
    cursors: [AtomicU64; Site::COUNT],
    injected: AtomicU64,
}

/// A handle on a fault plan plus its per-site call cursors.
///
/// Cloning is shallow: clones share cursors, so an injector captured by a
/// worker thread continues the same deterministic stream.
#[derive(Debug, Clone)]
pub struct Injector {
    inner: Arc<Inner>,
}

impl Injector {
    /// Create an injector for `plan` with all call cursors at zero.
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            inner: Arc::new(Inner {
                plan,
                cursors: [const { AtomicU64::new(0) }; Site::COUNT],
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// Total number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-site call cursors, in [`Site::ALL`] order.
    ///
    /// Persisted in trace checkpoints so `--resume` replays the remainder of
    /// the fault stream instead of restarting it.
    pub fn cursors(&self) -> [u64; Site::COUNT] {
        let mut out = [0u64; Site::COUNT];
        for (slot, cursor) in out.iter_mut().zip(&self.inner.cursors) {
            *slot = cursor.load(Ordering::Relaxed);
        }
        out
    }

    /// Restore call cursors captured by [`Injector::cursors`].
    pub fn restore_cursors(&self, cursors: &[u64]) {
        for (cursor, value) in self.inner.cursors.iter().zip(cursors) {
            cursor.store(*value, Ordering::Relaxed);
        }
    }

    fn decide(&self, site: Site) -> Option<FaultKind> {
        let plan = &self.inner.plan;
        if plan.probability <= 0.0 {
            return None;
        }
        if let Some(filter) = plan.site {
            if filter != site {
                return None;
            }
        }
        let index = self.inner.cursors[site.index()].fetch_add(1, Ordering::Relaxed);
        if !fires(plan.seed ^ site.salt(), index, plan.probability) {
            return None;
        }
        self.inner.injected.fetch_add(1, Ordering::Relaxed);
        Some(plan.kind)
    }
}

/// Pure `(seed, call_index) -> bool` fault decision at probability `p`.
fn fires(seed: u64, index: u64, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    // Saturating f64 -> u64 cast; p < 1 so the threshold stays below 2^64.
    let threshold = (p * (u64::MAX as f64)) as u64;
    splitmix64(seed, index) < threshold
}

/// The SplitMix64 finalizer over `seed ^ index * golden`, identical to the
/// Monte-Carlo per-sample seeding in `shc-core::montecarlo`.
fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    static CURRENT: RefCell<Option<Injector>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Guard returned by [`install_scoped`]; restores the previously installed
/// injector (if any) on drop.
#[must_use = "dropping the guard immediately uninstalls the injector"]
pub struct InstallGuard {
    previous: Option<Injector>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ENABLED.with(|e| e.set(previous.is_some()));
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

/// Install `injector` on the current thread for the guard's lifetime.
pub fn install_scoped(injector: &Injector) -> InstallGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(injector.clone()));
    ENABLED.with(|e| e.set(true));
    InstallGuard { previous }
}

/// Whether an injector is installed on the current thread.
///
/// A single thread-local boolean read: this is the entire overhead of a
/// disabled fault hook.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Clone of the injector installed on the current thread, if any.
///
/// Worker threads spawned by `shc_core::parallel::run_indexed` capture this
/// and re-install it so fan-out inherits the caller's fault plan.
pub fn current() -> Option<Injector> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Ask whether the current call at `site` should fail, and with which kind.
///
/// Advances the site's call cursor when an injector with a matching site
/// filter is installed; returns `None` (and is nearly free) otherwise.
pub fn check(site: Site) -> Option<FaultKind> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().and_then(|inj| inj.decide(site)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(p: f64, site: Option<Site>, kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan {
            probability: p,
            site,
            kind,
            seed,
        }
    }

    #[test]
    fn disabled_thread_injects_nothing() {
        assert_eq!(check(Site::Newton), None);
        assert!(!enabled());
        assert!(current().is_none());
    }

    #[test]
    fn probability_one_always_fires_and_zero_never_fires() {
        let always = Injector::new(plan(1.0, None, FaultKind::NanResidual, 1));
        let never = Injector::new(plan(0.0, None, FaultKind::NanResidual, 1));
        {
            let _g = install_scoped(&always);
            for site in Site::ALL {
                assert_eq!(check(site), Some(FaultKind::NanResidual));
            }
        }
        {
            let _g = install_scoped(&never);
            for site in Site::ALL {
                assert_eq!(check(site), None);
            }
        }
        assert_eq!(always.injected(), Site::COUNT as u64);
        assert_eq!(never.injected(), 0);
        assert_eq!(never.cursors(), [0; Site::COUNT]);
    }

    #[test]
    fn site_filter_gates_and_does_not_advance_other_cursors() {
        let inj = Injector::new(plan(1.0, Some(Site::Mpnr), FaultKind::LteStall, 3));
        let _g = install_scoped(&inj);
        assert_eq!(check(Site::Newton), None);
        assert_eq!(check(Site::Mpnr), Some(FaultKind::LteStall));
        assert_eq!(inj.cursors(), [0, 0, 0, 0, 1]);
    }

    #[test]
    fn decision_stream_is_deterministic_and_replayable() {
        let run = || {
            let inj = Injector::new(plan(0.3, None, FaultKind::NonConvergence, 0xDEAD_BEEF));
            let _g = install_scoped(&inj);
            (0..256)
                .map(|_| check(Site::Transient).is_some())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let hits = a.iter().filter(|x| **x).count();
        assert!((30..120).contains(&hits), "p=0.3 over 256 draws hit {hits}");
    }

    #[test]
    fn restored_cursors_resume_the_same_stream() {
        let inj = Injector::new(plan(0.5, None, FaultKind::SingularMatrix, 9));
        let _g = install_scoped(&inj);
        let full: Vec<_> = (0..64).map(|_| check(Site::LuFactor)).collect();
        let fresh = Injector::new(plan(0.5, None, FaultKind::SingularMatrix, 9));
        drop(_g);
        // Skip the first 32 draws by restoring the cursor snapshot.
        fresh.restore_cursors(&[32, 0, 0, 0, 0]);
        let _g = install_scoped(&fresh);
        let tail: Vec<_> = (0..32).map(|_| check(Site::LuFactor)).collect();
        assert_eq!(tail.as_slice(), &full[32..]);
    }

    #[test]
    fn scoped_install_nests_and_restores() {
        let outer = Injector::new(plan(1.0, None, FaultKind::NanResidual, 1));
        let inner = Injector::new(plan(0.0, None, FaultKind::NanResidual, 1));
        let g = install_scoped(&outer);
        {
            let _g2 = install_scoped(&inner);
            assert_eq!(check(Site::Newton), None);
        }
        assert_eq!(check(Site::Newton), Some(FaultKind::NanResidual));
        drop(g);
        assert!(!enabled());
    }

    #[test]
    fn retry_with_fresh_call_index_usually_recovers() {
        // The whole point of (site, call_index) seeding: a failed call that
        // is retried draws a new index, so p < 1 faults are transient.
        let inj = Injector::new(plan(0.5, None, FaultKind::NonConvergence, 7));
        let _g = install_scoped(&inj);
        let mut recovered = false;
        for _ in 0..64 {
            if check(Site::Newton).is_some() && check(Site::Newton).is_none() {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
    }

    #[test]
    fn plan_spec_parser_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("p=0.25, site=lu_solve, kind=singular_matrix, seed=11")
            .expect("valid spec");
        assert_eq!(plan.site, Some(Site::LuSolve));
        assert_eq!(plan.kind, FaultKind::SingularMatrix);
        assert_eq!(plan.seed, 11);
        assert!((plan.probability - 0.25).abs() < 1e-12);

        let any = FaultPlan::parse("p=1,site=all").expect("site=all spec");
        assert_eq!(any.site, None);

        assert!(FaultPlan::parse("site=newton").is_err(), "missing p");
        assert!(FaultPlan::parse("p=2").is_err(), "p out of range");
        assert!(FaultPlan::parse("p=0.1,site=nope").is_err());
        assert!(FaultPlan::parse("p=0.1,kind=nope").is_err());
        assert!(FaultPlan::parse("p=0.1,bogus=1").is_err());
        assert!(FaultPlan::parse("p=0.1,seed=x").is_err());
        assert!(FaultPlan::parse("p=0.1,site").is_err(), "not key=value");
    }

    #[test]
    fn site_and_kind_names_parse_back() {
        for site in Site::ALL {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(Site::parse("unknown"), None);
        assert_eq!(FaultKind::parse("unknown"), None);
    }
}
