//! Serializable experiment reports and table formatting.
//!
//! These types carry exactly what the paper's evaluation section reports:
//! contour points, simulation counts for the Euler-Newton trace versus
//! brute-force surface generation, corrector-iteration statistics, and the
//! accuracy overlay deviation — so EXPERIMENTS.md can be regenerated
//! mechanically.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Contour, SurfaceContour};

/// Characterization summary for one register.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell name.
    pub cell: String,
    /// Characteristic clock-to-Q delay, seconds.
    pub t_cq: f64,
    /// Evaluation time `t_f`, seconds.
    pub t_f: f64,
    /// Target level `r`, volts.
    pub r: f64,
    /// Degradation fraction defining the contour.
    pub degradation: f64,
}

impl fmt::Display for CellReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: t_CQ = {:.1} ps, t_f = {:.4} ns, r = {:.3} V ({}% criterion)",
            self.cell,
            self.t_cq * 1e12,
            self.t_f * 1e9,
            self.r,
            (self.degradation * 100.0).round()
        )
    }
}

/// Speedup comparison between Euler-Newton tracing and brute-force surface
/// generation for one contour-resolution setting (the paper's headline
/// numbers: ~26× at n = 40, growing linearly with n).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Cell name.
    pub cell: String,
    /// Contour points requested.
    pub n_points: usize,
    /// Contour points actually traced.
    pub points_traced: usize,
    /// Transient simulations used by seeding + tracing.
    pub trace_simulations: usize,
    /// Transient simulations used by the n×n surface.
    pub surface_simulations: usize,
    /// Wall-clock seconds for the trace (if timed).
    pub trace_seconds: Option<f64>,
    /// Wall-clock seconds for the surface (if timed).
    pub surface_seconds: Option<f64>,
    /// Mean MPNR corrector iterations per traced point.
    pub mean_corrector_iterations: f64,
}

impl SpeedupRow {
    /// Simulation-count speedup (surface / trace).
    pub fn simulation_speedup(&self) -> f64 {
        self.surface_simulations as f64 / self.trace_simulations.max(1) as f64
    }

    /// Wall-clock speedup, when both timings are available.
    pub fn time_speedup(&self) -> Option<f64> {
        match (self.trace_seconds, self.surface_seconds) {
            (Some(t), Some(s)) if t > 0.0 => Some(s / t),
            _ => None,
        }
    }
}

impl fmt::Display for SpeedupRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} n={:<3} trace: {:>4} sims   surface: {:>6} sims   speedup: {:>6.1}x   corrector: {:.1} iters/pt",
            self.cell,
            self.n_points,
            self.trace_simulations,
            self.surface_simulations,
            self.simulation_speedup(),
            self.mean_corrector_iterations,
        )?;
        if let Some(ts) = self.time_speedup() {
            write!(f, "   wall-clock: {ts:.1}x")?;
        }
        Ok(())
    }
}

/// Accuracy comparison between a traced contour and the
/// surface-intersection contour (the paper's Fig. 10 / Fig. 12b overlays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayReport {
    /// Cell name.
    pub cell: String,
    /// Maximum |Δτh| between the two contours over the shared τs range,
    /// seconds.
    pub max_deviation: f64,
    /// Surface grid resolution used for the comparison.
    pub surface_n: usize,
    /// Traced contour points that fell inside the surface range.
    pub compared_points: usize,
}

impl OverlayReport {
    /// Builds the overlay report from the two contours.
    pub fn compare(cell: &str, contour: &Contour, surface: &SurfaceContour, n: usize) -> Self {
        let compared = contour
            .points()
            .iter()
            .filter(|p| surface.hold_at_setup(p.tau_s).is_some())
            .count();
        OverlayReport {
            cell: cell.to_string(),
            max_deviation: surface.max_deviation_from(contour).unwrap_or(f64::NAN),
            surface_n: n,
            compared_points: compared,
        }
    }
}

impl fmt::Display for OverlayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: max |Δτh| = {:.2} ps against a {}x{} surface ({} points compared)",
            self.cell,
            self.max_deviation * 1e12,
            self.surface_n,
            self.surface_n,
            self.compared_points,
        )
    }
}

/// A contour serialized as plain (ps, ps) rows for external plotting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContourTable {
    /// Cell name.
    pub cell: String,
    /// `(setup_ps, hold_ps)` rows in trace order.
    pub rows: Vec<(f64, f64)>,
}

impl ContourTable {
    /// Extracts the table from a traced contour.
    pub fn from_contour(cell: &str, contour: &Contour) -> Self {
        ContourTable {
            cell: cell.to_string(),
            rows: contour
                .points()
                .iter()
                .map(|p| (p.tau_s * 1e12, p.tau_h * 1e12))
                .collect(),
        }
    }
}

impl fmt::Display for ContourTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} constant clock-to-Q contour", self.cell)?;
        writeln!(f, "{:>12} {:>12}", "setup(ps)", "hold(ps)")?;
        for (s, h) in &self.rows {
            writeln!(f, "{s:>12.2} {h:>12.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContourPoint;

    fn toy_contour() -> Contour {
        Contour {
            points: vec![
                ContourPoint {
                    tau_s: 100e-12,
                    tau_h: 200e-12,
                    corrector_iterations: 0,
                    residual: 0.0,
                },
                ContourPoint {
                    tau_s: 150e-12,
                    tau_h: 150e-12,
                    corrector_iterations: 2,
                    residual: 1e-6,
                },
            ],
            simulations: 7,
            total_corrector_iterations: 2,
        }
    }

    #[test]
    fn speedup_row_math_and_display() {
        let row = SpeedupRow {
            cell: "tspc".into(),
            n_points: 40,
            points_traced: 40,
            trace_simulations: 130,
            surface_simulations: 1600,
            trace_seconds: Some(2.0),
            surface_seconds: Some(52.0),
            mean_corrector_iterations: 2.5,
        };
        assert!((row.simulation_speedup() - 12.307).abs() < 0.01);
        assert_eq!(row.time_speedup(), Some(26.0));
        let s = row.to_string();
        assert!(s.contains("tspc"));
        assert!(s.contains("26.0x"));
    }

    #[test]
    fn contour_table_roundtrips_units() {
        let table = ContourTable::from_contour("tspc", &toy_contour());
        assert_eq!(table.rows.len(), 2);
        assert!((table.rows[0].0 - 100.0).abs() < 1e-9);
        let text = table.to_string();
        assert!(text.contains("setup(ps)"));
        assert!(text.contains("100.00"));
    }

    #[test]
    fn reports_are_serializable_and_comparable() {
        fn assert_serializable<T: serde::Serialize + PartialEq>() {}
        assert_serializable::<SpeedupRow>();
        assert_serializable::<OverlayReport>();
        assert_serializable::<ContourTable>();
        assert_serializable::<CellReport>();
    }

    #[test]
    fn overlay_report_compare_counts_points() {
        let contour = toy_contour();
        // Surface contour covering only part of the τs range.
        let sc = crate::SurfaceContour {
            points: vec![(90e-12, 210e-12), (120e-12, 180e-12)],
        };
        let report = OverlayReport::compare("tspc", &contour, &sc, 10);
        assert_eq!(report.compared_points, 1);
        assert!(report.max_deviation.is_finite());
        assert!(report.to_string().contains("tspc"));
    }
}
