//! First-party parallel fan-out for the embarrassingly parallel layers of
//! the characterization flow: surface generation cells, Monte Carlo
//! samples, PVT corners, and batch contour tracing.
//!
//! A work-stealing thread pool crate (rayon) would be the natural choice,
//! but this project must build in fully offline environments, so the
//! fan-out is implemented directly on `std::thread::scope`. The shape is
//! the same as a `par_iter().map().collect()`: a shared atomic cursor
//! hands out indices, each worker runs the job closure, and results are
//! merged back **in index order**, which makes parallel runs bitwise
//! identical to serial runs for independent jobs. Errors are deterministic
//! too: the error with the lowest job index wins, exactly as in a serial
//! left-to-right loop.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count policy for parallel sweeps.
///
/// The default is [`Parallelism::Serial`], so every existing call site
/// keeps its exact single-threaded behavior unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run all jobs on the calling thread; no worker threads are spawned.
    #[default]
    Serial,
    /// One worker per available CPU (`std::thread::available_parallelism`).
    Auto,
    /// Exactly this many worker threads; `0` and `1` behave like `Serial`.
    Threads(usize),
}

impl Parallelism {
    /// Maps a user-facing `--threads N` argument: `0` means [`Auto`]
    /// (use all CPUs), `1` means [`Serial`], anything else is an explicit
    /// thread count.
    ///
    /// [`Auto`]: Parallelism::Auto
    /// [`Serial`]: Parallelism::Serial
    pub fn from_thread_arg(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }

    /// The number of worker threads this policy resolves to on this host.
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// `true` when no worker threads would be spawned.
    pub fn is_serial(self) -> bool {
        self.thread_count() <= 1
    }
}

/// Runs `count` independent fallible jobs, returning their results in job
/// order.
///
/// Serial policies run a plain left-to-right loop with early exit on the
/// first error. Parallel policies fan the indices out over worker threads
/// and merge by index, so for jobs with no shared mutable state the
/// returned `Vec` is bitwise identical to the serial one. On failure the
/// error with the *lowest* index is returned (matching the serial early
/// exit) and in-flight workers stop claiming further jobs.
///
/// # Errors
///
/// Propagates the first (lowest-index) job error.
///
/// # Panics
///
/// Panics propagate from job closures when the scope joins.
pub fn run_indexed<T, E, F>(
    parallelism: Parallelism,
    count: usize,
    job: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> std::result::Result<T, E> + Sync,
{
    let threads = parallelism.thread_count().min(count).max(1);
    if threads <= 1 {
        return (0..count).map(job).collect();
    }

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<std::result::Result<T, E>>>> = Mutex::new({
        let mut v = Vec::new();
        v.resize_with(count, || None);
        v
    });
    // Telemetry follows the work: capture the caller's collector (if any)
    // and install it on every worker so counters, spans, and journal
    // events from parallel jobs land in the same collector as serial runs.
    // The fault injector rides along the same way, so an injection plan
    // covers fanned-out jobs too (each site's cursor stream is shared).
    let collector = shc_obs::current();
    let injector = shc_fault::current();
    let profiler = shc_prof::current();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _telemetry = collector.as_ref().map(shc_obs::install_scoped);
                let _faults = injector.as_ref().map(shc_fault::install_scoped);
                let _profile = profiler.as_ref().map(shc_prof::install_scoped);
                let mut local: Vec<(usize, std::result::Result<T, E>)> = Vec::new();
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = job(i);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    local.push((i, result));
                }
                // lint: allow(no-panic, reason = "poisoning means a sibling worker panicked; unwinding propagates that panic")
                let mut slots = slots.lock().expect("worker panicked holding results");
                for (i, r) in local {
                    slots[i] = Some(r);
                }
            });
        }
    });

    // lint: allow(no-panic, reason = "scope has joined all workers; poisoning means one panicked and the panic is already propagating")
    let slots = slots.into_inner().expect("worker panicked holding results");
    let mut out = Vec::with_capacity(count);
    for (i, slot) in slots.into_iter().enumerate() {
        // Indices are claimed monotonically, so a never-run slot can only
        // appear after the lowest-index error has been recorded; the scan
        // below therefore always hits `Some(Err)` before any `None`.
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            // lint: allow(no-panic, reason = "monotone index claiming guarantees an Err precedes any skipped slot; see comment above")
            None => unreachable!("job {i} skipped without a preceding error"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_elementwise() {
        let serial: Vec<u64> =
            run_indexed(Parallelism::Serial, 100, |i| Ok::<u64, ()>((i as u64) * 3)).unwrap();
        let parallel = run_indexed(Parallelism::Threads(4), 100, |i| {
            Ok::<u64, ()>((i as u64) * 3)
        })
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn lowest_index_error_wins() {
        let result = run_indexed(Parallelism::Threads(4), 64, |i| {
            if i % 7 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), 3);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u8> = run_indexed(Parallelism::Auto, 0, |_| Ok::<u8, ()>(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_arg_mapping() {
        assert_eq!(Parallelism::from_thread_arg(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_thread_arg(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_thread_arg(8), Parallelism::Threads(8));
        assert!(Parallelism::Serial.is_serial());
        assert!(Parallelism::Threads(1).is_serial());
        assert!(!Parallelism::Threads(2).is_serial());
        assert!(Parallelism::Auto.thread_count() >= 1);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(Parallelism::Threads(16), 3, Ok::<usize, ()>).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }
}
