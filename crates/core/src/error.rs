use std::fmt;

use shc_spice::SpiceError;

/// Errors produced by the characterization algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CharError {
    /// An underlying circuit simulation failed.
    Simulation(SpiceError),
    /// The characteristic clock-to-Q delay could not be measured (the
    /// output never crossed the target level with generous skews).
    NoCharacteristicDelay {
        /// The level that was never crossed, in volts.
        level: f64,
    },
    /// MPNR failed to converge.
    MpnrDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Last |h| value.
        h_value: f64,
    },
    /// The MPNR Jacobian vanished (flat region of the output surface) —
    /// the iterate is too far from the transition boundary.
    VanishingJacobian {
        /// Setup skew at the failure, in seconds.
        tau_s: f64,
        /// Hold skew at the failure, in seconds.
        tau_h: f64,
    },
    /// Seeding could not bracket the setup time.
    SeedBracketFailed {
        /// Description of what went wrong.
        reason: &'static str,
    },
    /// Curve tracing aborted before reaching the requested point count.
    TraceAborted {
        /// Points successfully traced.
        points_found: usize,
        /// Description of why tracing stopped.
        reason: &'static str,
    },
    /// An option value was invalid.
    BadOption {
        /// Description of the offending option.
        reason: &'static str,
    },
    /// A trace checkpoint could not be written or read.
    Checkpoint {
        /// Description of the I/O or format failure.
        reason: String,
    },
    /// An internal invariant was violated (a result that was requested
    /// upstream is missing). Surfaced as an error instead of a panic so
    /// one bad point cannot abort a batch characterization run.
    Internal {
        /// Which invariant broke.
        reason: &'static str,
    },
}

impl fmt::Display for CharError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharError::Simulation(e) => write!(f, "simulation failure: {e}"),
            CharError::NoCharacteristicDelay { level } => write!(
                f,
                "characteristic clock-to-Q not measurable: output never crossed {level:.3} V"
            ),
            CharError::MpnrDiverged {
                iterations,
                h_value,
            } => write!(
                f,
                "mpnr diverged after {iterations} iterations (|h| = {h_value:.3e})"
            ),
            CharError::VanishingJacobian { tau_s, tau_h } => write!(
                f,
                "mpnr jacobian vanished at (τs, τh) = ({:.1} ps, {:.1} ps)",
                tau_s * 1e12,
                tau_h * 1e12
            ),
            CharError::SeedBracketFailed { reason } => {
                write!(f, "seed bracketing failed: {reason}")
            }
            CharError::TraceAborted {
                points_found,
                reason,
            } => write!(f, "trace aborted after {points_found} points: {reason}"),
            CharError::BadOption { reason } => write!(f, "bad option: {reason}"),
            CharError::Checkpoint { reason } => write!(f, "checkpoint i/o failed: {reason}"),
            CharError::Internal { reason } => {
                write!(f, "internal invariant violated: {reason}")
            }
        }
    }
}

impl std::error::Error for CharError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CharError {
    fn from(e: SpiceError) -> Self {
        CharError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CharError::MpnrDiverged {
            iterations: 15,
            h_value: 0.3,
        };
        assert!(e.to_string().contains("15"));
        assert!(e.source().is_none());

        let e = CharError::from(SpiceError::NumericalBlowup { time: 1e-9 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CharError>();
    }
}
