//! Independent setup/hold characterization (paper Sec. III-B and ref \[6\]).
//!
//! When one skew is pinned to a generous value, `h` reduces to a scalar
//! equation in the other skew. Two solvers are provided:
//!
//! - [`binary_search`]: the industry-practice bisection on the pass/fail
//!   boundary (each probe is one transient simulation);
//! - [`newton`]: scalar Newton-Raphson using the sensitivity-computed
//!   derivative `∂h/∂τ` — the paper's ref \[6\] (DATE 2007), which it credits
//!   with 4–10× speedups over binary search.

use serde::{Deserialize, Serialize};
use shc_spice::waveform::{Param, Params};

use crate::{CharError, CharacterizationProblem, Result};

/// Which skew is being solved for (the other is pinned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewAxis {
    /// Solve for the setup skew at a pinned (generous) hold skew.
    Setup,
    /// Solve for the hold skew at a pinned (generous) setup skew.
    Hold,
}

impl SkewAxis {
    fn param(self) -> Param {
        match self {
            SkewAxis::Setup => Param::Setup,
            SkewAxis::Hold => Param::Hold,
        }
    }
}

/// Result of an independent (one-axis) characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndependentResult {
    /// The solved skew (setup or hold time), in seconds.
    pub skew: f64,
    /// Transient simulations consumed.
    pub simulations: usize,
    /// Iterations (bisections or Newton steps).
    pub iterations: usize,
}

/// Options for the independent solvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndependentOptions {
    /// Search range `[min, max]` for the solved skew, in seconds.
    pub range: (f64, f64),
    /// Solution tolerance, in seconds.
    pub tol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Optional warm start for [`newton`]: a previously known skew (e.g.
    /// the same cell at a neighboring PVT corner, as the paper suggests in
    /// its Sec. III-E step 1a). When set, the coarse bracketing phase is
    /// skipped entirely.
    pub initial_guess: Option<f64>,
}

impl Default for IndependentOptions {
    fn default() -> Self {
        IndependentOptions {
            range: (-100e-12, 1.5e-9),
            tol: 0.1e-12,
            max_iters: 60,
            initial_guess: None,
        }
    }
}

fn params_on_axis(problem: &CharacterizationProblem, axis: SkewAxis, value: f64) -> Params {
    problem.reference_params().with(axis.param(), value)
}

/// Bisection on the pass/fail boundary — one transient per probe.
///
/// # Errors
///
/// - [`CharError::SeedBracketFailed`] if the range does not bracket the
///   boundary;
/// - propagated simulation failures.
pub fn binary_search(
    problem: &CharacterizationProblem,
    axis: SkewAxis,
    opts: &IndependentOptions,
) -> Result<IndependentResult> {
    let sims_before = problem.simulation_count();
    let (mut lo, mut hi) = opts.range;
    let pass = |v: f64| -> Result<bool> {
        let h = problem.evaluate(&params_on_axis(problem, axis, v))?;
        Ok(problem.is_pass(h))
    };
    if !pass(hi)? {
        return Err(CharError::SeedBracketFailed {
            reason: "upper end of range fails to latch",
        });
    }
    if pass(lo)? {
        return Err(CharError::SeedBracketFailed {
            reason: "lower end of range already latches",
        });
    }
    let mut iterations = 0;
    while hi - lo > opts.tol && iterations < opts.max_iters {
        let mid = 0.5 * (lo + hi);
        if pass(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
        iterations += 1;
    }
    Ok(IndependentResult {
        skew: 0.5 * (lo + hi),
        simulations: problem.simulation_count() - sims_before,
        iterations,
    })
}

/// Scalar Newton-Raphson on `h(τ) = 0` along one axis, with the derivative
/// from forward sensitivity analysis (paper ref \[6\]).
///
/// Needs an initial guess inside the Newton convergence basin; a *coarse*
/// bisection (a handful of probes, as in the paper's Fig. 7) provides it.
///
/// # Errors
///
/// - [`CharError::SeedBracketFailed`] / [`CharError::MpnrDiverged`]
///   depending on which phase fails;
/// - propagated simulation failures.
pub fn newton(
    problem: &CharacterizationProblem,
    axis: SkewAxis,
    opts: &IndependentOptions,
) -> Result<IndependentResult> {
    let sims_before = problem.simulation_count();
    let mut iterations = 0;
    let (mut lo, mut hi) = opts.range;
    let mut tau = match opts.initial_guess {
        Some(guess) => guess,
        None => {
            // Coarse bracketing until the interval is small enough for
            // Newton (a transition-region width or so).
            let coarse_tol = (opts.tol * 500.0).max(80e-12);
            let pass = |v: f64| -> Result<bool> {
                let h = problem.evaluate(&params_on_axis(problem, axis, v))?;
                Ok(problem.is_pass(h))
            };
            if !pass(hi)? {
                return Err(CharError::SeedBracketFailed {
                    reason: "upper end of range fails to latch",
                });
            }
            if pass(lo)? {
                return Err(CharError::SeedBracketFailed {
                    reason: "lower end of range already latches",
                });
            }
            while hi - lo > coarse_tol {
                let mid = 0.5 * (lo + hi);
                if pass(mid)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
                iterations += 1;
            }
            0.5 * (lo + hi)
        }
    };

    // Newton refinement.
    for _ in 0..opts.max_iters {
        iterations += 1;
        let ev = problem.evaluate_with_jacobian(&params_on_axis(problem, axis, tau))?;
        let dh = match axis {
            SkewAxis::Setup => ev.dh_dtau_s,
            SkewAxis::Hold => ev.dh_dtau_h,
        };
        if dh == 0.0 || !dh.is_finite() {
            return Err(CharError::VanishingJacobian {
                tau_s: tau,
                tau_h: tau,
            });
        }
        let mut delta = -ev.h / dh;
        // Newton safeguard: cap the step at roughly a transition-region
        // width so a guess in a flat region cannot fly out of the skew
        // window (the bracketed range is irrelevant when warm-started).
        let max_step = 100e-12;
        if delta.abs() > max_step {
            delta = delta.signum() * max_step;
        }
        tau += delta;
        if delta.abs() <= opts.tol {
            return Ok(IndependentResult {
                skew: tau,
                simulations: problem.simulation_count() - sims_before,
                iterations,
            });
        }
    }
    Err(CharError::MpnrDiverged {
        iterations: opts.max_iters,
        h_value: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn fast_problem() -> CharacterizationProblem {
        let tech = Technology::default_250nm();
        CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
            .build()
            .unwrap()
    }

    #[test]
    fn newton_and_bisection_agree_on_setup_time() {
        let problem = fast_problem();
        let opts = IndependentOptions {
            tol: 0.05e-12,
            ..IndependentOptions::default()
        };
        let bis = binary_search(&problem, SkewAxis::Setup, &opts).unwrap();
        let nwt = newton(&problem, SkewAxis::Setup, &opts).unwrap();
        assert!(
            (bis.skew - nwt.skew).abs() < 2e-12,
            "bisection {:.3} ps vs newton {:.3} ps",
            bis.skew * 1e12,
            nwt.skew * 1e12
        );
        // Newton should use fewer simulations (the paper's 4–10×; we only
        // require a strict improvement here to stay robust across cells).
        assert!(
            nwt.simulations < bis.simulations,
            "newton {} sims vs bisection {} sims",
            nwt.simulations,
            bis.simulations
        );
    }

    #[test]
    fn hold_axis_solves_too() {
        let problem = fast_problem();
        let opts = IndependentOptions::default();
        let hold = binary_search(&problem, SkewAxis::Hold, &opts).unwrap();
        assert!(
            hold.skew > -100e-12 && hold.skew < 1.0e-9,
            "hold time {:.1} ps",
            hold.skew * 1e12
        );
    }

    #[test]
    fn bad_range_is_reported() {
        let problem = fast_problem();
        let opts = IndependentOptions {
            range: (1.0e-9, 1.4e-9), // entirely in the pass region
            ..IndependentOptions::default()
        };
        assert!(matches!(
            binary_search(&problem, SkewAxis::Setup, &opts),
            Err(CharError::SeedBracketFailed { .. })
        ));
    }
}
