//! SHIA-STA interface: consuming interdependent setup/hold contours.
//!
//! The paper's point of building contours at all (its refs \[1\], \[2\]) is
//! **Setup/Hold-Interdependence-Aware static timing analysis**: when a path
//! has a hold violation, the STA engine picks a *different* (τs, τh) pair
//! on the same constant clock-to-Q contour — shorter hold, longer setup —
//! and the violation disappears with zero circuit changes. This module
//! packages a traced [`Contour`] into the query model such a flow needs:
//!
//! - [`SetupHoldModel::min_setup_for_hold`] — the smallest setup time that
//!   guarantees correct capture at a given hold time;
//! - [`SetupHoldModel::min_hold_for_setup`] — the dual query;
//! - [`SetupHoldModel::pairs`] — the monotone staircase envelope suitable
//!   for table-driven timers (Liberty-style lookup rows).
//!
//! The raw contour may be locally non-monotone (real cells are); a timing
//! model must be conservative, so the envelope keeps, for every hold
//! level, the *largest* setup seen at or below it — guaranteeing that any
//! returned pair is on or above the curve.

use serde::{Deserialize, Serialize};

use crate::Contour;

/// A conservative, monotone setup/hold tradeoff model built from a traced
/// contour.
///
/// # Example
///
/// ```rust,no_run
/// use shc_cells::{tspc_register, Technology};
/// use shc_core::{shia::SetupHoldModel, CharacterizationProblem};
///
/// # fn main() -> Result<(), shc_core::CharError> {
/// let problem =
///     CharacterizationProblem::builder(tspc_register(&Technology::default_250nm()))
///         .build()?;
/// let contour = problem.trace_contour(20)?;
/// let model = SetupHoldModel::from_contour(&contour).expect("nonempty contour");
/// // A hold violation wants the hold requirement down to 45 ps; what setup
/// // must the path then honour?
/// if let Some(setup) = model.min_setup_for_hold(45e-12) {
///     println!("trade: hold 45 ps needs setup {:.1} ps", setup * 1e12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetupHoldModel {
    /// `(setup, hold)` pairs, sorted by increasing setup and strictly
    /// decreasing hold — the conservative staircase envelope.
    pairs: Vec<(f64, f64)>,
}

impl SetupHoldModel {
    /// Builds the model from a traced contour.
    ///
    /// Returns `None` for contours with fewer than two points.
    pub fn from_contour(contour: &Contour) -> Option<Self> {
        if contour.points().len() < 2 {
            return None;
        }
        // Sort by hold descending, then sweep keeping the running max of
        // setup: each kept pair is conservative for its hold level.
        let mut pts: Vec<(f64, f64)> = contour
            .points()
            .iter()
            .map(|p| (p.tau_s, p.tau_h))
            .collect();
        pts.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        let mut max_setup = f64::NEG_INFINITY;
        for (s, h) in pts {
            max_setup = max_setup.max(s);
            match pairs.last_mut() {
                // Same hold level: keep only the conservative (max) setup.
                Some((ps, ph)) if (*ph - h).abs() < 1e-18 => *ps = max_setup,
                _ => pairs.push((max_setup, h)),
            }
        }
        // `pairs` is now hold-descending with nondecreasing setup; drop
        // entries that add setup without reducing hold (redundant rows).
        pairs.dedup_by(|next, prev| next.0 <= prev.0 + 1e-18);
        Some(SetupHoldModel { pairs })
    }

    /// The staircase rows, sorted by increasing setup / decreasing hold.
    pub fn pairs(&self) -> &[(f64, f64)] {
        &self.pairs
    }

    /// Smallest setup time that guarantees capture when the data is held
    /// for `hold` seconds, by conservative interpolation on the envelope.
    ///
    /// Returns `None` if `hold` is below the smallest characterized hold
    /// (no amount of setup rescues it within this contour).
    pub fn min_setup_for_hold(&self, hold: f64) -> Option<f64> {
        let (first, last) = (self.pairs.first()?, self.pairs.last()?);
        if hold >= first.1 {
            return Some(first.0); // generous hold: the asymptotic setup
        }
        if hold < last.1 {
            return None;
        }
        // pairs: hold descending. Find the bracketing segment and
        // interpolate; the envelope is conservative by construction.
        for w in self.pairs.windows(2) {
            let ((s0, h0), (s1, h1)) = (w[0], w[1]);
            if hold <= h0 && hold >= h1 {
                if (h0 - h1).abs() < 1e-30 {
                    return Some(s1);
                }
                let frac = (h0 - hold) / (h0 - h1);
                return Some(s0 + frac * (s1 - s0));
            }
        }
        Some(last.0)
    }

    /// Smallest hold time that guarantees capture when the data arrives
    /// `setup` seconds early — the dual query.
    ///
    /// Returns `None` if `setup` is below the smallest characterized setup.
    pub fn min_hold_for_setup(&self, setup: f64) -> Option<f64> {
        let (first, last) = (self.pairs.first()?, self.pairs.last()?);
        if setup >= last.0 {
            return Some(last.1);
        }
        if setup < first.0 {
            return None;
        }
        for w in self.pairs.windows(2) {
            let ((s0, h0), (s1, h1)) = (w[0], w[1]);
            if setup >= s0 && setup <= s1 {
                if (s1 - s0).abs() < 1e-30 {
                    return Some(h1);
                }
                // Conservative: within the segment, use the *larger* hold
                // of the bracketing rows' interpolation.
                let frac = (setup - s0) / (s1 - s0);
                return Some(h0 + frac * (h1 - h0));
            }
        }
        Some(first.1)
    }

    /// The classic single-point characterization this model generalizes:
    /// `(setup at most generous hold, hold at most generous setup)`.
    pub fn independent_times(&self) -> (f64, f64) {
        // Constructors reject empty models, but degrade to (0, 0) rather
        // than panicking if that ever changes.
        match (self.pairs.first(), self.pairs.last()) {
            (Some(first), Some(last)) => (first.0, last.1),
            _ => (0.0, 0.0),
        }
    }

    /// Renders Liberty-flavoured lookup rows (`index_1` = hold, values =
    /// setup), ready to paste into a `.lib` prototype.
    pub fn to_liberty_rows(&self) -> String {
        let holds: Vec<String> = self
            .pairs
            .iter()
            .map(|(_, h)| format!("{:.4}", h * 1e9))
            .collect();
        let setups: Vec<String> = self
            .pairs
            .iter()
            .map(|(s, _)| format!("{:.4}", s * 1e9))
            .collect();
        format!(
            "/* interdependent setup/hold (ns) */\nindex_1(\"{}\");\nvalues(\"{}\");\n",
            holds.join(", "),
            setups.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContourPoint;

    fn contour_from(pairs: &[(f64, f64)]) -> Contour {
        Contour {
            points: pairs
                .iter()
                .map(|&(tau_s, tau_h)| ContourPoint {
                    tau_s,
                    tau_h,
                    corrector_iterations: 2,
                    residual: 0.0,
                })
                .collect(),
            simulations: pairs.len(),
            total_corrector_iterations: 2 * pairs.len(),
        }
    }

    #[test]
    fn envelope_is_monotone() {
        // A locally non-monotone contour (the TSPC dip).
        let c = contour_from(&[
            (160e-12, 140e-12),
            (155e-12, 100e-12), // dip: less setup at less hold
            (165e-12, 60e-12),
            (200e-12, 50e-12),
            (300e-12, 42e-12),
        ]);
        let m = SetupHoldModel::from_contour(&c).unwrap();
        for w in m.pairs().windows(2) {
            assert!(w[1].0 > w[0].0, "setup must increase");
            assert!(w[1].1 < w[0].1, "hold must decrease");
        }
        // The dip is absorbed conservatively: setup for hold 100 ps is the
        // asymptotic 160 ps, not the dipped 155 ps.
        let s = m.min_setup_for_hold(100e-12).unwrap();
        assert!(s >= 160e-12 - 1e-15, "conservative envelope, got {s:e}");
    }

    #[test]
    fn queries_interpolate_and_clamp() {
        let c = contour_from(&[(100e-12, 200e-12), (200e-12, 100e-12), (400e-12, 50e-12)]);
        let m = SetupHoldModel::from_contour(&c).unwrap();
        // Generous hold: asymptotic setup.
        assert_eq!(m.min_setup_for_hold(1e-9), Some(100e-12));
        // Interpolated mid-segment.
        let s = m.min_setup_for_hold(150e-12).unwrap();
        assert!((s - 150e-12).abs() < 1e-15, "got {s:e}");
        // Below the characterized range: impossible.
        assert_eq!(m.min_setup_for_hold(10e-12), None);
        // Dual queries.
        assert_eq!(m.min_hold_for_setup(1e-9), Some(50e-12));
        assert_eq!(m.min_hold_for_setup(50e-12), None);
        let h = m.min_hold_for_setup(150e-12).unwrap();
        assert!((h - 150e-12).abs() < 1e-15, "got {h:e}");
    }

    #[test]
    fn independent_times_are_the_extremes() {
        let c = contour_from(&[(100e-12, 200e-12), (400e-12, 50e-12)]);
        let m = SetupHoldModel::from_contour(&c).unwrap();
        let (setup, hold) = m.independent_times();
        assert_eq!(setup, 100e-12);
        assert_eq!(hold, 50e-12);
    }

    #[test]
    fn degenerate_contour_is_rejected() {
        let c = contour_from(&[(100e-12, 200e-12)]);
        assert!(SetupHoldModel::from_contour(&c).is_none());
    }

    #[test]
    fn liberty_rows_render() {
        let c = contour_from(&[(100e-12, 200e-12), (400e-12, 50e-12)]);
        let m = SetupHoldModel::from_contour(&c).unwrap();
        let lib = m.to_liberty_rows();
        assert!(lib.contains("index_1"));
        assert!(lib.contains("0.2000"));
        assert!(lib.contains("0.4000"));
    }

    /// The headline SHIA-STA use case: a hold violation is repaired by
    /// walking the contour.
    #[test]
    fn hold_violation_repair_scenario() {
        let c = contour_from(&[
            (120e-12, 180e-12),
            (150e-12, 120e-12),
            (220e-12, 70e-12),
            (380e-12, 45e-12),
        ]);
        let m = SetupHoldModel::from_contour(&c).unwrap();
        let (indep_setup, _) = m.independent_times();
        // STA says the path only holds data for 80 ps — a violation against
        // the independent hold-at-generous-setup row of 180 ps.
        let needed_setup = m.min_setup_for_hold(80e-12).expect("repairable");
        assert!(
            needed_setup > indep_setup,
            "the repair must cost setup margin"
        );
        assert!(
            needed_setup < 380e-12,
            "and stay within the characterized range"
        );
    }
}
