//! Multi-corner (PVT) characterization sweeps.
//!
//! The paper's motivation (Sec. I): setup/hold must be characterized "for
//! every register/cell of every standard cell library … for all
//! process-voltage-temperature (PVT) corners or statistical process
//! samples", which is why characterization takes "weeks or months even on
//! large dedicated computer clusters". This module implements that outer
//! loop over the Euler-Newton kernel, with the warm-start the paper's
//! Sec. III-E step 1a recommends: each corner's trace is seeded from the
//! previous corner's first contour point, skipping the bracketing search
//! entirely whenever the corners are adjacent enough.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use shc_cells::Register;
use shc_spice::batch::{BatchPolicy, DEFAULT_LANES};
use shc_spice::waveform::Params;

use crate::mpnr::{self, MpnrOptions};
use crate::parallel::{self, Parallelism};
use crate::seed::{self, SeedOptions};
use crate::tracer::{self, TracerOptions};
use crate::{CharacterizationProblem, Contour, Result};

/// One corner's characterization outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerResult {
    /// Corner label (e.g. `"ss_2.3V"`).
    pub label: String,
    /// Characteristic clock-to-Q delay at this corner, seconds.
    pub t_cq: f64,
    /// The traced constant clock-to-Q contour.
    pub contour: Contour,
    /// Transient simulations this corner consumed (seeding + tracing).
    pub simulations: usize,
    /// Whether the warm start from the previous corner succeeded (false
    /// for the first corner and after warm-start fallbacks).
    pub warm_started: bool,
}

/// Options for a corner sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Contour points per corner.
    pub points: usize,
    /// Tracer settings.
    pub tracer: TracerOptions,
    /// Seeding settings (used for the first corner and as fallback).
    pub seed: SeedOptions,
    /// MPNR settings for warm-start polishing.
    pub mpnr: MpnrOptions,
    /// Fan-out policy for the corner loop. Serial keeps the paper's
    /// corner-to-corner warm-start chain; parallel policies solve the
    /// first corner cold and warm-start every remaining corner from it
    /// concurrently.
    #[serde(skip)]
    pub parallelism: Parallelism,
    /// Batched-engine policy for serial sweeps. When it may engage, the
    /// serial sweep adopts the parallel path's warm-start shape — first
    /// corner cold, every later corner polished from its first contour
    /// point — so lane groups can share one lockstep transient per MPNR
    /// iteration. [`BatchPolicy::Scalar`] keeps the corner-to-corner
    /// chain.
    #[serde(default)]
    pub batch: BatchPolicy,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            points: 20,
            tracer: TracerOptions::default(),
            seed: SeedOptions::default(),
            mpnr: MpnrOptions::default(),
            parallelism: Parallelism::default(),
            batch: BatchPolicy::default(),
        }
    }
}

/// Characterizes one register fixture per corner.
///
/// Serial sweeps warm-start each corner from the previous one (the paper's
/// Sec. III-E chaining). With a parallel [`SweepOptions::parallelism`]
/// policy, the first corner runs cold and the remaining corners run
/// concurrently, each warm-started from the first corner's contour point;
/// results are always returned in input order.
///
/// When [`SweepOptions::batch`] may engage (the default `Auto` with no
/// fault injector, or `Batched`), serial sweeps adopt the parallel path's
/// anchor warm-start shape and advance each lane group's MPNR polish
/// through one lockstep batched transient per iteration — corner for
/// corner identical to the same sweep under a parallel policy.
///
/// `corners` yields `(label, register)` pairs — typically the same cell
/// rebuilt with shifted [`shc_cells::Technology`] parameters.
///
/// # Errors
///
/// Propagates the first corner's failures directly; later corners fall
/// back to full (cold) seeding before giving up.
///
/// # Example
///
/// ```rust,no_run
/// use shc_cells::{tspc_register, Technology};
/// use shc_core::corners::{sweep, SweepOptions};
///
/// # fn main() -> Result<(), shc_core::CharError> {
/// let mut corners = Vec::new();
/// for (label, vdd) in [("slow_2.3V", 2.3), ("typ_2.5V", 2.5), ("fast_2.7V", 2.7)] {
///     let mut tech = Technology::default_250nm();
///     tech.vdd = vdd;
///     corners.push((label.to_string(), tspc_register(&tech)));
/// }
/// let results = sweep(corners, &SweepOptions::default())?;
/// for r in &results {
///     println!("{}: t_CQ {:.1} ps, {} sims", r.label, r.t_cq * 1e12, r.simulations);
/// }
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    corners: impl IntoIterator<Item = (String, Register)>,
    opts: &SweepOptions,
) -> Result<Vec<CornerResult>> {
    let _span = shc_obs::span(shc_obs::SpanKind::Corners);
    if opts.parallelism.is_serial() {
        // Batched lockstep reorders problem building against solving, which
        // would perturb fault-injection draw order; under an active injector
        // the Auto policy keeps the scalar corner-to-corner chain.
        let try_lockstep = match opts.batch {
            BatchPolicy::Scalar => false,
            BatchPolicy::Auto => !shc_fault::enabled(),
            BatchPolicy::Batched => true,
        };
        if try_lockstep {
            return sweep_serial_lockstep(corners, opts);
        }
        let mut results = Vec::new();
        let mut previous_first: Option<Params> = None;
        for (label, register) in corners {
            let (result, first) = run_corner(label, register, opts, previous_first)?;
            previous_first = Some(first);
            results.push(result);
        }
        return Ok(results);
    }

    // Parallel sweep: concurrent corners cannot chain corner-to-corner, so
    // the first corner is solved cold on the calling thread and its first
    // contour point anchors the warm start of every remaining corner.
    // Registers are not `Clone`, so the fan-out claims each one by `take`.
    let mut rest = corners.into_iter();
    let Some((label, register)) = rest.next() else {
        return Ok(Vec::new());
    };
    let (anchor, anchor_params) = run_corner(label, register, opts, None)?;
    let slots: Vec<Mutex<Option<(String, Register)>>> =
        rest.map(|corner| Mutex::new(Some(corner))).collect();
    let mut results = vec![anchor];
    results.extend(parallel::run_indexed(opts.parallelism, slots.len(), |i| {
        let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
        let (label, register) = slots[i]
            .lock()
            // lint: allow(no-panic, reason = "poisoned slot means a sibling corner already panicked; unwinding is the only option left")
            .expect("corner slot poisoned")
            .take()
            // lint: allow(no-panic, reason = "run_indexed dispatches each index exactly once")
            .expect("corner job ran twice");
        run_corner(label, register, opts, Some(anchor_params)).map(|(result, _)| result)
    })?);
    Ok(results)
}

/// Serial sweep through the batched engine: the first corner runs cold and
/// every later corner is warm-polished from its first contour point in
/// lockstep lane groups — the parallel path's warm-start shape, so lane
/// groups can share one batched transient per MPNR iteration. A lane whose
/// polish fails falls back to cold seeding; contour tracing stays
/// per-corner.
fn sweep_serial_lockstep(
    corners: impl IntoIterator<Item = (String, Register)>,
    opts: &SweepOptions,
) -> Result<Vec<CornerResult>> {
    let mut rest = corners.into_iter();
    let Some((label, register)) = rest.next() else {
        return Ok(Vec::new());
    };
    let (anchor, anchor_params) = run_corner(label, register, opts, None)?;
    let mut results = vec![anchor];
    let mut remaining = rest.peekable();
    while remaining.peek().is_some() {
        let group: Vec<(String, Register)> = remaining.by_ref().take(DEFAULT_LANES).collect();
        let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
        let mut labels = Vec::with_capacity(group.len());
        let mut problems = Vec::with_capacity(group.len());
        for (label, register) in group {
            let problem = CharacterizationProblem::builder(register)
                .batch(opts.batch)
                .build()?;
            problem.reset_simulation_count();
            labels.push(label);
            problems.push(problem);
        }
        let refs: Vec<&CharacterizationProblem> = problems.iter().collect();
        let warm = mpnr::solve_batch(
            &refs,
            &vec![anchor_params; refs.len()],
            &opts.mpnr,
            opts.batch,
        );
        for ((label, problem), solved) in labels.into_iter().zip(&problems).zip(warm) {
            let (first_point, warm_started) = match solved {
                Ok(polished) => (polished, true),
                Err(_) => (seed::find_first_point(problem, &opts.seed)?, false),
            };
            let contour = tracer::trace(problem, first_point.params, opts.points, &opts.tracer)?;
            results.push(CornerResult {
                label,
                t_cq: problem.characteristic_delay(),
                contour,
                simulations: problem.simulation_count(),
                warm_started,
            });
        }
    }
    Ok(results)
}

/// Characterizes one corner, optionally polishing a warm-start guess onto
/// its contour with MPNR (falling back to cold seeding). Returns the
/// corner's result plus its first contour point, which seeds the next
/// corner in serial sweeps.
fn run_corner(
    label: String,
    register: Register,
    opts: &SweepOptions,
    warm_start: Option<Params>,
) -> Result<(CornerResult, Params)> {
    let problem = CharacterizationProblem::builder(register).build()?;
    problem.reset_simulation_count();

    let mut warm_started = false;
    let first_point = match warm_start {
        Some(guess) => match mpnr::solve(&problem, guess, &opts.mpnr) {
            Ok(polished) => {
                warm_started = true;
                polished
            }
            Err(_) => seed::find_first_point(&problem, &opts.seed)?,
        },
        None => seed::find_first_point(&problem, &opts.seed)?,
    };

    let contour = tracer::trace(&problem, first_point.params, opts.points, &opts.tracer)?;
    let first_params = first_point.params;
    let result = CornerResult {
        label,
        t_cq: problem.characteristic_delay(),
        contour,
        simulations: problem.simulation_count(),
        warm_started,
    };
    Ok((result, first_params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn corner_registers() -> Vec<(String, shc_cells::Register)> {
        [2.3, 2.5, 2.7]
            .iter()
            .map(|&vdd| {
                let mut tech = Technology::default_250nm();
                tech.vdd = vdd;
                (
                    format!("vdd_{vdd}"),
                    tspc_register_with(&tech, ClockSpec::fast()),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_characterizes_every_corner() {
        let opts = SweepOptions {
            points: 6,
            ..SweepOptions::default()
        };
        let results = sweep(corner_registers(), &opts).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.contour.points().len() >= 3, "{}: thin contour", r.label);
            assert!(r.t_cq > 0.0);
        }
        // Lower supply ⇒ slower cell.
        assert!(
            results[0].t_cq > results[2].t_cq,
            "slow corner {:.1} ps should exceed fast corner {:.1} ps",
            results[0].t_cq * 1e12,
            results[2].t_cq * 1e12
        );
    }

    #[test]
    fn parallel_sweep_covers_all_corners_in_order() {
        let opts = SweepOptions {
            points: 6,
            parallelism: Parallelism::Threads(3),
            ..SweepOptions::default()
        };
        let results = sweep(corner_registers(), &opts).unwrap();
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["vdd_2.3", "vdd_2.5", "vdd_2.7"]);
        assert!(!results[0].warm_started, "anchor corner runs cold");
        for r in &results {
            assert!(r.contour.points().len() >= 3, "{}: thin contour", r.label);
            assert!(r.t_cq > 0.0);
        }
        assert!(
            results[0].t_cq > results[2].t_cq,
            "corner ordering lost in the parallel merge"
        );
    }

    #[test]
    fn batched_serial_sweep_matches_parallel_corner_for_corner() {
        let base = SweepOptions {
            points: 6,
            batch: BatchPolicy::Batched,
            ..SweepOptions::default()
        };
        let parallel_opts = SweepOptions {
            parallelism: Parallelism::Threads(3),
            batch: BatchPolicy::Scalar,
            ..base
        };
        let batched = sweep(corner_registers(), &base).unwrap();
        let parallel = sweep(corner_registers(), &parallel_opts).unwrap();
        assert_eq!(batched, parallel);
    }

    #[test]
    fn warm_start_saves_simulations_on_later_corners() {
        let opts = SweepOptions {
            points: 6,
            ..SweepOptions::default()
        };
        let results = sweep(corner_registers(), &opts).unwrap();
        assert!(
            !results[0].warm_started,
            "first corner has nothing to reuse"
        );
        let warm_count = results[1..].iter().filter(|r| r.warm_started).count();
        assert!(
            warm_count >= 1,
            "adjacent corners should warm-start (got {warm_count}/2)"
        );
        // Warm-started corners must be cheaper than the cold first corner.
        for r in results[1..].iter().filter(|r| r.warm_started) {
            assert!(
                r.simulations < results[0].simulations,
                "{}: warm start did not save work ({} vs {} sims)",
                r.label,
                r.simulations,
                results[0].simulations
            );
        }
    }
}
