//! Multi-corner (PVT) characterization sweeps.
//!
//! The paper's motivation (Sec. I): setup/hold must be characterized "for
//! every register/cell of every standard cell library … for all
//! process-voltage-temperature (PVT) corners or statistical process
//! samples", which is why characterization takes "weeks or months even on
//! large dedicated computer clusters". This module implements that outer
//! loop over the Euler-Newton kernel, with the warm-start the paper's
//! Sec. III-E step 1a recommends: each corner's trace is seeded from the
//! previous corner's first contour point, skipping the bracketing search
//! entirely whenever the corners are adjacent enough.

use serde::{Deserialize, Serialize};
use shc_cells::Register;
use shc_spice::waveform::Params;

use crate::mpnr::{self, MpnrOptions};
use crate::seed::{self, SeedOptions};
use crate::tracer::{self, TracerOptions};
use crate::{CharacterizationProblem, Contour, Result};

/// One corner's characterization outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerResult {
    /// Corner label (e.g. `"ss_2.3V"`).
    pub label: String,
    /// Characteristic clock-to-Q delay at this corner, seconds.
    pub t_cq: f64,
    /// The traced constant clock-to-Q contour.
    pub contour: Contour,
    /// Transient simulations this corner consumed (seeding + tracing).
    pub simulations: usize,
    /// Whether the warm start from the previous corner succeeded (false
    /// for the first corner and after warm-start fallbacks).
    pub warm_started: bool,
}

/// Options for a corner sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Contour points per corner.
    pub points: usize,
    /// Tracer settings.
    pub tracer: TracerOptions,
    /// Seeding settings (used for the first corner and as fallback).
    pub seed: SeedOptions,
    /// MPNR settings for warm-start polishing.
    pub mpnr: MpnrOptions,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            points: 20,
            tracer: TracerOptions::default(),
            seed: SeedOptions::default(),
            mpnr: MpnrOptions::default(),
        }
    }
}

/// Characterizes one register fixture per corner, warm-starting each corner
/// from the previous one.
///
/// `corners` yields `(label, register)` pairs — typically the same cell
/// rebuilt with shifted [`shc_cells::Technology`] parameters.
///
/// # Errors
///
/// Propagates the first corner's failures directly; later corners fall
/// back to full (cold) seeding before giving up.
///
/// # Example
///
/// ```rust,no_run
/// use shc_cells::{tspc_register, Technology};
/// use shc_core::corners::{sweep, SweepOptions};
///
/// # fn main() -> Result<(), shc_core::CharError> {
/// let mut corners = Vec::new();
/// for (label, vdd) in [("slow_2.3V", 2.3), ("typ_2.5V", 2.5), ("fast_2.7V", 2.7)] {
///     let mut tech = Technology::default_250nm();
///     tech.vdd = vdd;
///     corners.push((label.to_string(), tspc_register(&tech)));
/// }
/// let results = sweep(corners, &SweepOptions::default())?;
/// for r in &results {
///     println!("{}: t_CQ {:.1} ps, {} sims", r.label, r.t_cq * 1e12, r.simulations);
/// }
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    corners: impl IntoIterator<Item = (String, Register)>,
    opts: &SweepOptions,
) -> Result<Vec<CornerResult>> {
    let mut results = Vec::new();
    let mut previous_first: Option<Params> = None;

    for (label, register) in corners {
        let problem = CharacterizationProblem::builder(register).build()?;
        problem.reset_simulation_count();

        // Try the warm start: polish the previous corner's first point onto
        // this corner's contour with MPNR alone.
        let mut warm_started = false;
        let first_point = match previous_first {
            Some(guess) => match mpnr::solve(&problem, guess, &opts.mpnr) {
                Ok(polished) => {
                    warm_started = true;
                    polished
                }
                Err(_) => seed::find_first_point(&problem, &opts.seed)?,
            },
            None => seed::find_first_point(&problem, &opts.seed)?,
        };

        let contour = tracer::trace(&problem, first_point.params, opts.points, &opts.tracer)?;
        previous_first = Some(first_point.params);
        results.push(CornerResult {
            label,
            t_cq: problem.characteristic_delay(),
            contour,
            simulations: problem.simulation_count(),
            warm_started,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn corner_registers() -> Vec<(String, shc_cells::Register)> {
        [2.3, 2.5, 2.7]
            .iter()
            .map(|&vdd| {
                let mut tech = Technology::default_250nm();
                tech.vdd = vdd;
                (
                    format!("vdd_{vdd}"),
                    tspc_register_with(&tech, ClockSpec::fast()),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_characterizes_every_corner() {
        let opts = SweepOptions {
            points: 6,
            ..SweepOptions::default()
        };
        let results = sweep(corner_registers(), &opts).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.contour.points().len() >= 3, "{}: thin contour", r.label);
            assert!(r.t_cq > 0.0);
        }
        // Lower supply ⇒ slower cell.
        assert!(
            results[0].t_cq > results[2].t_cq,
            "slow corner {:.1} ps should exceed fast corner {:.1} ps",
            results[0].t_cq * 1e12,
            results[2].t_cq * 1e12
        );
    }

    #[test]
    fn warm_start_saves_simulations_on_later_corners() {
        let opts = SweepOptions {
            points: 6,
            ..SweepOptions::default()
        };
        let results = sweep(corner_registers(), &opts).unwrap();
        assert!(!results[0].warm_started, "first corner has nothing to reuse");
        let warm_count = results[1..].iter().filter(|r| r.warm_started).count();
        assert!(
            warm_count >= 1,
            "adjacent corners should warm-start (got {warm_count}/2)"
        );
        // Warm-started corners must be cheaper than the cold first corner.
        for r in results[1..].iter().filter(|r| r.warm_started) {
            assert!(
                r.simulations < results[0].simulations,
                "{}: warm start did not save work ({} vs {} sims)",
                r.label,
                r.simulations,
                results[0].simulations
            );
        }
    }
}
