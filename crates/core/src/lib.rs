//! # shc-core
//!
//! Interdependent latch setup/hold time characterization via Euler-Newton
//! curve tracing on state-transition equations — a full implementation of
//! Srivastava & Roychowdhury, DAC 2007.
//!
//! ## The algorithm
//!
//! 1. **Formulation** ([`CharacterizationProblem`]): the interdependent
//!    setup/hold problem is the underdetermined scalar equation
//!    `h(τs, τh) = cᵀ φ(t_f; x₀, 0, τs, τh) − r = 0`, where `φ` is the
//!    state-transition function of the register DAE, `t_f` the time at
//!    which the clock-to-Q delay is degraded by (e.g.) 10%, and `r` the
//!    output level marking arrival. `h` is evaluated by one transient
//!    simulation; its 1×2 Jacobian comes from forward sensitivities
//!    propagated alongside the transient (paper eqs. (7)–(14)).
//! 2. **MPNR** ([`mpnr`]): one contour point is found with a Moore-Penrose
//!    pseudo-inverse Newton-Raphson iteration
//!    `τ ← τ − h(τ)·H(τ)⁺` (paper eqs. (15), (23)–(24)), which converges to
//!    the solution-curve point nearest the initial guess.
//! 3. **Euler-Newton tracing** ([`tracer`]): from a converged point, the
//!    unit tangent `T = (−∂h/∂τh, ∂h/∂τs)/‖·‖` (paper eq. (16)) gives an
//!    Euler predictor step of length α; MPNR corrects back onto the curve
//!    (2–3 iterations typical). Repeating yields the whole constant
//!    clock-to-Q contour in O(n) simulations, versus O(n²) for brute-force
//!    surface generation.
//!
//! Baselines from the paper are implemented too: brute-force output-surface
//! generation with contour extraction ([`surface`]), and independent
//! setup/hold characterization by binary search and by scalar Newton
//! ([`independent`], the paper's ref \[6\]).
//!
//! # Example
//!
//! ```rust,no_run
//! use shc_cells::{tspc_register, Technology};
//! use shc_core::CharacterizationProblem;
//!
//! # fn main() -> Result<(), shc_core::CharError> {
//! let tech = Technology::default_250nm();
//! let problem = CharacterizationProblem::builder(tspc_register(&tech))
//!     .degradation(0.10)
//!     .build()?;
//! let contour = problem.trace_contour(40)?;
//! for p in contour.points() {
//!     println!("setup {:.1} ps  hold {:.1} ps", p.tau_s * 1e12, p.tau_h * 1e12);
//! }
//! # Ok(())
//! # }
//! ```

pub mod corners;
mod error;
pub mod independent;
pub mod montecarlo;
pub mod mpnr;
pub mod parallel;
mod problem;
pub mod report;
pub mod seed;
pub mod shia;
pub mod stack;
pub mod surface;
pub mod table;
pub mod tracer;

pub use error::CharError;
pub use mpnr::{MpnrOptions, MpnrResult};
pub use parallel::Parallelism;
pub use problem::{CharacterizationProblem, HEvaluation, ProblemBuilder};
pub use seed::SeedOptions;
pub use shc_spice::batch::BatchPolicy;
pub use surface::{OutputSurface, SurfaceContour, SurfaceOptions};
pub use tracer::{
    trace_batch, trace_session, BatchContour, BatchOptions, CheckpointConfig, Contour,
    ContourPoint, RecoveryOptions, TraceDirection, TraceOutcome, TraceStart, TracerOptions,
};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CharError>;
