//! Problem formulation: the scalar equation `h(τs, τh) = 0`.

use std::sync::atomic::{AtomicUsize, Ordering};

use shc_cells::{OutputTransition, Register};
use shc_spice::batch::{run_lockstep, BatchLane, BatchPolicy};
use shc_spice::transient::{
    CrossingDirection, Integrator, RecordMode, TransientAnalysis, TransientOptions, TransientStats,
};
use shc_spice::waveform::{Param, Params};
use shc_spice::SolverChoice;

use crate::{CharError, Result};

/// One evaluation of `h` and (optionally) its 1×2 Jacobian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HEvaluation {
    /// `h(τs, τh) = cᵀx(t_f) − r`.
    /// unit: V
    pub h: f64,
    /// `∂h/∂τs` from forward sensitivity analysis.
    /// unit: V/s
    pub dh_dtau_s: f64,
    /// `∂h/∂τh` from forward sensitivity analysis.
    /// unit: V/s
    pub dh_dtau_h: f64,
    /// Work counters of the transient run behind this evaluation.
    pub stats: TransientStats,
}

impl HEvaluation {
    /// Euclidean norm of the Jacobian row.
    pub fn jacobian_norm(&self) -> f64 {
        (self.dh_dtau_s * self.dh_dtau_s + self.dh_dtau_h * self.dh_dtau_h).sqrt()
    }

    /// The unit tangent to the solution curve induced by the Jacobian —
    /// paper eq. (16): `T = (−∂h/∂τh, ∂h/∂τs) / ‖·‖`.
    ///
    /// Returns `None` if the Jacobian vanishes.
    pub fn tangent(&self) -> Option<(f64, f64)> {
        let n = self.jacobian_norm();
        if n == 0.0 || !n.is_finite() {
            return None;
        }
        Some((-self.dh_dtau_h / n, self.dh_dtau_s / n))
    }

    /// The Moore-Penrose Newton update `Δτ = −h·H⁺` — paper eqs. (23)/(24).
    ///
    /// For the 1×2 Jacobian, `H⁺ = Hᵀ/(H Hᵀ)`, so
    /// `Δτ = −h·(∂h/∂τs, ∂h/∂τh) / ‖H‖²`.
    ///
    /// Returns `None` if the Jacobian vanishes.
    pub fn mpnr_step(&self) -> Option<(f64, f64)> {
        let n2 = self.dh_dtau_s * self.dh_dtau_s + self.dh_dtau_h * self.dh_dtau_h;
        if n2 == 0.0 || !n2.is_finite() {
            return None;
        }
        let scale = -self.h / n2;
        Some((scale * self.dh_dtau_s, scale * self.dh_dtau_h))
    }
}

/// The interdependent setup/hold characterization problem for one register:
/// holds the measured characteristic delay, the degraded target `(t_f, r)`,
/// and evaluates `h(τs, τh)` by transient simulation.
///
/// Construct with [`CharacterizationProblem::builder`]; building runs one
/// reference simulation (generous skews) to measure the characteristic
/// clock-to-Q delay and derive `t_f` and `r` exactly as in the paper's
/// Sec. IV.
#[derive(Debug)]
pub struct CharacterizationProblem {
    register: Register,
    degradation: f64,
    capture_fraction: f64,
    dt: f64,
    integrator: Integrator,
    solver: SolverChoice,
    batch: BatchPolicy,
    reference: Params,
    t_cq: f64,
    tf: f64,
    r: f64,
    sim_count: AtomicUsize,
    calibration_sims: usize,
}

// The parallel sweeps in [`crate::parallel`] share problems across worker
// threads by reference: every field is plain data except `sim_count`,
// whose atomic updates make `evaluate` callable from many threads at once.
// This assertion turns any future non-thread-safe field (e.g. a `RefCell`
// scratch cache) into a compile error instead of a broken sweep.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CharacterizationProblem>();
};

impl CharacterizationProblem {
    /// Starts building a problem around a register fixture.
    pub fn builder(register: Register) -> ProblemBuilder {
        ProblemBuilder {
            register,
            degradation: 0.10,
            capture_fraction: None,
            dt: None,
            integrator: Integrator::BackwardEuler,
            solver: SolverChoice::Auto,
            batch: BatchPolicy::default(),
            reference_skew: None,
            reference_setup: None,
        }
    }

    /// The register under characterization.
    pub fn register(&self) -> &Register {
        &self.register
    }

    /// The clock-to-Q degradation defining the contour (e.g. `0.10`).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// The characteristic (undegraded) clock-to-Q delay, in seconds.
    pub fn characteristic_delay(&self) -> f64 {
        self.t_cq
    }

    /// The evaluation time `t_f` (absolute simulation time, seconds).
    pub fn t_f(&self) -> f64 {
        self.tf
    }

    /// The target output level `r`, in volts.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The fixed transient time step used for `h` evaluations.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Generous-skew parameters used for reference measurements.
    pub fn reference_params(&self) -> Params {
        self.reference
    }

    /// Whether an `h` value corresponds to a *successful* capture
    /// (output past the target level in the monitored direction).
    pub fn is_pass(&self, h: f64) -> bool {
        match self.register.transition() {
            OutputTransition::Rising => h > 0.0,
            OutputTransition::Falling => h < 0.0,
        }
    }

    /// Number of transient simulations performed through this problem since
    /// construction (or the last [`Self::reset_simulation_count`]).
    ///
    /// This is the user-visible simulation budget; the reference
    /// (calibration) run performed by the builder is accounted separately
    /// in [`Self::calibration_simulations`].
    pub fn simulation_count(&self) -> usize {
        self.sim_count.load(Ordering::Relaxed)
    }

    /// Number of transient simulations spent measuring the characteristic
    /// delay at build time (currently always 1). Reported separately so
    /// the per-contour budget in [`Self::simulation_count`] stays an
    /// honest O(n) figure.
    pub fn calibration_simulations(&self) -> usize {
        self.calibration_sims
    }

    /// Resets the simulation counter to zero.
    pub fn reset_simulation_count(&self) {
        self.sim_count.store(0, Ordering::Relaxed);
    }

    fn transient_options(&self, with_sensitivities: bool) -> TransientOptions {
        let mut builder = TransientOptions::builder(self.tf)
            .dt(self.dt)
            .integrator(self.integrator)
            .solver(self.solver)
            .record(RecordMode::FinalOnly);
        if with_sensitivities {
            builder = builder.sensitivities(&Param::ALL);
        }
        builder.build()
    }

    /// Evaluates `h(τs, τh)` with one transient simulation (no
    /// sensitivities).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn evaluate(&self, params: &Params) -> Result<f64> {
        self.sim_count.fetch_add(1, Ordering::Relaxed);
        let res = TransientAnalysis::new(self.register.circuit(), self.transient_options(false))
            .run(params)?;
        Ok(res.final_state()[self.register.output_unknown()] - self.r)
    }

    /// Evaluates `h` *and* its Jacobian `[∂h/∂τs, ∂h/∂τh]` in one transient
    /// with forward sensitivity propagation (paper eqs. (21)–(22)).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn evaluate_with_jacobian(&self, params: &Params) -> Result<HEvaluation> {
        self.sim_count.fetch_add(1, Ordering::Relaxed);
        let res = TransientAnalysis::new(self.register.circuit(), self.transient_options(true))
            .run(params)?;
        self.jacobian_evaluation(&res)
    }

    /// Evaluates `h(τs, τh)` at many skew points with one lockstep batch
    /// (no sensitivities), falling back to a scalar loop whenever the
    /// problem's [`BatchPolicy`] or the batched engine's envelope says so.
    /// Results are in input order and bitwise identical to calling
    /// [`Self::evaluate`] per point.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-index simulation failure, matching a serial
    /// left-to-right loop.
    pub fn evaluate_batch(&self, params: &[Params]) -> Result<Vec<f64>> {
        let opts = self.transient_options(false);
        if !self
            .batch
            .use_batched(self.register.circuit(), &opts, params.len())
        {
            return params.iter().map(|p| self.evaluate(p)).collect();
        }
        self.sim_count.fetch_add(params.len(), Ordering::Relaxed);
        let lanes: Vec<BatchLane<'_>> = params
            .iter()
            .map(|&p| BatchLane {
                circuit: self.register.circuit(),
                params: p,
                tstop: self.tf,
            })
            .collect();
        let out = self.register.output_unknown();
        run_lockstep(&lanes, &opts)
            .map_err(CharError::from)?
            .into_iter()
            .map(|lane| Ok(lane?.final_state()[out] - self.r))
            .collect()
    }

    /// Evaluates `h` *and* its Jacobian at many skew points with one
    /// lockstep batch carrying forward sensitivities, falling back to a
    /// scalar loop per the problem's [`BatchPolicy`]. Results are in input
    /// order and bitwise identical to [`Self::evaluate_with_jacobian`] per
    /// point.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-index simulation failure, matching a serial
    /// left-to-right loop.
    pub fn evaluate_with_jacobian_batch(&self, params: &[Params]) -> Result<Vec<HEvaluation>> {
        let opts = self.transient_options(true);
        if !self
            .batch
            .use_batched(self.register.circuit(), &opts, params.len())
        {
            return params
                .iter()
                .map(|p| self.evaluate_with_jacobian(p))
                .collect();
        }
        self.sim_count.fetch_add(params.len(), Ordering::Relaxed);
        let lanes: Vec<BatchLane<'_>> = params
            .iter()
            .map(|&p| BatchLane {
                circuit: self.register.circuit(),
                params: p,
                tstop: self.tf,
            })
            .collect();
        run_lockstep(&lanes, &opts)
            .map_err(CharError::from)?
            .into_iter()
            .map(|lane| self.jacobian_evaluation(&lane?))
            .collect()
    }

    /// Extracts an [`HEvaluation`] from a finished final-only transient of
    /// this problem's circuit (shared by the scalar and batched paths).
    fn jacobian_evaluation(
        &self,
        res: &shc_spice::transient::TransientResult,
    ) -> Result<HEvaluation> {
        let out = self.register.output_unknown();
        let ms = res
            .final_sensitivity(Param::Setup)
            .ok_or(CharError::Internal {
                reason: "transient ran with sensitivities on but returned no setup sensitivity",
            })?;
        let mh = res
            .final_sensitivity(Param::Hold)
            .ok_or(CharError::Internal {
                reason: "transient ran with sensitivities on but returned no hold sensitivity",
            })?;
        Ok(HEvaluation {
            h: res.final_state()[out] - self.r,
            dh_dtau_s: ms[out],
            dh_dtau_h: mh[out],
            stats: *res.stats(),
        })
    }

    /// Evaluates `h` and its Jacobian via the **discrete adjoint** method
    /// (one backward sweep) instead of forward sensitivities — an
    /// independent derivation useful for cross-checks and for extensions
    /// with many parameters. Requires the Backward-Euler integrator.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; rejects non-BE integrators.
    pub fn evaluate_with_jacobian_adjoint(&self, params: &Params) -> Result<HEvaluation> {
        if self.integrator != Integrator::BackwardEuler {
            return Err(CharError::BadOption {
                reason: "adjoint evaluation requires the Backward Euler integrator",
            });
        }
        self.sim_count.fetch_add(1, Ordering::Relaxed);
        let opts = TransientOptions::builder(self.tf)
            .dt(self.dt)
            .solver(self.solver)
            .record(RecordMode::Full)
            .build();
        let res = TransientAnalysis::new(self.register.circuit(), opts).run(params)?;
        let out = self.register.output_unknown();
        let adj = shc_spice::adjoint::backward_sensitivities(
            self.register.circuit(),
            &res,
            params,
            out,
            &Param::ALL,
        )?;
        Ok(HEvaluation {
            h: res.final_state()[out] - self.r,
            dh_dtau_s: adj.gradient(Param::Setup).ok_or(CharError::Internal {
                reason: "adjoint sweep over Param::ALL returned no setup gradient",
            })?,
            dh_dtau_h: adj.gradient(Param::Hold).ok_or(CharError::Internal {
                reason: "adjoint sweep over Param::ALL returned no hold gradient",
            })?,
            stats: *res.stats(),
        })
    }

    /// Convenience: seed and trace an `n`-point constant clock-to-Q contour
    /// with default options.
    ///
    /// # Errors
    ///
    /// Propagates seeding, MPNR, and tracing failures.
    pub fn trace_contour(&self, n: usize) -> Result<crate::Contour> {
        self.trace_contour_with(
            n,
            &crate::SeedOptions::default(),
            &crate::TracerOptions::default(),
        )
    }

    /// Like [`Self::trace_contour`] with explicit seeding and tracing
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates seeding, MPNR, and tracing failures.
    pub fn trace_contour_with(
        &self,
        n: usize,
        seed_opts: &crate::SeedOptions,
        tracer_opts: &crate::TracerOptions,
    ) -> Result<crate::Contour> {
        let seed = crate::seed::find_first_point(self, seed_opts)?;
        crate::tracer::trace(self, seed.params, n, tracer_opts)
    }
}

/// Whether lockstep evaluation may span all of `problems` at once: the
/// problems must agree on every option the lanes would share (time step,
/// integrator, solver, sensitivity set are fixed by construction) and on
/// the circuit dimension, and the policy must elect batching for this lane
/// count on the first problem's configuration. Problems built from the
/// same register factory with the same builder settings always qualify.
pub(crate) fn lockstep_compatible(
    problems: &[&CharacterizationProblem],
    policy: BatchPolicy,
) -> bool {
    let Some(first) = problems.first() else {
        return false;
    };
    let n = first.register.circuit().unknown_count();
    if !problems.iter().all(|p| {
        p.dt == first.dt
            && p.integrator == first.integrator
            && p.solver == first.solver
            && p.register.circuit().unknown_count() == n
    }) {
        return false;
    }
    let opts = first.transient_options(true);
    policy.use_batched(first.register.circuit(), &opts, problems.len())
}

/// Lockstep evaluation of `h` and its 1×2 Jacobian across *different*
/// problems: lane `k` evaluates `lanes[k].0` at `lanes[k].1`, each with
/// its own `t_f` and target level. Callers must have verified
/// [`lockstep_compatible`] on the involved problems. Per-lane values are
/// bitwise identical to [`CharacterizationProblem::evaluate_with_jacobian`]
/// on the same problem; failures are per-lane payload.
pub(crate) fn evaluate_jacobian_lockstep(
    lanes: &[(&CharacterizationProblem, Params)],
) -> Vec<Result<HEvaluation>> {
    let Some((first, _)) = lanes.first() else {
        return Vec::new();
    };
    let opts = first.transient_options(true);
    for (problem, _) in lanes {
        problem.sim_count.fetch_add(1, Ordering::Relaxed);
    }
    let batch: Vec<BatchLane<'_>> = lanes
        .iter()
        .map(|(problem, params)| BatchLane {
            circuit: problem.register.circuit(),
            params: *params,
            tstop: problem.tf,
        })
        .collect();
    match run_lockstep(&batch, &opts) {
        Ok(results) => lanes
            .iter()
            .zip(results)
            .map(|((problem, _), lane)| problem.jacobian_evaluation(&lane?))
            .collect(),
        // A structural rejection (callers pre-validate, so this is a
        // defensive arm) fails every lane with the same reason.
        Err(e) => lanes
            .iter()
            .map(|_| Err(CharError::from(e.clone())))
            .collect(),
    }
}

/// Builder for [`CharacterizationProblem`].
#[derive(Debug)]
pub struct ProblemBuilder {
    register: Register,
    degradation: f64,
    capture_fraction: Option<f64>,
    dt: Option<f64>,
    integrator: Integrator,
    solver: SolverChoice,
    batch: BatchPolicy,
    reference_skew: Option<f64>,
    reference_setup: Option<f64>,
}

impl ProblemBuilder {
    /// Sets the clock-to-Q degradation fraction defining the contour
    /// (default `0.10`, the paper's 10% criterion).
    pub fn degradation(mut self, degradation: f64) -> Self {
        self.degradation = degradation;
        self
    }

    /// Overrides the capture fraction (default: the register's own,
    /// 0.5 for TSPC, 0.9 for C²MOS).
    pub fn capture_fraction(mut self, fraction: f64) -> Self {
        self.capture_fraction = Some(fraction);
        self
    }

    /// Overrides the fixed transient step (default: 4 ps, 25 points per
    /// 0.1 ns signal edge).
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Selects the integration method (default Backward Euler).
    pub fn integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Selects the linear-solver backend for every transient this problem
    /// runs (default [`SolverChoice::Auto`]: dense for the seed-cell-sized
    /// circuits, sparse-direct above the dispatch threshold).
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the batched-engine policy for this problem's multi-point
    /// evaluations ([`CharacterizationProblem::evaluate_batch`] and
    /// friends). Default [`BatchPolicy::Auto`]: batch inside the supported
    /// envelope unless a fault injector is installed.
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the generous skew used for the reference measurement
    /// (default: 30% of the clock period).
    pub fn reference_skew(mut self, skew: f64) -> Self {
        self.reference_skew = Some(skew);
        self
    }

    /// Overrides the reference *setup* skew specifically. Level-sensitive
    /// latches need this near the closing edge (the output must still be
    /// in flight at the edge for a clock-referenced delay to exist);
    /// built-in latch fixtures set it automatically via
    /// [`shc_cells::Register::reference_setup_hint`].
    pub fn reference_setup(mut self, skew: f64) -> Self {
        self.reference_setup = Some(skew);
        self
    }

    /// Measures the characteristic clock-to-Q delay and finalizes the
    /// problem.
    ///
    /// # Errors
    ///
    /// - [`CharError::BadOption`] for invalid settings;
    /// - [`CharError::NoCharacteristicDelay`] if the output never crosses
    ///   the target level with generous skews;
    /// - propagated simulation failures.
    pub fn build(self) -> Result<CharacterizationProblem> {
        if !(0.0..1.0).contains(&self.degradation) && self.degradation != 0.0 {
            return Err(CharError::BadOption {
                reason: "degradation must be in [0, 1)",
            });
        }
        let capture_fraction = self
            .capture_fraction
            .unwrap_or_else(|| self.register.capture_fraction());
        if !(0.0..1.0).contains(&capture_fraction) || capture_fraction <= 0.0 {
            return Err(CharError::BadOption {
                reason: "capture fraction must be in (0, 1)",
            });
        }
        let dt = self.dt.unwrap_or(4e-12);
        if dt <= 0.0 || !dt.is_finite() {
            return Err(CharError::BadOption {
                reason: "dt must be positive and finite",
            });
        }
        let reference_hold = self
            .reference_skew
            .unwrap_or(0.3 * self.register.clock().period);
        // Level-sensitive latches need their reference capture near the
        // closing edge; edge-triggered registers use the generous skew.
        let reference_setup = self
            .reference_setup
            .or_else(|| self.register.reference_setup_hint())
            .unwrap_or(reference_hold);
        if reference_hold <= 0.0 || reference_setup <= 0.0 {
            return Err(CharError::BadOption {
                reason: "reference skew must be positive",
            });
        }

        // Reference simulation with generous skews: measure t_c and derive
        // t_f = t_edge + (1 + degradation)·t_CQ, r = capture level.
        let register = self.register;
        let edge = register.active_edge_time();
        let r = register.target_level(capture_fraction);
        let settle = 0.45 * register.clock().period;
        let opts = TransientOptions::builder(edge + settle)
            .dt(dt)
            .solver(self.solver)
            .record(RecordMode::Probe(register.output_unknown()))
            .build();
        let params = Params::new(reference_setup, reference_hold);
        let res = {
            let _span = shc_obs::span(shc_obs::SpanKind::Calibration);
            TransientAnalysis::new(register.circuit(), opts).run(&params)?
        };
        let direction = match register.transition() {
            OutputTransition::Rising => CrossingDirection::Rising,
            OutputTransition::Falling => CrossingDirection::Falling,
        };
        let tc = res
            .crossing_time(register.output_unknown(), r, edge, direction)
            .ok_or(CharError::NoCharacteristicDelay { level: r })?;
        let t_cq = tc - edge;
        let tf = edge + (1.0 + self.degradation) * t_cq;

        Ok(CharacterizationProblem {
            register,
            degradation: self.degradation,
            capture_fraction,
            dt,
            integrator: self.integrator,
            solver: self.solver,
            batch: self.batch,
            reference: params,
            t_cq,
            tf,
            r,
            // The calibration run above is accounted in `calibration_sims`,
            // not in the user-visible budget.
            sim_count: AtomicUsize::new(0),
            calibration_sims: 1,
        })
    }
}

impl CharacterizationProblem {
    /// The capture fraction in effect.
    pub fn capture_fraction(&self) -> f64 {
        self.capture_fraction
    }

    /// The integration method in effect.
    pub fn integrator(&self) -> Integrator {
        self.integrator
    }

    /// The linear-solver backend in effect.
    pub fn solver(&self) -> SolverChoice {
        self.solver
    }

    /// The batched-engine policy in effect.
    pub fn batch(&self) -> BatchPolicy {
        self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn fast_problem() -> CharacterizationProblem {
        let tech = Technology::default_250nm();
        CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
            .build()
            .expect("problem builds")
    }

    #[test]
    fn characteristic_delay_is_plausible() {
        let p = fast_problem();
        // A few tens to a few hundred ps for this technology.
        assert!(
            p.characteristic_delay() > 10e-12 && p.characteristic_delay() < 1e-9,
            "t_CQ = {:.1} ps",
            p.characteristic_delay() * 1e12
        );
        assert!(p.t_f() > p.register().active_edge_time());
        assert!((p.r() - 1.25).abs() < 1e-12); // 50% of 2.5 V, rising
                                               // Calibration is accounted separately from the user budget.
        assert_eq!(p.simulation_count(), 0);
        assert_eq!(p.calibration_simulations(), 1);
    }

    #[test]
    fn h_sign_separates_pass_and_fail() {
        let p = fast_problem();
        let generous = p.evaluate(&p.reference_params()).unwrap();
        assert!(
            p.is_pass(generous),
            "generous skews must pass: h = {generous}"
        );
        // A data pulse entirely before the edge cannot be captured.
        let hopeless = p.evaluate(&Params::new(0.9e-9, -0.6e-9)).unwrap();
        assert!(
            !p.is_pass(hopeless),
            "hopeless skews must fail: h = {hopeless}"
        );
    }

    #[test]
    fn jacobian_matches_finite_differences_on_transition() {
        let p = fast_problem();
        // Find a point near the transition: shrink hold skew until h drops
        // into a responsive region.
        let tau_s = 0.35e-9;
        let mut tau_h = 0.30e-9;
        let mut chosen = None;
        for _ in 0..14 {
            let ev = p
                .evaluate_with_jacobian(&Params::new(tau_s, tau_h))
                .unwrap();
            if ev.jacobian_norm() > 1e6 {
                chosen = Some((tau_h, ev));
                break;
            }
            tau_h -= 0.02e-9;
        }
        let (tau_h, ev) = chosen.expect("found a responsive point");
        let d = 2e-13;
        let fd_s = (p.evaluate(&Params::new(tau_s + d, tau_h)).unwrap()
            - p.evaluate(&Params::new(tau_s - d, tau_h)).unwrap())
            / (2.0 * d);
        let fd_h = (p.evaluate(&Params::new(tau_s, tau_h + d)).unwrap()
            - p.evaluate(&Params::new(tau_s, tau_h - d)).unwrap())
            / (2.0 * d);
        let scale = ev.jacobian_norm();
        assert!(
            (ev.dh_dtau_s - fd_s).abs() < 0.08 * scale,
            "dh/dτs: sens {:.4e} vs fd {:.4e}",
            ev.dh_dtau_s,
            fd_s
        );
        assert!(
            (ev.dh_dtau_h - fd_h).abs() < 0.08 * scale,
            "dh/dτh: sens {:.4e} vs fd {:.4e}",
            ev.dh_dtau_h,
            fd_h
        );
    }

    #[test]
    fn tangent_is_unit_and_orthogonal_to_gradient() {
        let ev = HEvaluation {
            h: 0.1,
            dh_dtau_s: 3.0,
            dh_dtau_h: 4.0,
            stats: TransientStats::default(),
        };
        let (ts, th) = ev.tangent().unwrap();
        assert!((ts * ts + th * th - 1.0).abs() < 1e-12);
        assert!((ts * ev.dh_dtau_s + th * ev.dh_dtau_h).abs() < 1e-12);
    }

    #[test]
    fn mpnr_step_solves_linear_case_exactly() {
        // h(τ) = 2τs + τh − 4 at τ = (0,0): step must land on the line at
        // the closest point: Δ = 4·(2,1)/5.
        let ev = HEvaluation {
            h: -4.0,
            dh_dtau_s: 2.0,
            dh_dtau_h: 1.0,
            stats: TransientStats::default(),
        };
        let (ds, dh) = ev.mpnr_step().unwrap();
        assert!((ds - 1.6).abs() < 1e-12);
        assert!((dh - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_jacobian_yields_none() {
        let ev = HEvaluation {
            h: 1.0,
            dh_dtau_s: 0.0,
            dh_dtau_h: 0.0,
            stats: TransientStats::default(),
        };
        assert!(ev.tangent().is_none());
        assert!(ev.mpnr_step().is_none());
    }

    #[test]
    fn builder_validates_options() {
        let tech = Technology::default_250nm();
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        assert!(matches!(
            CharacterizationProblem::builder(reg)
                .degradation(1.5)
                .build(),
            Err(CharError::BadOption { .. })
        ));
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        assert!(matches!(
            CharacterizationProblem::builder(reg).dt(-1.0).build(),
            Err(CharError::BadOption { .. })
        ));
    }
}
