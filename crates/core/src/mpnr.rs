//! Moore-Penrose pseudo-inverse Newton-Raphson (MPNR) for the
//! underdetermined equation `h(τs, τh) = 0` — the paper's Sec. III-C.
//!
//! Each iteration runs one transient simulation with forward sensitivities
//! to obtain `h` and its 1×2 Jacobian `H`, then updates
//! `τ ← τ − h·H⁺` with `H⁺ = Hᵀ(H Hᵀ)⁻¹` (paper eqs. (15), (23), (24)).
//! Under mild conditions MPNR converges to the point of the solution curve
//! *nearest* the initial guess (paper Fig. 4).

use serde::{Deserialize, Serialize};
use shc_spice::transient::TransientStats;
use shc_spice::waveform::Params;

use crate::{CharError, CharacterizationProblem, Result};

/// Convergence settings for MPNR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpnrOptions {
    /// Relative tolerance on the skew update.
    pub reltol: f64,
    /// Absolute tolerance on the skew update, in seconds. The paper quotes
    /// contour points "accurate up to 5 digits"; the default (0.01 ps
    /// against ~100 ps skews) comfortably achieves that.
    pub abstol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Cap on a single update's length, in seconds (guards against wild
    /// steps from a nearly flat `h`).
    pub max_step: f64,
}

impl Default for MpnrOptions {
    fn default() -> Self {
        MpnrOptions {
            reltol: 1e-5,
            abstol: 1e-14,
            max_iters: 15,
            max_step: 100e-12,
        }
    }
}

/// A converged MPNR solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpnrResult {
    /// The converged point on the constant clock-to-Q curve.
    pub params: Params,
    /// Iterations (= transient simulations with sensitivities) used.
    pub iterations: usize,
    /// `|h|` at the converged point, in volts.
    pub residual: f64,
    /// Jacobian at the converged point, `[∂h/∂τs, ∂h/∂τh]`.
    pub jacobian: [f64; 2],
    /// Transient work accumulated over every iteration of this solve.
    pub transient: TransientStats,
}

/// Solves `h(τs, τh) = 0` by MPNR from the given initial guess.
///
/// # Errors
///
/// - [`CharError::VanishingJacobian`] if the Jacobian vanishes (iterate in
///   a flat region of the output surface — pick a better initial guess, or
///   seed via [`crate::seed`]);
/// - [`CharError::MpnrDiverged`] if `max_iters` is exhausted;
/// - propagated simulation failures.
pub fn solve(
    problem: &CharacterizationProblem,
    initial: Params,
    opts: &MpnrOptions,
) -> Result<MpnrResult> {
    let _span = shc_obs::span(shc_obs::SpanKind::MpnrSolve);
    shc_obs::count(shc_obs::Metric::MpnrSolves, 1);
    let mut tau = initial;
    let mut last_h = f64::INFINITY;
    let mut transient = TransientStats::default();

    for iter in 1..=opts.max_iters {
        let ev = problem.evaluate_with_jacobian(&tau)?;
        transient.steps += ev.stats.steps;
        transient.newton_iterations += ev.stats.newton_iterations;
        transient.rejected_steps += ev.stats.rejected_steps;
        last_h = ev.h.abs();
        let (mut ds, mut dh) = ev.mpnr_step().ok_or(CharError::VanishingJacobian {
            tau_s: tau.tau_s,
            tau_h: tau.tau_h,
        })?;
        let step_len = (ds * ds + dh * dh).sqrt();
        if step_len > opts.max_step {
            let scale = opts.max_step / step_len;
            ds *= scale;
            dh *= scale;
        }
        tau = Params::new(tau.tau_s + ds, tau.tau_h + dh);

        let tol_s = opts.reltol * tau.tau_s.abs() + opts.abstol;
        let tol_h = opts.reltol * tau.tau_h.abs() + opts.abstol;
        if ds.abs() <= tol_s && dh.abs() <= tol_h {
            // Converged on the update criterion; report the residual and
            // Jacobian of the *last evaluated* point (ε-close to τ).
            shc_obs::observe(shc_obs::Metric::MpnrIterations, iter as u64);
            return Ok(MpnrResult {
                params: tau,
                iterations: iter,
                residual: ev.h.abs(),
                jacobian: [ev.dh_dtau_s, ev.dh_dtau_h],
                transient,
            });
        }
    }

    shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
    Err(CharError::MpnrDiverged {
        iterations: opts.max_iters,
        h_value: last_h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    #[test]
    fn default_options_target_five_digits() {
        let o = MpnrOptions::default();
        // 1e-5 relative on a 100 ps skew = 1 fs — five significant digits.
        assert!(o.reltol <= 1e-5);
        assert!(o.abstol <= 1e-13);
    }

    /// End-to-end: from a guess near the transition region, MPNR must land
    /// on a point with |h| tiny and the pass/fail boundary nearby.
    #[test]
    fn converges_to_contour_point_on_tspc() {
        let tech = Technology::default_250nm();
        let problem =
            CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
                .build()
                .unwrap();
        // Seed by shrinking the hold skew until h becomes responsive.
        let tau_s = 0.35e-9;
        let mut guess = None;
        let mut tau_h = 0.3e-9;
        for _ in 0..20 {
            let ev = problem
                .evaluate_with_jacobian(&Params::new(tau_s, tau_h))
                .unwrap();
            if ev.jacobian_norm() > 1e7 {
                guess = Some(Params::new(tau_s, tau_h));
                break;
            }
            tau_h -= 0.015e-9;
        }
        let guess = guess.expect("responsive guess found");
        let result = solve(&problem, guess, &MpnrOptions::default()).unwrap();
        assert!(
            result.residual < 1e-3,
            "converged residual |h| = {}",
            result.residual
        );
        assert!(result.iterations <= 15);
        // The point is genuinely on the boundary: probing a few ps along
        // the reported gradient direction must change h monotonically.
        let gnorm = (result.jacobian[0].powi(2) + result.jacobian[1].powi(2)).sqrt();
        let (gs, gh) = (result.jacobian[0] / gnorm, result.jacobian[1] / gnorm);
        let eps = 5e-12;
        let h_plus = problem
            .evaluate(&Params::new(
                result.params.tau_s + eps * gs,
                result.params.tau_h + eps * gh,
            ))
            .unwrap();
        let h_minus = problem
            .evaluate(&Params::new(
                result.params.tau_s - eps * gs,
                result.params.tau_h - eps * gh,
            ))
            .unwrap();
        assert!(
            h_plus > h_minus,
            "h must increase along its gradient ({h_plus} vs {h_minus})"
        );
    }

    #[test]
    fn flat_region_reports_vanishing_jacobian_or_divergence() {
        let tech = Technology::default_250nm();
        let problem =
            CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
                .build()
                .unwrap();
        // Deep in the pass region the surface is flat: h > 0 everywhere and
        // the Jacobian ~ 0 ⇒ either error is acceptable, but not success.
        let err = solve(
            &problem,
            problem.reference_params(),
            &MpnrOptions {
                max_iters: 4,
                ..MpnrOptions::default()
            },
        );
        assert!(
            matches!(
                err,
                Err(CharError::VanishingJacobian { .. }) | Err(CharError::MpnrDiverged { .. })
            ),
            "expected failure, got {err:?}"
        );
    }
}
