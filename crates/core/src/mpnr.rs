//! Moore-Penrose pseudo-inverse Newton-Raphson (MPNR) for the
//! underdetermined equation `h(τs, τh) = 0` — the paper's Sec. III-C.
//!
//! Each iteration runs one transient simulation with forward sensitivities
//! to obtain `h` and its 1×2 Jacobian `H`, then updates
//! `τ ← τ − h·H⁺` with `H⁺ = Hᵀ(H Hᵀ)⁻¹` (paper eqs. (15), (23), (24)).
//! Under mild conditions MPNR converges to the point of the solution curve
//! *nearest* the initial guess (paper Fig. 4).

use serde::{Deserialize, Serialize};
use shc_spice::batch::BatchPolicy;
use shc_spice::transient::TransientStats;
use shc_spice::waveform::Params;

use crate::problem::{evaluate_jacobian_lockstep, lockstep_compatible};
use crate::{CharError, CharacterizationProblem, Result};

/// How far the hold-side bracket search may wander from the predicted
/// skew, in units of `max_step`. Beyond this span the predictor was so
/// far off that bisection would converge to the wrong sheet.
const BRACKET_SPAN_FACTOR: f64 = 8.0;

/// Bisection stops when the bracket width falls below this multiple of
/// the update tolerance, matching the Newton convergence criterion.
const BISECT_WIDTH_FACTOR: f64 = 2.0;

/// Convergence settings for MPNR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpnrOptions {
    /// Relative tolerance on the skew update.
    /// unit: 1
    pub reltol: f64,
    /// Absolute tolerance on the skew update, in seconds. The paper quotes
    /// contour points "accurate up to 5 digits"; the default (0.01 ps
    /// against ~100 ps skews) comfortably achieves that.
    /// unit: s
    pub abstol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Cap on a single update's length, in seconds (guards against wild
    /// steps from a nearly flat `h`).
    /// unit: s
    pub max_step: f64,
}

impl Default for MpnrOptions {
    fn default() -> Self {
        MpnrOptions {
            reltol: 1e-5,
            abstol: 1e-14,
            max_iters: 15,
            max_step: 100e-12,
        }
    }
}

/// A converged MPNR solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpnrResult {
    /// The converged point on the constant clock-to-Q curve.
    pub params: Params,
    /// Iterations (= transient simulations with sensitivities) used.
    pub iterations: usize,
    /// `|h|` at the converged point, in volts.
    /// unit: V
    pub residual: f64,
    /// Jacobian at the converged point, `[∂h/∂τs, ∂h/∂τh]`.
    pub jacobian: [f64; 2],
    /// Transient work accumulated over every iteration of this solve.
    pub transient: TransientStats,
}

/// Solves `h(τs, τh) = 0` by MPNR from the given initial guess.
///
/// # Errors
///
/// - [`CharError::VanishingJacobian`] if the Jacobian vanishes (iterate in
///   a flat region of the output surface — pick a better initial guess, or
///   seed via [`crate::seed`]);
/// - [`CharError::MpnrDiverged`] if `max_iters` is exhausted;
/// - propagated simulation failures.
pub fn solve(
    problem: &CharacterizationProblem,
    initial: Params,
    opts: &MpnrOptions,
) -> Result<MpnrResult> {
    let _span = shc_obs::span(shc_obs::SpanKind::MpnrSolve);
    // Self-time of this frame is the corrector's own bookkeeping; the
    // transient evaluations open their own frames beneath it.
    let _frame = shc_prof::enter(shc_prof::Phase::CorrectorOverhead);
    shc_obs::count(shc_obs::Metric::MpnrSolves, 1);
    if let Some(e) = injected_fault(initial) {
        shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
        return Err(e);
    }
    let mut tau = initial;
    let mut last_h = f64::INFINITY;
    let mut transient = TransientStats::default();

    for iter in 1..=opts.max_iters {
        shc_prof::add_work(1);
        let ev = problem.evaluate_with_jacobian(&tau)?;
        transient.steps += ev.stats.steps;
        transient.newton_iterations += ev.stats.newton_iterations;
        transient.rejected_steps += ev.stats.rejected_steps;
        last_h = ev.h.abs();
        let (mut ds, mut dh) = ev.mpnr_step().ok_or(CharError::VanishingJacobian {
            tau_s: tau.tau_s,
            tau_h: tau.tau_h,
        })?;
        let step_len = (ds * ds + dh * dh).sqrt();
        if step_len > opts.max_step {
            let scale = opts.max_step / step_len;
            ds *= scale;
            dh *= scale;
        }
        tau = Params::new(tau.tau_s + ds, tau.tau_h + dh);

        let tol_s = opts.reltol * tau.tau_s.abs() + opts.abstol;
        let tol_h = opts.reltol * tau.tau_h.abs() + opts.abstol;
        if ds.abs() <= tol_s && dh.abs() <= tol_h {
            // Converged on the update criterion; report the residual and
            // Jacobian of the *last evaluated* point (ε-close to τ).
            shc_obs::observe(shc_obs::Metric::MpnrIterations, iter as u64);
            return Ok(MpnrResult {
                params: tau,
                iterations: iter,
                residual: ev.h.abs(),
                jacobian: [ev.dh_dtau_s, ev.dh_dtau_h],
                transient,
            });
        }
    }

    shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
    Err(CharError::MpnrDiverged {
        iterations: opts.max_iters,
        h_value: last_h,
    })
}

/// Per-lane state of a lockstep MPNR batch.
struct BatchSolveLane {
    tau: Params,
    last_h: f64,
    transient: TransientStats,
    done: Option<Result<MpnrResult>>,
}

/// Solves `h = 0` by MPNR for many `(problem, initial guess)` lanes in
/// lockstep: each outer iteration evaluates every still-active lane's `h`
/// and Jacobian through one batched transient
/// ([`crate::CharacterizationProblem::evaluate_with_jacobian_batch`]'s
/// cross-problem form), then applies the scalar update rule per lane.
/// Lanes may carry *different* problems — e.g. one per Monte Carlo sample
/// or PVT corner — as long as they share the circuit dimension and solver
/// settings; a converged or failed lane simply stops being evaluated.
///
/// Per lane, the returned `Result<MpnrResult>` is bitwise identical to
/// [`solve`] on that lane alone: the update trajectory depends only on the
/// lane's own evaluations, which the lockstep engine reproduces exactly.
/// When `policy` declines (scalar policy, lane floor, fault injector under
/// [`BatchPolicy::Auto`], out-of-envelope configuration) or the lanes are
/// not lockstep-compatible, every lane runs through the scalar [`solve`].
///
/// # Panics
///
/// Panics if `problems` and `initials` differ in length.
pub fn solve_batch(
    problems: &[&CharacterizationProblem],
    initials: &[Params],
    opts: &MpnrOptions,
    policy: BatchPolicy,
) -> Vec<Result<MpnrResult>> {
    assert_eq!(
        problems.len(),
        initials.len(),
        "one initial guess per problem lane"
    );
    if !lockstep_compatible(problems, policy) {
        return problems
            .iter()
            .zip(initials)
            .map(|(problem, &initial)| solve(problem, initial, opts))
            .collect();
    }

    let _span = shc_obs::span(shc_obs::SpanKind::MpnrSolve);
    let _frame = shc_prof::enter(shc_prof::Phase::CorrectorOverhead);
    shc_obs::count(shc_obs::Metric::MpnrSolves, problems.len() as u64);
    let mut lanes: Vec<BatchSolveLane> = initials
        .iter()
        .map(|&initial| BatchSolveLane {
            tau: initial,
            last_h: f64::INFINITY,
            transient: TransientStats::default(),
            done: match injected_fault(initial) {
                Some(e) => {
                    shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
                    Some(Err(e))
                }
                None => None,
            },
        })
        .collect();

    let mut eval_lanes: Vec<(&CharacterizationProblem, Params)> =
        Vec::with_capacity(problems.len());
    let mut active: Vec<usize> = Vec::with_capacity(problems.len());
    for iter in 1..=opts.max_iters {
        eval_lanes.clear();
        active.clear();
        for (l, lane) in lanes.iter().enumerate() {
            if lane.done.is_none() {
                eval_lanes.push((problems[l], lane.tau));
                active.push(l);
            }
        }
        if active.is_empty() {
            break;
        }
        shc_prof::add_work(active.len() as u64);
        let evaluations = evaluate_jacobian_lockstep(&eval_lanes);
        for (&l, evaluation) in active.iter().zip(evaluations) {
            let lane = &mut lanes[l];
            let ev = match evaluation {
                Ok(ev) => ev,
                Err(e) => {
                    lane.done = Some(Err(e));
                    continue;
                }
            };
            lane.transient.steps += ev.stats.steps;
            lane.transient.newton_iterations += ev.stats.newton_iterations;
            lane.transient.rejected_steps += ev.stats.rejected_steps;
            lane.last_h = ev.h.abs();
            let Some((mut ds, mut dh)) = ev.mpnr_step() else {
                shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
                lane.done = Some(Err(CharError::VanishingJacobian {
                    tau_s: lane.tau.tau_s,
                    tau_h: lane.tau.tau_h,
                }));
                continue;
            };
            let step_len = (ds * ds + dh * dh).sqrt();
            if step_len > opts.max_step {
                let scale = opts.max_step / step_len;
                ds *= scale;
                dh *= scale;
            }
            lane.tau = Params::new(lane.tau.tau_s + ds, lane.tau.tau_h + dh);

            let tol_s = opts.reltol * lane.tau.tau_s.abs() + opts.abstol;
            let tol_h = opts.reltol * lane.tau.tau_h.abs() + opts.abstol;
            if ds.abs() <= tol_s && dh.abs() <= tol_h {
                shc_obs::observe(shc_obs::Metric::MpnrIterations, iter as u64);
                lane.done = Some(Ok(MpnrResult {
                    params: lane.tau,
                    iterations: iter,
                    residual: ev.h.abs(),
                    jacobian: [ev.dh_dtau_s, ev.dh_dtau_h],
                    transient: lane.transient,
                }));
            }
        }
    }

    lanes
        .into_iter()
        .map(|lane| {
            lane.done.unwrap_or_else(|| {
                shc_obs::count(shc_obs::Metric::MpnrFailures, 1);
                Err(CharError::MpnrDiverged {
                    iterations: opts.max_iters,
                    h_value: lane.last_h,
                })
            })
        })
        .collect()
}

/// Consults the ambient fault injector for the MPNR site (no-op unless a
/// [`shc_fault::Injector`] is installed on this thread).
fn injected_fault(tau: Params) -> Option<CharError> {
    let kind = shc_fault::check(shc_fault::Site::Mpnr)?;
    shc_obs::count(shc_obs::Metric::FaultsInjected, 1);
    Some(match kind {
        shc_fault::FaultKind::SingularMatrix => CharError::VanishingJacobian {
            tau_s: tau.tau_s,
            tau_h: tau.tau_h,
        },
        shc_fault::FaultKind::NanResidual => CharError::MpnrDiverged {
            iterations: 0,
            h_value: f64::NAN,
        },
        shc_fault::FaultKind::NonConvergence | shc_fault::FaultKind::LteStall => {
            CharError::MpnrDiverged {
                iterations: 0,
                h_value: f64::INFINITY,
            }
        }
    })
}

/// Bisection fallback along the hold-skew axis, used by the tracer when
/// the MPNR corrector diverges at a predicted point.
///
/// The setup skew is frozen at the predicted value and the scalar equation
/// `h(τs, τh) = 0` is solved in τh alone: an expanding search (toward the
/// last on-curve `anchor` first, then away from it) brackets a sign change
/// of `h`, which bisection then shrinks below the MPNR update tolerance.
/// Bisection needs only sign information, so it is robust exactly where
/// the pseudo-inverse step is not — at the cost of more simulations.
///
/// # Errors
///
/// [`CharError::MpnrDiverged`] when no sign change is found within
/// `8 × max_step` of the predicted hold skew or the evaluation budget
/// (`3 × max_iters`) runs out; simulation failures propagate.
pub fn bisect_fallback(
    problem: &CharacterizationProblem,
    anchor: Params,
    predicted: Params,
    opts: &MpnrOptions,
) -> Result<MpnrResult> {
    let _span = shc_obs::span(shc_obs::SpanKind::MpnrSolve);
    let _frame = shc_prof::enter(shc_prof::Phase::CorrectorOverhead);
    let tau_s = predicted.tau_s;
    let budget = opts.max_iters.max(5) * 3;
    let mut transient = TransientStats::default();
    let mut evals = 0usize;
    let eval = |tau_h: f64,
                transient: &mut TransientStats,
                evals: &mut usize|
     -> Result<crate::HEvaluation> {
        *evals += 1;
        let ev = problem.evaluate_with_jacobian(&Params::new(tau_s, tau_h))?;
        transient.steps += ev.stats.steps;
        transient.newton_iterations += ev.stats.newton_iterations;
        transient.rejected_steps += ev.stats.rejected_steps;
        Ok(ev)
    };

    let ev0 = eval(predicted.tau_h, &mut transient, &mut evals)?;
    let h0 = ev0.h;

    // Expanding search for a sign change of h along τh.
    let seed_step = (anchor.tau_h - predicted.tau_h)
        .abs()
        .max(opts.max_step / 64.0);
    let toward = if anchor.tau_h >= predicted.tau_h {
        1.0
    } else {
        -1.0
    };
    let mut bracket: Option<(f64, f64, f64)> = None; // (a, ha, b)
    'directions: for dir in [toward, -toward] {
        let mut prev_tau = predicted.tau_h;
        let mut prev_h = h0;
        let mut step = seed_step;
        while (prev_tau - predicted.tau_h).abs() < BRACKET_SPAN_FACTOR * opts.max_step {
            if evals >= budget {
                return Err(CharError::MpnrDiverged {
                    iterations: evals,
                    h_value: prev_h.abs(),
                });
            }
            let tau_h = prev_tau + dir * step;
            let ev = eval(tau_h, &mut transient, &mut evals)?;
            if ev.h * prev_h < 0.0 {
                bracket = Some((prev_tau, prev_h, tau_h));
                break 'directions;
            }
            prev_tau = tau_h;
            prev_h = ev.h;
            step *= 2.0;
        }
    }
    let (mut a, mut ha, mut b) = bracket.ok_or(CharError::MpnrDiverged {
        iterations: evals,
        h_value: h0.abs(),
    })?;

    // Bisect to the MPNR update tolerance. The returned point is the last
    // evaluated midpoint, so the residual and Jacobian describe it exactly
    // (the same ε-close convention as [`solve`]).
    loop {
        let mid = 0.5 * (a + b);
        let ev = eval(mid, &mut transient, &mut evals)?;
        if ev.h * ha < 0.0 {
            b = mid;
        } else {
            a = mid;
            ha = ev.h;
        }
        let tol = opts.reltol * mid.abs() + opts.abstol;
        if (b - a).abs() <= BISECT_WIDTH_FACTOR * tol || evals >= budget {
            shc_obs::count(shc_obs::Metric::MpnrFallbacks, 1);
            shc_obs::observe(shc_obs::Metric::MpnrIterations, evals as u64);
            return Ok(MpnrResult {
                params: Params::new(tau_s, mid),
                iterations: evals,
                residual: ev.h.abs(),
                jacobian: [ev.dh_dtau_s, ev.dh_dtau_h],
                transient,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    #[test]
    fn default_options_target_five_digits() {
        let o = MpnrOptions::default();
        // 1e-5 relative on a 100 ps skew = 1 fs — five significant digits.
        assert!(o.reltol <= 1e-5);
        assert!(o.abstol <= 1e-13);
    }

    /// End-to-end: from a guess near the transition region, MPNR must land
    /// on a point with |h| tiny and the pass/fail boundary nearby.
    #[test]
    fn converges_to_contour_point_on_tspc() {
        let tech = Technology::default_250nm();
        let problem =
            CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
                .build()
                .unwrap();
        // Seed by shrinking the hold skew until h becomes responsive.
        let tau_s = 0.35e-9;
        let mut guess = None;
        let mut tau_h = 0.3e-9;
        for _ in 0..20 {
            let ev = problem
                .evaluate_with_jacobian(&Params::new(tau_s, tau_h))
                .unwrap();
            if ev.jacobian_norm() > 1e7 {
                guess = Some(Params::new(tau_s, tau_h));
                break;
            }
            tau_h -= 0.015e-9;
        }
        let guess = guess.expect("responsive guess found");
        let result = solve(&problem, guess, &MpnrOptions::default()).unwrap();
        assert!(
            result.residual < 1e-3,
            "converged residual |h| = {}",
            result.residual
        );
        assert!(result.iterations <= 15);
        // The point is genuinely on the boundary: probing a few ps along
        // the reported gradient direction must change h monotonically.
        let gnorm = (result.jacobian[0].powi(2) + result.jacobian[1].powi(2)).sqrt();
        let (gs, gh) = (result.jacobian[0] / gnorm, result.jacobian[1] / gnorm);
        let eps = 5e-12;
        let h_plus = problem
            .evaluate(&Params::new(
                result.params.tau_s + eps * gs,
                result.params.tau_h + eps * gh,
            ))
            .unwrap();
        let h_minus = problem
            .evaluate(&Params::new(
                result.params.tau_s - eps * gs,
                result.params.tau_h - eps * gh,
            ))
            .unwrap();
        assert!(
            h_plus > h_minus,
            "h must increase along its gradient ({h_plus} vs {h_minus})"
        );
    }

    #[test]
    fn flat_region_reports_vanishing_jacobian_or_divergence() {
        let tech = Technology::default_250nm();
        let problem =
            CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
                .build()
                .unwrap();
        // Deep in the pass region the surface is flat: h > 0 everywhere and
        // the Jacobian ~ 0 ⇒ either error is acceptable, but not success.
        let err = solve(
            &problem,
            problem.reference_params(),
            &MpnrOptions {
                max_iters: 4,
                ..MpnrOptions::default()
            },
        );
        assert!(
            matches!(
                err,
                Err(CharError::VanishingJacobian { .. }) | Err(CharError::MpnrDiverged { .. })
            ),
            "expected failure, got {err:?}"
        );
    }
}
