//! Euler-Newton curve tracing of the constant clock-to-Q contour
//! (paper Secs. III-D and III-E).
//!
//! A standard predictor-corrector continuation: from a point on the curve,
//! extrapolate along the unit tangent `T = (−∂h/∂τh, ∂h/∂τs)/‖·‖`
//! (paper eq. (16)) by a step length α (the Euler predictor), then correct
//! back onto the curve with MPNR. The step length adapts: it shrinks when
//! the corrector struggles and grows after easy corrections.
//!
//! Corrector failures no longer abort the trace outright. A bounded
//! recovery ladder kicks in instead — predictor step-halving, a bisection
//! fallback along the hold axis ([`crate::mpnr::bisect_fallback`]), and a
//! limited number of full restarts with the step length reset — and when
//! everything is exhausted the points accepted so far are returned as a
//! [`TraceOutcome::Partial`] rather than thrown away. The tracer can also
//! persist its walking state to a JSONL checkpoint file every K accepted
//! points and later resume from it ([`TraceStart::Resume`]), reproducing
//! the uninterrupted contour bit for bit.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use shc_cells::Register;
use shc_spice::batch::{BatchPolicy, DEFAULT_LANES};
use shc_spice::transient::TransientStats;
use shc_spice::waveform::Params;

use crate::mpnr::{self, MpnrOptions};
use crate::parallel::{self, Parallelism};
use crate::seed::{self, SeedOptions};
use crate::{CharError, CharacterizationProblem, Result};

/// Predictor step-length multiplier used both by the recovery ladder
/// (rung 1 halves `α` after a corrector failure) and by the post-accept
/// adaptation when the corrector needed more than `easy_iters`
/// iterations. Halving keeps the retried point inside the previous
/// step's trust region while shedding length quickly under repeated
/// failures.
const ALPHA_BACKOFF: f64 = 0.5;

/// Which way to walk the contour from the seed point.
///
/// The contour in the (τs, τh) plane runs from large-setup/small-hold to
/// small-setup/large-hold. Seeding (at a generous hold skew) lands at the
/// small-setup end, so the default walks toward *decreasing* hold skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceDirection {
    /// Walk so that the hold skew decreases (default).
    #[default]
    DecreasingHold,
    /// Walk so that the hold skew increases.
    IncreasingHold,
}

/// Bounds on the tracer's recovery ladder (what happens when the MPNR
/// corrector fails at a predicted point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryOptions {
    /// Full restarts allowed per trace: after step-halving and the
    /// bisection fallback have both failed, α is reset to its initial
    /// value and the walk retried from the last accepted point, at most
    /// this many times.
    pub max_restarts: usize,
    /// Whether to try bisection along the hold axis when MPNR diverges
    /// and step-halving has bottomed out at `alpha_min`.
    pub bisection_fallback: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            max_restarts: 2,
            bisection_fallback: true,
        }
    }
}

/// Options for the Euler-Newton tracer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerOptions {
    /// Initial Euler step length, in seconds of skew-plane arc length.
    pub alpha: f64,
    /// Lower bound on the adaptive step length.
    pub alpha_min: f64,
    /// Upper bound on the adaptive step length.
    pub alpha_max: f64,
    /// Corrector iteration count above which the step length is halved.
    pub easy_iters: usize,
    /// Initial walking direction.
    pub direction: TraceDirection,
    /// Abort if τs or τh leaves `[-bound, bound]`, in seconds.
    pub skew_bound: f64,
    /// Stop when the unit tangent's hold component falls below this value,
    /// i.e. when the walk has reached the pure-setup asymptote where the
    /// contour carries no more interdependence information. `0.0` disables
    /// the check (the default: trace as far as requested).
    pub min_tangent_hold: f64,
    /// MPNR corrector settings.
    pub mpnr: MpnrOptions,
    /// Recovery-ladder bounds for corrector failures.
    pub recovery: RecoveryOptions,
}

impl Default for TracerOptions {
    fn default() -> Self {
        TracerOptions {
            alpha: 10e-12,
            alpha_min: 0.5e-12,
            alpha_max: 50e-12,
            easy_iters: 3,
            direction: TraceDirection::default(),
            skew_bound: 2e-9,
            min_tangent_hold: 0.0,
            mpnr: MpnrOptions::default(),
            recovery: RecoveryOptions::default(),
        }
    }
}

/// One traced contour point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContourPoint {
    /// Setup skew, in seconds.
    /// unit: s
    pub tau_s: f64,
    /// Hold skew, in seconds.
    /// unit: s
    pub tau_h: f64,
    /// MPNR corrector iterations this point needed (0 for the seed).
    pub corrector_iterations: usize,
    /// `|h|` at the point, in volts.
    /// unit: V
    pub residual: f64,
}

/// A traced constant clock-to-Q contour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contour {
    pub(crate) points: Vec<ContourPoint>,
    pub(crate) simulations: usize,
    pub(crate) total_corrector_iterations: usize,
}

impl Contour {
    /// The traced points, in walking order (starting at the seed).
    pub fn points(&self) -> &[ContourPoint] {
        &self.points
    }

    /// Number of transient simulations the trace consumed (excluding
    /// seeding).
    pub fn simulations(&self) -> usize {
        self.simulations
    }

    /// Total MPNR corrector iterations across all points.
    pub fn total_corrector_iterations(&self) -> usize {
        self.total_corrector_iterations
    }

    /// Mean corrector iterations per traced point (the paper reports 2–3).
    pub fn mean_corrector_iterations(&self) -> f64 {
        let corrected = self.points.len().saturating_sub(1);
        if corrected == 0 {
            return 0.0;
        }
        self.total_corrector_iterations as f64 / corrected as f64
    }

    /// Interpolates the contour's hold skew at a given setup skew, if the
    /// setup skew lies inside the traced range.
    pub fn hold_at_setup(&self, tau_s: f64) -> Option<f64> {
        let mut pts: Vec<(f64, f64)> = self.points.iter().map(|p| (p.tau_s, p.tau_h)).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pts.len() < 2 || tau_s < pts[0].0 || tau_s > pts[pts.len() - 1].0 {
            return None;
        }
        for w in pts.windows(2) {
            let ((s0, h0), (s1, h1)) = (w[0], w[1]);
            if tau_s >= s0 && tau_s <= s1 {
                if s1 == s0 {
                    return Some(h1);
                }
                return Some(h0 + (h1 - h0) * (tau_s - s0) / (s1 - s0));
            }
        }
        None
    }
}

/// How a trace ended: with everything it was asked for, or with whatever
/// it managed before recovery ran out.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum TraceOutcome {
    /// The trace reached the requested point count or a clean stop
    /// (skew bound, step-length floor, flat asymptote).
    Complete(Contour),
    /// The recovery ladder was exhausted mid-trace; the points accepted so
    /// far (≥ 2) are kept instead of being discarded.
    Partial {
        /// The contour traced before the failure.
        contour: Contour,
        /// The corrector or simulation failure that ended the walk.
        failure: CharError,
    },
}

impl TraceOutcome {
    /// The traced contour, complete or not.
    pub fn contour(&self) -> &Contour {
        match self {
            TraceOutcome::Complete(c) => c,
            TraceOutcome::Partial { contour, .. } => contour,
        }
    }

    /// Consumes the outcome, returning the contour and discarding any
    /// failure annotation.
    pub fn into_contour(self) -> Contour {
        match self {
            TraceOutcome::Complete(c) => c,
            TraceOutcome::Partial { contour, .. } => contour,
        }
    }

    /// `true` for [`TraceOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, TraceOutcome::Complete(_))
    }

    /// The failure that truncated the trace, if any.
    pub fn failure(&self) -> Option<&CharError> {
        match self {
            TraceOutcome::Complete(_) => None,
            TraceOutcome::Partial { failure, .. } => Some(failure),
        }
    }
}

/// Where a trace begins.
#[derive(Debug, Clone)]
pub enum TraceStart {
    /// Start from a point already on the curve (use [`crate::seed`] to
    /// obtain one).
    Seed(Params),
    /// Continue from a checkpoint written by a previous (possibly killed)
    /// trace of the *same* problem. The walking state — last accepted
    /// point, tangent, α, accepted points, fault-injection cursors — is
    /// restored exactly, so the resumed contour is bitwise identical to an
    /// uninterrupted one.
    Resume(shc_obs::TraceCheckpoint),
}

/// Where and how often [`trace_session`] persists its walking state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// JSONL file checkpoints are appended to (one object per line; the
    /// last complete line wins on resume).
    pub path: PathBuf,
    /// Write a checkpoint after every `every`-th accepted point. Must be
    /// at least 1.
    pub every: usize,
}

/// Renders per-point phase-time deltas for the journal from consecutive
/// [`shc_prof::phase_totals`] snapshots. Inert (every delta is `None`)
/// when no profiler is installed on this thread.
struct PhaseLedger {
    prev: Option<[(u64, u64); shc_prof::Phase::COUNT]>,
}

impl PhaseLedger {
    fn new() -> PhaseLedger {
        PhaseLedger {
            prev: shc_prof::phase_totals(),
        }
    }

    /// Snapshots the thread's phase totals and renders the change since
    /// the previous snapshot as a compact JSON object — one
    /// `"name":{"self_ns":…,"count":…}` entry per phase that moved.
    fn delta_json(&mut self) -> Option<String> {
        let now = shc_prof::phase_totals()?;
        let prev = self
            .prev
            .replace(now)
            .unwrap_or([(0, 0); shc_prof::Phase::COUNT]);
        let mut s = String::from("{");
        let mut first = true;
        for (i, phase) in shc_prof::Phase::ALL.iter().enumerate() {
            let self_ns = now[i].0.saturating_sub(prev[i].0);
            let count = now[i].1.saturating_sub(prev[i].1);
            if self_ns == 0 && count == 0 {
                continue;
            }
            shc_obs::json::push_raw_field(
                &mut s,
                &mut first,
                phase.name(),
                &format!("{{\"self_ns\":{self_ns},\"count\":{count}}}"),
            );
        }
        s.push('}');
        Some(s)
    }
}

/// Emits the journal event for one traced contour point (no-op when
/// telemetry is off).
#[allow(clippy::too_many_arguments)]
fn journal_point(
    point: usize,
    tau: Params,
    residual: f64,
    jacobian: [f64; 2],
    tangent: (f64, f64),
    corrector_iterations: usize,
    alpha: f64,
    stats: TransientStats,
    recovery_attempts: usize,
    ledger: &mut PhaseLedger,
) {
    if !shc_obs::enabled() {
        return;
    }
    shc_obs::journal(&shc_obs::JournalEvent {
        point: point as u64,
        level: shc_obs::journal_level(),
        tau_s: tau.tau_s,
        tau_h: tau.tau_h,
        residual,
        jacobian_norm: (jacobian[0] * jacobian[0] + jacobian[1] * jacobian[1]).sqrt(),
        tangent: [tangent.0, tangent.1],
        corrector_iterations: corrector_iterations as u64,
        alpha,
        transient_steps: stats.steps as u64,
        newton_iterations: stats.newton_iterations as u64,
        rejected_steps: stats.rejected_steps as u64,
        recovery_attempts: recovery_attempts as u64,
        phases: ledger.delta_json(),
    });
}

/// Serializes the tracer's mid-walk state and appends it to the
/// checkpoint file.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    cfg: &CheckpointConfig,
    points: &[ContourPoint],
    current: Params,
    tangent: (f64, f64),
    alpha: f64,
    total_iters: usize,
    simulations: usize,
    restarts: usize,
) -> Result<()> {
    let checkpoint = shc_obs::TraceCheckpoint {
        tau_s: current.tau_s,
        tau_h: current.tau_h,
        tangent: [tangent.0, tangent.1],
        alpha,
        total_corrector_iterations: total_iters as u64,
        simulations: simulations as u64,
        restarts: restarts as u64,
        fault_cursors: shc_fault::current()
            .map(|inj| inj.cursors().to_vec())
            .unwrap_or_default(),
        points: points
            .iter()
            .map(|p| shc_obs::CheckpointPoint {
                tau_s: p.tau_s,
                tau_h: p.tau_h,
                corrector_iterations: p.corrector_iterations as u64,
                residual: p.residual,
            })
            .collect(),
    };
    checkpoint
        .append_to(&cfg.path)
        .map_err(|e| CharError::Checkpoint {
            reason: e.to_string(),
        })?;
    shc_obs::count(shc_obs::Metric::CheckpointsWritten, 1);
    Ok(())
}

/// Traces `n` points of the constant clock-to-Q contour starting from a
/// point already on the curve (use [`crate::seed`] to obtain it).
///
/// Compatibility wrapper over [`trace_session`]: partial contours are
/// returned as plain `Ok` unless the underlying failure was a simulation
/// error, which propagates as it always did.
///
/// # Errors
///
/// Returns [`CharError::TraceAborted`] if fewer than two points could be
/// traced; otherwise a shorter-than-requested contour is *not* an error —
/// tracing stops cleanly at the skew bounds.
pub fn trace(
    problem: &CharacterizationProblem,
    seed: Params,
    n: usize,
    opts: &TracerOptions,
) -> Result<Contour> {
    match trace_session(problem, TraceStart::Seed(seed), n, opts, None)? {
        TraceOutcome::Complete(contour) => Ok(contour),
        TraceOutcome::Partial {
            failure: CharError::Simulation(e),
            ..
        } => Err(CharError::Simulation(e)),
        TraceOutcome::Partial { contour, .. } => Ok(contour),
    }
}

/// Traces up to `n` points of the constant clock-to-Q contour with the
/// full recovery ladder, optional checkpointing, and resume support.
///
/// On a corrector failure the ladder runs, cheapest rung first:
///
/// 1. **Step-halving** — the Euler predictor step α is halved (down to
///    `alpha_min`) and the correction retried closer to the last accepted
///    point. Skipped for simulation failures, which a shorter predictor
///    step cannot fix.
/// 2. **Bisection fallback** — [`mpnr::bisect_fallback`] solves
///    `h(τs, ·) = 0` along the hold axis by sign bisection, which needs no
///    Jacobian and tolerates the near-singular geometry that defeats MPNR.
/// 3. **Restart** — α is reset to its initial value and the walk retried
///    from the last accepted point, at most
///    [`RecoveryOptions::max_restarts`] times per trace.
///
/// Only when every rung fails does the trace stop, and even then the
/// accepted points are returned as [`TraceOutcome::Partial`] rather than
/// discarded.
///
/// # Errors
///
/// - [`CharError::BadOption`] for a zero checkpoint interval or an empty
///   resume checkpoint;
/// - [`CharError::Checkpoint`] if a checkpoint cannot be written;
/// - [`CharError::TraceAborted`] (or the underlying simulation failure)
///   if recovery is exhausted before two points exist;
/// - seed-evaluation failures propagate unchanged.
pub fn trace_session(
    problem: &CharacterizationProblem,
    start: TraceStart,
    n: usize,
    opts: &TracerOptions,
    checkpoint: Option<&CheckpointConfig>,
) -> Result<TraceOutcome> {
    let _span = shc_obs::span(shc_obs::SpanKind::Trace);
    // Self-time is the tracer's own bookkeeping (predictor, tangent,
    // recovery ladder, checkpoints); seed/corrector/transient work opens
    // child frames.
    let _frame = shc_prof::enter(shc_prof::Phase::TracerOverhead);
    if let Some(cfg) = checkpoint {
        if cfg.every == 0 {
            return Err(CharError::BadOption {
                reason: "checkpoint interval must be at least 1",
            });
        }
    }
    let sims_before = problem.simulation_count();
    // Baseline the per-point phase ledger before any simulation runs so
    // the seed point's journal entry charges only its own work.
    let mut phase_ledger = PhaseLedger::new();
    let mut points: Vec<ContourPoint> = Vec::with_capacity(n);
    let mut total_iters;
    let mut current;
    let mut tangent;
    let mut alpha;
    let mut restarts_used;
    let base_sims;

    match start {
        TraceStart::Seed(seed) => {
            total_iters = 0;
            restarts_used = 0;
            base_sims = 0;
            alpha = opts.alpha;
            // Evaluate at the seed to obtain the starting tangent.
            let ev0 = problem.evaluate_with_jacobian(&seed)?;
            let mut t0 = ev0.tangent().ok_or(CharError::VanishingJacobian {
                tau_s: seed.tau_s,
                tau_h: seed.tau_h,
            })?;
            // Orient the starting tangent.
            let want_negative_hold = matches!(opts.direction, TraceDirection::DecreasingHold);
            if (t0.1 < 0.0) != want_negative_hold {
                t0 = (-t0.0, -t0.1);
            }
            tangent = t0;
            current = seed;
            points.push(ContourPoint {
                tau_s: seed.tau_s,
                tau_h: seed.tau_h,
                corrector_iterations: 0,
                residual: ev0.h.abs(),
            });
            journal_point(
                0,
                seed,
                ev0.h.abs(),
                [ev0.dh_dtau_s, ev0.dh_dtau_h],
                tangent,
                0,
                0.0,
                ev0.stats,
                0,
                &mut phase_ledger,
            );
        }
        TraceStart::Resume(ckpt) => {
            if ckpt.points.is_empty() {
                return Err(CharError::BadOption {
                    reason: "resume checkpoint holds no accepted points",
                });
            }
            if let Some(injector) = shc_fault::current() {
                injector.restore_cursors(&ckpt.fault_cursors);
            }
            points.extend(ckpt.points.iter().map(|p| ContourPoint {
                tau_s: p.tau_s,
                tau_h: p.tau_h,
                corrector_iterations: p.corrector_iterations as usize,
                residual: p.residual,
            }));
            total_iters = ckpt.total_corrector_iterations as usize;
            restarts_used = ckpt.restarts as usize;
            base_sims = ckpt.simulations as usize;
            alpha = ckpt.alpha;
            tangent = (ckpt.tangent[0], ckpt.tangent[1]);
            current = Params::new(ckpt.tau_s, ckpt.tau_h);
        }
    }

    let mut attempts_since_accept = 0usize;
    let mut failure: Option<CharError> = None;

    while points.len() < n {
        if alpha < opts.alpha_min {
            break;
        }
        // Euler predictor along the tangent.
        let predicted = Params::new(
            current.tau_s + alpha * tangent.0,
            current.tau_h + alpha * tangent.1,
        );
        if predicted.tau_s.abs() > opts.skew_bound || predicted.tau_h.abs() > opts.skew_bound {
            break; // walked out of the characterization window
        }

        // MPNR corrector, with the recovery ladder on failure.
        let corrected = match mpnr::solve(problem, predicted, &opts.mpnr) {
            Ok(corrected) => corrected,
            Err(err) => {
                attempts_since_accept += 1;
                let is_simulation = matches!(err, CharError::Simulation(_));
                // Rung 1: shrink the predictor step and retry closer to
                // the last accepted point. A simulation failure is not a
                // geometry problem, so it skips straight past this rung.
                if !is_simulation && alpha * ALPHA_BACKOFF >= opts.alpha_min {
                    alpha *= ALPHA_BACKOFF;
                    shc_obs::count(shc_obs::Metric::AlphaAdaptations, 1);
                    continue;
                }
                // Rung 2: bisection along the hold axis.
                let rescued = if opts.recovery.bisection_fallback && !is_simulation {
                    mpnr::bisect_fallback(problem, current, predicted, &opts.mpnr).ok()
                } else {
                    None
                };
                match rescued {
                    Some(corrected) => corrected,
                    None => {
                        // Rung 3: bounded restart with α reset.
                        if restarts_used < opts.recovery.max_restarts {
                            restarts_used += 1;
                            alpha = opts.alpha;
                            shc_obs::count(shc_obs::Metric::TracerRestarts, 1);
                            continue;
                        }
                        failure = Some(err);
                        break;
                    }
                }
            }
        };

        // Refresh the tangent from the corrected point's Jacobian,
        // keeping the walking orientation consistent.
        let ev = crate::HEvaluation {
            h: 0.0,
            dh_dtau_s: corrected.jacobian[0],
            dh_dtau_h: corrected.jacobian[1],
            stats: corrected.transient,
        };
        let mut t_new = match ev.tangent() {
            Some(t) => t,
            None => break,
        };
        if t_new.0 * tangent.0 + t_new.1 * tangent.1 < 0.0 {
            t_new = (-t_new.0, -t_new.1);
        }
        tangent = t_new;
        journal_point(
            points.len(),
            corrected.params,
            corrected.residual,
            corrected.jacobian,
            tangent,
            corrected.iterations,
            alpha,
            corrected.transient,
            attempts_since_accept,
            &mut phase_ledger,
        );
        attempts_since_accept = 0;
        if tangent.1.abs() < opts.min_tangent_hold {
            // Reached the flat asymptote: record the point, stop.
            total_iters += corrected.iterations;
            points.push(ContourPoint {
                tau_s: corrected.params.tau_s,
                tau_h: corrected.params.tau_h,
                corrector_iterations: corrected.iterations,
                residual: corrected.residual,
            });
            break;
        }
        current = corrected.params;
        total_iters += corrected.iterations;
        points.push(ContourPoint {
            tau_s: current.tau_s,
            tau_h: current.tau_h,
            corrector_iterations: corrected.iterations,
            residual: corrected.residual,
        });
        // Step-length adaptation.
        let adapted = if corrected.iterations <= opts.easy_iters {
            (alpha * 1.25).min(opts.alpha_max)
        } else {
            (alpha * ALPHA_BACKOFF).max(opts.alpha_min)
        };
        if adapted != alpha {
            shc_obs::count(shc_obs::Metric::AlphaAdaptations, 1);
        }
        alpha = adapted;
        // Persist the walking state. Written *after* the adaptation and
        // tangent refresh so the checkpoint is exactly the loop state an
        // uninterrupted trace would carry into the next iteration.
        if let Some(cfg) = checkpoint {
            if points.len().is_multiple_of(cfg.every) {
                write_checkpoint(
                    cfg,
                    &points,
                    current,
                    tangent,
                    alpha,
                    total_iters,
                    base_sims + (problem.simulation_count() - sims_before),
                    restarts_used,
                )?;
            }
        }
    }

    if points.len() < 2 {
        return Err(match failure {
            Some(CharError::Simulation(e)) => CharError::Simulation(e),
            _ => CharError::TraceAborted {
                points_found: points.len(),
                reason: "could not trace beyond the seed point",
            },
        });
    }

    shc_obs::count(shc_obs::Metric::ContourPoints, points.len() as u64);
    let contour = Contour {
        points,
        simulations: base_sims + (problem.simulation_count() - sims_before),
        total_corrector_iterations: total_iters,
    };
    Ok(match failure {
        None => TraceOutcome::Complete(contour),
        Some(failure) => TraceOutcome::Partial { contour, failure },
    })
}

/// One degradation level's contour from [`trace_batch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchContour {
    /// The clock-to-Q degradation fraction defining this contour.
    pub degradation: f64,
    /// Characteristic clock-to-Q delay, seconds.
    pub t_cq: f64,
    /// The traced contour.
    pub contour: Contour,
    /// Transient simulations this level consumed (seeding + tracing).
    pub simulations: usize,
}

/// Options for [`trace_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchOptions {
    /// Contour points per degradation level.
    pub points: usize,
    /// Seeding settings (each level seeds independently).
    pub seed: SeedOptions,
    /// Tracer settings.
    pub tracer: TracerOptions,
    /// Fan-out policy across degradation levels. Levels are fully
    /// independent, so parallel results are identical to serial ones.
    #[serde(skip)]
    pub parallelism: Parallelism,
    /// Batched-engine policy. Only the explicit [`BatchPolicy::Batched`]
    /// changes this entry point: serial multi-level batches then seed
    /// level 0 cold and warm-polish every later level's seed from it in
    /// lockstep lane groups — cheaper than per-level bracketing, but a
    /// *different* (warm) seeding strategy from the scalar path, which is
    /// why `Auto` leaves it off here.
    #[serde(default)]
    pub batch: BatchPolicy,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            points: 20,
            seed: SeedOptions::default(),
            tracer: TracerOptions::default(),
            parallelism: Parallelism::default(),
            batch: BatchPolicy::default(),
        }
    }
}

/// Traces one constant clock-to-Q contour per degradation level — the
/// library-characterization shape where a cell is characterized at several
/// delay-degradation criteria (e.g. 2%, 10%, 50%) at once.
///
/// Every level rebuilds the cell through `build` because `t_f` and `r` are
/// fixed when a [`CharacterizationProblem`] is constructed; the factory
/// must be `Sync` so levels can fan out across threads. Results are
/// returned in the order of `degradations` regardless of the policy, one
/// `Result` per level: a failing level no longer discards its siblings'
/// completed contours.
pub fn trace_batch<F>(
    build: F,
    degradations: &[f64],
    opts: &BatchOptions,
) -> Vec<Result<BatchContour>>
where
    F: Fn() -> Register + Sync,
{
    let _span = shc_obs::span(shc_obs::SpanKind::TraceBatch);
    if matches!(opts.batch, BatchPolicy::Batched)
        && opts.parallelism.is_serial()
        && degradations.len() >= 2
    {
        return trace_batch_lockstep(build, degradations, opts);
    }
    let run = parallel::run_indexed(opts.parallelism, degradations.len(), |i| {
        // Tag this level's journal events with its index so batch
        // journals stay attributable regardless of worker interleaving.
        let _level = shc_obs::with_journal_level(i as u64);
        let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
        let degradation = degradations[i];
        let level = (|| {
            let problem = CharacterizationProblem::builder(build())
                .degradation(degradation)
                .build()?;
            problem.reset_simulation_count();
            let contour = problem.trace_contour_with(opts.points, &opts.seed, &opts.tracer)?;
            Ok(BatchContour {
                degradation,
                t_cq: problem.characteristic_delay(),
                contour,
                simulations: problem.simulation_count(),
            })
        })();
        // Per-level failures are payload, not control flow: every level
        // always runs to its own verdict.
        Ok::<_, std::convert::Infallible>(level)
    });
    match run {
        Ok(levels) => levels,
        Err(never) => match never {},
    }
}

/// Serial [`trace_batch`] under the explicit [`BatchPolicy::Batched`]
/// opt-in: level 0 seeds cold and its first contour point anchors an MPNR
/// warm polish of every later level's seed, advanced in lockstep lane
/// groups through the batched engine (the levels share one cell at nearby
/// capture deadlines). A lane whose polish fails falls back to the cold
/// bracketing search; tracing stays per-level, and per-level failures
/// remain payload.
fn trace_batch_lockstep<F>(
    build: F,
    degradations: &[f64],
    opts: &BatchOptions,
) -> Vec<Result<BatchContour>>
where
    F: Fn() -> Register + Sync,
{
    let problems: Vec<Result<CharacterizationProblem>> = degradations
        .iter()
        .map(|&degradation| {
            let problem = CharacterizationProblem::builder(build())
                .degradation(degradation)
                .batch(opts.batch)
                .build()?;
            problem.reset_simulation_count();
            Ok(problem)
        })
        .collect();

    // Seed level 0 cold; its point anchors the warm polish of the rest.
    let mut seeds: Vec<Option<Result<mpnr::MpnrResult>>> = problems.iter().map(|_| None).collect();
    let anchor = match &problems[0] {
        Ok(problem) => {
            let found = seed::find_first_point(problem, &opts.seed);
            let params = found.as_ref().ok().map(|point| point.params);
            seeds[0] = Some(found);
            params
        }
        Err(_) => None,
    };
    if let Some(anchor_params) = anchor {
        let lanes: Vec<(usize, &CharacterizationProblem)> = problems
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(i, p)| p.as_ref().ok().map(|p| (i, p)))
            .collect();
        for group in lanes.chunks(DEFAULT_LANES) {
            let refs: Vec<&CharacterizationProblem> = group.iter().map(|&(_, p)| p).collect();
            let warm = mpnr::solve_batch(
                &refs,
                &vec![anchor_params; refs.len()],
                &opts.tracer.mpnr,
                opts.batch,
            );
            for (&(i, problem), solved) in group.iter().zip(warm) {
                seeds[i] = Some(match solved {
                    Ok(polished) => Ok(polished),
                    Err(_) => seed::find_first_point(problem, &opts.seed),
                });
            }
        }
    }

    degradations
        .iter()
        .zip(problems)
        .zip(seeds)
        .enumerate()
        .map(|(i, ((&degradation, problem), seeded))| {
            let _level = shc_obs::with_journal_level(i as u64);
            let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
            let problem = problem?;
            let first = match seeded {
                Some(found) => found?,
                // The anchor level itself failed: seed this level cold.
                None => seed::find_first_point(&problem, &opts.seed)?,
            };
            let contour = trace(&problem, first.params, opts.points, &opts.tracer)?;
            Ok(BatchContour {
                degradation,
                t_cq: problem.characteristic_delay(),
                contour,
                simulations: problem.simulation_count(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::find_first_point;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn fast_problem() -> CharacterizationProblem {
        let tech = Technology::default_250nm();
        CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
            .build()
            .unwrap()
    }

    #[test]
    fn traces_contour_with_setup_hold_tradeoff() {
        let problem = fast_problem();
        let seed = find_first_point(&problem, &SeedOptions::default()).unwrap();
        let contour = trace(&problem, seed.params, 12, &TracerOptions::default()).unwrap();
        let pts = contour.points();
        assert!(pts.len() >= 6, "traced only {} points", pts.len());
        // Walking direction: hold skew decreases from the seed.
        assert!(
            pts.last().unwrap().tau_h < pts[0].tau_h,
            "hold skew should decrease along the walk"
        );
        // Interdependence: as hold decreases, setup must increase
        // (monotone tradeoff) over the traced stretch.
        let first = &pts[1];
        let last = pts.last().unwrap();
        assert!(
            last.tau_s > first.tau_s,
            "setup should grow as hold shrinks: {:.1} ps → {:.1} ps",
            first.tau_s * 1e12,
            last.tau_s * 1e12
        );
        // Every point satisfies h ≈ 0 to tight tolerance.
        for p in pts {
            assert!(p.residual < 5e-3, "loose point: |h| = {}", p.residual);
        }
        // Corrector efficiency: the paper reports 2–3 MPNR iterations.
        assert!(
            contour.mean_corrector_iterations() <= 6.0,
            "mean corrector iterations {}",
            contour.mean_corrector_iterations()
        );
        // O(n) simulations: a modest multiple of the point count.
        assert!(
            contour.simulations() <= 8 * pts.len(),
            "{} sims for {} points",
            contour.simulations(),
            pts.len()
        );
    }

    #[test]
    fn increasing_hold_direction_walks_up_the_asymptote() {
        let problem = fast_problem();
        let seed = find_first_point(&problem, &SeedOptions::default()).unwrap();
        let opts = TracerOptions {
            direction: TraceDirection::IncreasingHold,
            ..TracerOptions::default()
        };
        let contour = trace(&problem, seed.params, 6, &opts).unwrap();
        let pts = contour.points();
        assert!(pts.len() >= 3);
        for w in pts.windows(2) {
            assert!(
                w[1].tau_h >= w[0].tau_h - 1e-12,
                "hold skew decreased despite IncreasingHold"
            );
        }
        // Going up the setup asymptote, the required setup stays near the
        // seed's (already asymptotic) value.
        let drift = (pts.last().unwrap().tau_s - pts[0].tau_s).abs();
        assert!(drift < 30e-12, "setup drifted {:.1} ps", drift * 1e12);
    }

    #[test]
    fn session_checkpoint_and_resume_reproduce_the_contour() {
        let dir = std::env::temp_dir().join(format!(
            "shc-tracer-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ckpt.jsonl");
        let _ = std::fs::remove_file(&path);
        let cfg = CheckpointConfig {
            path: path.clone(),
            every: 2,
        };

        let problem = fast_problem();
        let seed = find_first_point(&problem, &SeedOptions::default()).unwrap();
        let opts = TracerOptions::default();

        // The uninterrupted reference trace.
        let full = trace_session(&problem, TraceStart::Seed(seed.params), 9, &opts, None)
            .unwrap()
            .into_contour();

        // A "killed" first half…
        let problem2 = fast_problem();
        let half = trace_session(
            &problem2,
            TraceStart::Seed(seed.params),
            6,
            &opts,
            Some(&cfg),
        )
        .unwrap()
        .into_contour();
        assert_eq!(half.points().len(), 6);
        let ckpt = shc_obs::TraceCheckpoint::read_last(&path)
            .unwrap()
            .expect("checkpoint written");
        assert_eq!(ckpt.points.len(), 6);

        // …resumed on a fresh problem must continue to the identical
        // contour, bit for bit, including the simulation budget.
        let problem3 = fast_problem();
        let resumed = trace_session(&problem3, TraceStart::Resume(ckpt), 9, &opts, None)
            .unwrap()
            .into_contour();
        assert_eq!(resumed, full);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn batch_levels_are_independent_and_order_free() {
        let build = || tspc_register_with(&Technology::default_250nm(), ClockSpec::fast());
        let levels = [0.05, 0.10];
        let serial_opts = BatchOptions {
            points: 5,
            ..BatchOptions::default()
        };
        let parallel_opts = BatchOptions {
            parallelism: Parallelism::Threads(2),
            ..serial_opts
        };
        let serial: Vec<BatchContour> = trace_batch(build, &levels, &serial_opts)
            .into_iter()
            .collect::<Result<_>>()
            .unwrap();
        let fanned: Vec<BatchContour> = trace_batch(build, &levels, &parallel_opts)
            .into_iter()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(serial, fanned);
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].degradation, 0.05);
        assert_eq!(serial[1].degradation, 0.10);
        // A looser degradation criterion gives a later capture deadline,
        // so the two levels must land on genuinely different contours.
        assert_ne!(serial[0].contour.points()[0], serial[1].contour.points()[0]);
    }

    #[test]
    fn batched_levels_share_warm_seeds_and_stay_on_contour() {
        let build = || tspc_register_with(&Technology::default_250nm(), ClockSpec::fast());
        let levels = [0.05, 0.10, 0.20];
        let scalar_opts = BatchOptions {
            points: 5,
            ..BatchOptions::default()
        };
        let batched_opts = BatchOptions {
            batch: BatchPolicy::Batched,
            ..scalar_opts
        };
        let scalar: Vec<BatchContour> = trace_batch(build, &levels, &scalar_opts)
            .into_iter()
            .collect::<Result<_>>()
            .unwrap();
        let batched: Vec<BatchContour> = trace_batch(build, &levels, &batched_opts)
            .into_iter()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(batched.len(), 3);
        // Level 0 seeds cold, so it is bitwise-identical to the scalar run.
        assert_eq!(batched[0], scalar[0]);
        for (b, s) in batched.iter().zip(&scalar) {
            assert_eq!(b.degradation, s.degradation);
            assert!(b.contour.points().len() >= 3, "thin batched contour");
            // Warm-seeded levels land on the same physical contour even
            // though the seed point differs from the cold bracketing one.
            for p in b.contour.points() {
                assert!(p.residual < 5e-3, "off-contour point: |h| = {}", p.residual);
            }
        }
        // The warm polish must beat cold bracketing on seeding cost.
        let batched_sims: usize = batched[1..].iter().map(|b| b.simulations).sum();
        let scalar_sims: usize = scalar[1..].iter().map(|s| s.simulations).sum();
        assert!(
            batched_sims < scalar_sims,
            "warm lockstep seeding never saved work: {batched_sims} vs {scalar_sims} sims"
        );
    }

    #[test]
    fn batch_keeps_completed_levels_when_one_fails() {
        let build = || tspc_register_with(&Technology::default_250nm(), ClockSpec::fast());
        // 1.5 fails builder validation; its siblings must still come back.
        let levels = [0.05, 1.5, 0.10];
        let opts = BatchOptions {
            points: 4,
            ..BatchOptions::default()
        };
        let results = trace_batch(build, &levels, &opts);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "level 0: {:?}", results[0]);
        assert!(
            matches!(results[1], Err(CharError::BadOption { .. })),
            "level 1: {:?}",
            results[1]
        );
        assert!(results[2].is_ok(), "level 2: {:?}", results[2]);
    }

    #[test]
    fn batch_journal_is_identical_serial_and_parallel() {
        use std::sync::Arc;

        use shc_obs::{Collector, JournalEvent, MemorySink, Sink};

        // Run a two-level batch under a journaling collector and return
        // the events sorted by (level, point) — the order-free identity.
        let journal_of = |parallelism: Parallelism| -> Vec<JournalEvent> {
            let sink = Arc::new(MemorySink::new());
            let collector = Collector::with_sink(Arc::clone(&sink) as Arc<dyn Sink>);
            let _guard = shc_obs::install_scoped(&collector);
            let build = || tspc_register_with(&Technology::default_250nm(), ClockSpec::fast());
            let opts = BatchOptions {
                points: 5,
                parallelism,
                ..BatchOptions::default()
            };
            let batch: Vec<BatchContour> = trace_batch(build, &[0.05, 0.10], &opts)
                .into_iter()
                .collect::<Result<_>>()
                .unwrap();
            let mut events = sink.events();
            events.sort_by_key(JournalEvent::sort_key);
            let traced: usize = batch.iter().map(|b| b.contour.points().len()).sum();
            assert_eq!(events.len(), traced, "one journal event per traced point");
            events
        };

        let serial = journal_of(Parallelism::Serial);
        let fanned = journal_of(Parallelism::Threads(2));
        assert_eq!(serial, fanned, "journal must not depend on fan-out");
        // Every batch event carries its degradation-level index.
        assert!(serial.iter().all(|e| matches!(e.level, Some(0 | 1))));
        assert!(serial.iter().any(|e| e.level == Some(1)));
    }

    #[test]
    fn hold_at_setup_interpolates() {
        let contour = Contour {
            points: vec![
                ContourPoint {
                    tau_s: 1.0,
                    tau_h: 10.0,
                    corrector_iterations: 0,
                    residual: 0.0,
                },
                ContourPoint {
                    tau_s: 3.0,
                    tau_h: 6.0,
                    corrector_iterations: 2,
                    residual: 0.0,
                },
            ],
            simulations: 0,
            total_corrector_iterations: 2,
        };
        assert_eq!(contour.hold_at_setup(2.0), Some(8.0));
        assert_eq!(contour.hold_at_setup(0.5), None);
        assert_eq!(contour.hold_at_setup(3.5), None);
    }

    #[test]
    fn mean_iterations_handles_seed_only() {
        let c = Contour {
            points: vec![ContourPoint {
                tau_s: 0.0,
                tau_h: 0.0,
                corrector_iterations: 0,
                residual: 0.0,
            }],
            simulations: 1,
            total_corrector_iterations: 0,
        };
        assert_eq!(c.mean_corrector_iterations(), 0.0);
    }
}
