//! Contour stacks: the constant clock-to-Q family over several degradation
//! levels.
//!
//! One contour answers "which (τs, τh) degrade clock-to-Q by exactly 10%?".
//! A *stack* of contours at several degradation levels (5%, 10%, 20%, …)
//! carries the same information as the paper's Fig. 1(a) output surface —
//! the full delay landscape — but costs O(levels × n) simulations instead
//! of the surface's O(n²), with each level warm-started from its neighbor.
//! Downstream, a timer can interpolate *between* levels to trade accuracy
//! against margin continuously.

use serde::{Deserialize, Serialize};
use shc_cells::Register;

use crate::mpnr::{self};
use crate::seed::{self};
use crate::tracer::{self};
use crate::{CharError, CharacterizationProblem, Contour, Result, SeedOptions, TracerOptions};

/// One degradation level's contour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackLevel {
    /// Clock-to-Q degradation fraction (e.g. `0.10`).
    pub degradation: f64,
    /// Evaluation time `t_f` for this level, seconds.
    pub t_f: f64,
    /// The traced contour.
    pub contour: Contour,
    /// Simulations this level consumed.
    pub simulations: usize,
}

/// A family of constant clock-to-Q contours at increasing degradation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContourStack {
    levels: Vec<StackLevel>,
}

impl ContourStack {
    /// The levels, in the order they were traced.
    pub fn levels(&self) -> &[StackLevel] {
        &self.levels
    }

    /// Total simulations across all levels.
    pub fn total_simulations(&self) -> usize {
        self.levels.iter().map(|l| l.simulations).sum()
    }

    /// Interpolates the degradation at which a given (τs, τh) pair sits,
    /// by finding the two adjacent levels whose contours bracket it in the
    /// hold direction at that setup skew.
    ///
    /// Returns `None` outside the characterized band.
    pub fn degradation_at(&self, tau_s: f64, tau_h: f64) -> Option<f64> {
        // Larger degradation ⇒ more tolerant ⇒ contour at smaller skews.
        let mut below: Option<(f64, f64)> = None; // (degradation, hold@setup)
        let mut above: Option<(f64, f64)> = None;
        for level in &self.levels {
            // Levels whose traced range does not cover this setup skew are
            // simply not informative for the query.
            let Some(hold) = level.contour.hold_at_setup(tau_s) else {
                continue;
            };
            if hold <= tau_h {
                // This level's requirement is met (point above its contour).
                match below {
                    Some((_, h)) if h >= hold => {}
                    _ => below = Some((level.degradation, hold)),
                }
            } else {
                match above {
                    Some((_, h)) if h <= hold => {}
                    _ => above = Some((level.degradation, hold)),
                }
            }
        }
        match (below, above) {
            (Some((d_ok, h_ok)), Some((d_bad, h_bad))) => {
                if (h_bad - h_ok).abs() < 1e-30 {
                    return Some(d_ok);
                }
                let frac = (tau_h - h_ok) / (h_bad - h_ok);
                Some(d_ok + frac * (d_bad - d_ok))
            }
            (Some((d_ok, _)), None) => Some(d_ok),
            _ => None,
        }
    }
}

/// Traces a contour stack for a register fixture.
///
/// `degradations` must be nonempty; levels are traced in the given order,
/// each warm-started from the previous level's first contour point.
///
/// # Errors
///
/// - [`CharError::BadOption`] for an empty level list;
/// - propagated characterization failures (the first level is traced cold;
///   later levels fall back to cold seeding if the warm start fails).
///
/// # Panics
///
/// Panics for [`Register::custom`] fixtures (they cannot be rebuilt per
/// level); use library cells or build the stack manually.
pub fn trace_stack(
    register: &Register,
    degradations: &[f64],
    points: usize,
    tracer_opts: &TracerOptions,
) -> Result<ContourStack> {
    if degradations.is_empty() {
        return Err(CharError::BadOption {
            reason: "contour stack needs at least one degradation level",
        });
    }
    let mut levels = Vec::with_capacity(degradations.len());
    let mut previous_first = None;

    for &degradation in degradations {
        // Rebuild the same cell for this level (fresh problem, fresh t_f).
        let fixture = register.with_clock(*register.clock());
        let problem = CharacterizationProblem::builder(fixture)
            .degradation(degradation)
            .build()?;
        problem.reset_simulation_count();
        let first = match previous_first {
            Some(guess) => match mpnr::solve(&problem, guess, &tracer_opts.mpnr) {
                Ok(p) => p,
                Err(_) => seed::find_first_point(&problem, &SeedOptions::default())?,
            },
            None => seed::find_first_point(&problem, &SeedOptions::default())?,
        };
        let contour = tracer::trace(&problem, first.params, points, tracer_opts)?;
        previous_first = Some(first.params);
        levels.push(StackLevel {
            degradation,
            t_f: problem.t_f(),
            contour,
            simulations: problem.simulation_count(),
        });
    }
    Ok(ContourStack { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn small_stack() -> ContourStack {
        let tech = Technology::default_250nm();
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        trace_stack(&reg, &[0.05, 0.10, 0.20], 8, &TracerOptions::default()).unwrap()
    }

    #[test]
    fn stack_levels_are_ordered_by_tolerance() {
        let stack = small_stack();
        assert_eq!(stack.levels().len(), 3);
        // More allowed degradation ⇒ smaller setup time at the seed's hold
        // level (the contour moves toward the origin).
        let setups: Vec<f64> = stack
            .levels()
            .iter()
            .map(|l| l.contour.points()[0].tau_s)
            .collect();
        assert!(
            setups[0] > setups[1] && setups[1] > setups[2],
            "setup at seed should shrink with tolerance: {setups:?}"
        );
        // t_f grows with the degradation level.
        let tfs: Vec<f64> = stack.levels().iter().map(|l| l.t_f).collect();
        assert!(tfs[0] < tfs[1] && tfs[1] < tfs[2]);
    }

    #[test]
    fn stack_is_far_cheaper_than_a_surface() {
        let stack = small_stack();
        // 3 levels × 8 points traced in far fewer sims than even a modest
        // 20×20 surface.
        assert!(
            stack.total_simulations() < 200,
            "stack cost {} sims",
            stack.total_simulations()
        );
    }

    #[test]
    fn degradation_interpolates_between_levels() {
        let stack = small_stack();
        // Pick the 10% level's mid point; its interpolated degradation must
        // be close to 10%.
        let mid = stack.levels()[1].contour.points()[2];
        if let Some(d) = stack.degradation_at(mid.tau_s, mid.tau_h) {
            assert!(
                (d - 0.10).abs() < 0.05,
                "interpolated degradation {d:.3} at a 10% contour point"
            );
        }
    }

    #[test]
    fn empty_levels_rejected() {
        let tech = Technology::default_250nm();
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        assert!(matches!(
            trace_stack(&reg, &[], 8, &TracerOptions::default()),
            Err(CharError::BadOption { .. })
        ));
    }
}
