//! Finding the first point on the contour (paper Sec. IV-A).
//!
//! The hold skew is pinned to a generous value so the setup time becomes
//! (nearly) independent of it; a coarse binary search then brackets the
//! setup time between a passing and a failing skew until the interval is
//! small enough to lie inside MPNR's convergence basin (paper Fig. 7), and
//! MPNR polishes the midpoint onto the curve.

use serde::{Deserialize, Serialize};
use shc_spice::waveform::Params;

use crate::independent::{self, IndependentOptions, SkewAxis};
use crate::mpnr::{self, MpnrOptions};
use crate::{CharError, CharacterizationProblem, MpnrResult, Result};

/// Options for seeding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedOptions {
    /// Stop the bracketing binary search when the interval shrinks below
    /// this width, in seconds (the MPNR convergence-range estimate).
    pub bracket_tol: f64,
    /// Lower end of the initial setup-skew search range, in seconds.
    pub tau_s_min: f64,
    /// Upper end of the initial setup-skew search range; `None` uses the
    /// problem's generous reference skew.
    pub tau_s_max: Option<f64>,
    /// Hold skew pinned during seeding. `None` (the default) estimates the
    /// hold time by a coarse bisection and pins the hold skew
    /// `hold_margin` above it, so the trace starts near the contour's
    /// interesting bend instead of far up its flat asymptote.
    pub tau_h: Option<f64>,
    /// Margin added above the estimated hold time when `tau_h` is `None`.
    pub hold_margin: f64,
    /// MPNR settings for the polish step.
    pub mpnr: MpnrOptions,
}

impl Default for SeedOptions {
    fn default() -> Self {
        SeedOptions {
            bracket_tol: 10e-12,
            // Pulsed latches can have substantially negative setup times
            // (the capture window opens after the clock edge).
            tau_s_min: -300e-12,
            tau_s_max: None,
            tau_h: None,
            hold_margin: 100e-12,
            mpnr: MpnrOptions::default(),
        }
    }
}

/// Finds one point on the constant clock-to-Q contour.
///
/// # Errors
///
/// - [`CharError::SeedBracketFailed`] if both bracket ends pass (setup time
///   below the search range) or both fail (range too small / cell broken);
/// - propagated MPNR and simulation failures.
///
/// # Example
///
/// ```rust,no_run
/// use shc_cells::{tspc_register, Technology};
/// use shc_core::{seed, CharacterizationProblem, SeedOptions};
///
/// # fn main() -> Result<(), shc_core::CharError> {
/// let problem =
///     CharacterizationProblem::builder(tspc_register(&Technology::default_250nm()))
///         .build()?;
/// let first = seed::find_first_point(&problem, &SeedOptions::default())?;
/// println!("setup time at large hold skew: {:.1} ps", first.params.tau_s * 1e12);
/// # Ok(())
/// # }
/// ```
pub fn find_first_point(
    problem: &CharacterizationProblem,
    opts: &SeedOptions,
) -> Result<MpnrResult> {
    let _span = shc_obs::span(shc_obs::SpanKind::Seed);
    let _frame = shc_prof::enter(shc_prof::Phase::SeedSearch);
    let reference = problem.reference_params();
    let tau_h = match opts.tau_h {
        Some(t) => t,
        None => {
            // Coarse hold-time estimate at a generous setup skew.
            let hold = independent::binary_search(
                problem,
                SkewAxis::Hold,
                &IndependentOptions {
                    range: (-150e-12, reference.tau_h),
                    tol: 20e-12,
                    max_iters: 40,
                    initial_guess: None,
                },
            )?;
            hold.skew + opts.hold_margin
        }
    };
    let mut lo = opts.tau_s_min;
    let mut hi = opts.tau_s_max.unwrap_or(reference.tau_s);
    // NaN bounds must fail too, so the comparison accepts, not rejects.
    let range_ok = hi > lo;
    if !range_ok {
        return Err(CharError::SeedBracketFailed {
            reason: "empty search range",
        });
    }

    let pass_at = |tau_s: f64| -> Result<bool> {
        let h = problem.evaluate(&Params::new(tau_s, tau_h))?;
        Ok(problem.is_pass(h))
    };

    if !pass_at(hi)? {
        return Err(CharError::SeedBracketFailed {
            reason: "generous setup skew does not latch; cell or target level broken",
        });
    }
    if pass_at(lo)? {
        return Err(CharError::SeedBracketFailed {
            reason: "lower search bound already latches; decrease tau_s_min",
        });
    }

    // Coarse binary search until the bracket fits the NR convergence range.
    while hi - lo > opts.bracket_tol {
        let mid = 0.5 * (lo + hi);
        if pass_at(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }

    // Polish the midpoint onto the curve with MPNR.
    mpnr::solve(problem, Params::new(0.5 * (lo + hi), tau_h), &opts.mpnr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec, Technology};

    fn fast_problem() -> CharacterizationProblem {
        let tech = Technology::default_250nm();
        CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
            .build()
            .unwrap()
    }

    #[test]
    fn finds_setup_time_at_large_hold_skew() {
        let problem = fast_problem();
        let seed = find_first_point(&problem, &SeedOptions::default()).unwrap();
        // Positive setup time, well under the clock period.
        assert!(
            seed.params.tau_s > 0.0 && seed.params.tau_s < 1e-9,
            "setup time {:.1} ps",
            seed.params.tau_s * 1e12
        );
        assert!(seed.residual < 1e-3);
        // The point truly separates pass from fail along τs.
        let h_lo = problem
            .evaluate(&Params::new(seed.params.tau_s - 20e-12, seed.params.tau_h))
            .unwrap();
        let h_hi = problem
            .evaluate(&Params::new(seed.params.tau_s + 20e-12, seed.params.tau_h))
            .unwrap();
        assert!(!problem.is_pass(h_lo));
        assert!(problem.is_pass(h_hi));
    }

    #[test]
    fn rejects_empty_range() {
        let problem = fast_problem();
        let opts = SeedOptions {
            tau_s_max: Some(-1e-9),
            ..SeedOptions::default()
        };
        assert!(matches!(
            find_first_point(&problem, &opts),
            Err(CharError::SeedBracketFailed { .. })
        ));
    }

    #[test]
    fn rejects_range_entirely_in_pass_region() {
        let problem = fast_problem();
        let opts = SeedOptions {
            tau_s_min: 0.5e-9, // far above the setup time: always passes
            ..SeedOptions::default()
        };
        assert!(matches!(
            find_first_point(&problem, &opts),
            Err(CharError::SeedBracketFailed { .. })
        ));
    }
}
