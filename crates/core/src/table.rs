//! Liberty-style table characterization over clock slew and output load.
//!
//! Production `.lib` characterization indexes constraints and delays by
//! **input/clock transition time** and **output capacitance** — the grid a
//! timer interpolates at runtime. This module runs the characterization
//! kernel over that grid, warm-starting each cell from its grid neighbor
//! (the same reuse the paper's Sec. III-E step 1a recommends for corners),
//! and renders the result as Liberty-flavoured lookup tables.

use serde::{Deserialize, Serialize};
use shc_cells::{ClockSpec, Register, Technology};

use crate::independent::{binary_search, newton, IndependentOptions, SkewAxis};
use crate::{CharError, CharacterizationProblem, Result};

/// One grid point's characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Clock transition (rise/fall) time, seconds.
    /// unit: s
    pub clock_slew: f64,
    /// Output load capacitance, farads.
    /// unit: F
    pub load: f64,
    /// Characteristic clock-to-Q delay, seconds.
    /// unit: s
    pub t_cq: f64,
    /// Setup time (at generous hold), seconds.
    /// unit: s
    pub setup: f64,
    /// Hold time (at generous setup), seconds.
    /// unit: s
    pub hold: f64,
    /// Transient simulations this entry consumed.
    pub simulations: usize,
}

/// A slew × load characterization table for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTable {
    cell: String,
    clock_slews: Vec<f64>,
    loads: Vec<f64>,
    /// Row-major: `entries[slew_index * loads.len() + load_index]`.
    entries: Vec<TableEntry>,
}

impl CellTable {
    /// Cell name.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// The clock-slew axis.
    pub fn clock_slews(&self) -> &[f64] {
        &self.clock_slews
    }

    /// The load axis.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// All entries, row-major over (slew, load).
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// The entry at a grid coordinate.
    pub fn entry(&self, slew_index: usize, load_index: usize) -> Option<&TableEntry> {
        self.entries.get(slew_index * self.loads.len() + load_index)
    }

    /// Total simulations across the grid.
    pub fn total_simulations(&self) -> usize {
        self.entries.iter().map(|e| e.simulations).sum()
    }

    /// Renders Liberty-flavoured `values(...)` blocks for clock-to-Q,
    /// setup, and hold, indexed by slew (`index_1`, ns) and load
    /// (`index_2`, pF).
    pub fn to_liberty(&self) -> String {
        let idx1: Vec<String> = self
            .clock_slews
            .iter()
            .map(|s| format!("{:.4}", s * 1e9))
            .collect();
        let idx2: Vec<String> = self
            .loads
            .iter()
            .map(|l| format!("{:.4}", l * 1e12))
            .collect();
        let render = |f: &dyn Fn(&TableEntry) -> f64| -> String {
            self.clock_slews
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let row: Vec<String> = self
                        .loads
                        .iter()
                        .enumerate()
                        .map(|(j, _)| match self.entry(i, j) {
                            Some(e) => format!("{:.4}", f(e) * 1e9),
                            // A hole in the grid renders as NaN rather
                            // than aborting the whole table export.
                            None => "NaN".to_string(),
                        })
                        .collect();
                    format!("  \"{}\"", row.join(", "))
                })
                .collect::<Vec<_>>()
                .join(", \\\n")
        };
        format!(
            "/* cell {} — ns over index_1 = clock slew (ns), index_2 = load (pF) */\n\
             index_1(\"{}\");\nindex_2(\"{}\");\n\
             cell_rise_clk_to_q: values( \\\n{} );\n\
             setup_rising: values( \\\n{} );\n\
             hold_rising: values( \\\n{} );\n",
            self.cell,
            idx1.join(", "),
            idx2.join(", "),
            render(&|e| e.t_cq),
            render(&|e| e.setup),
            render(&|e| e.hold),
        )
    }
}

/// Options for table characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableOptions {
    /// Solution tolerance for setup/hold, seconds.
    pub tol: f64,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { tol: 0.5e-12 }
    }
}

/// Characterizes a cell over a clock-slew × load grid.
///
/// `build` constructs the register for a (technology, clock) pair — e.g.
/// `|tech, clock| tspc_register_with(tech, clock)`. The base technology's
/// `cload` and the base clock's `rise`/`fall` are overridden per grid
/// point. After the first (cold) entry, setup/hold solve by warm-started
/// Newton from the previous entry's values.
///
/// # Errors
///
/// - [`CharError::BadOption`] for empty axes;
/// - propagated characterization failures.
pub fn characterize<F>(
    cell_name: &str,
    base_tech: &Technology,
    base_clock: ClockSpec,
    build: F,
    clock_slews: &[f64],
    loads: &[f64],
    opts: &TableOptions,
) -> Result<CellTable>
where
    F: Fn(&Technology, ClockSpec) -> Register,
{
    if clock_slews.is_empty() || loads.is_empty() {
        return Err(CharError::BadOption {
            reason: "table axes must be nonempty",
        });
    }
    let mut entries = Vec::with_capacity(clock_slews.len() * loads.len());
    let mut previous: Option<(f64, f64)> = None;

    for (si, &slew) in clock_slews.iter().enumerate() {
        // Boustrophedon (snake) traversal: the warm-start neighbor stays
        // grid-adjacent across slew-row boundaries.
        let row: Vec<f64> = if si % 2 == 0 {
            loads.to_vec()
        } else {
            loads.iter().rev().copied().collect()
        };
        for &load in &row {
            let mut tech = *base_tech;
            tech.cload = load;
            let mut clock = base_clock;
            clock.rise = slew;
            clock.fall = slew;
            let problem = CharacterizationProblem::builder(build(&tech, clock)).build()?;
            problem.reset_simulation_count();

            let solve = |axis: SkewAxis, guess: Option<f64>| -> Result<f64> {
                let base = IndependentOptions {
                    tol: opts.tol,
                    ..IndependentOptions::default()
                };
                match guess {
                    Some(g) => {
                        let warm = IndependentOptions {
                            initial_guess: Some(g),
                            // A good neighbor converges in a handful of
                            // steps; cap the attempt so a bad neighbor
                            // falls back to bisection cheaply.
                            max_iters: 8,
                            ..base
                        };
                        match newton(&problem, axis, &warm) {
                            Ok(r) => Ok(r.skew),
                            // Neighbor too far off: fall back to bisection.
                            Err(_) => Ok(binary_search(&problem, axis, &base)?.skew),
                        }
                    }
                    None => Ok(binary_search(&problem, axis, &base)?.skew),
                }
            };
            let setup = solve(SkewAxis::Setup, previous.map(|(s, _)| s))?;
            let hold = solve(SkewAxis::Hold, previous.map(|(_, h)| h))?;
            previous = Some((setup, hold));

            entries.push(TableEntry {
                clock_slew: slew,
                load,
                t_cq: problem.characteristic_delay(),
                setup,
                hold,
                simulations: problem.simulation_count(),
            });
        }
    }

    // Restore row-major order for indexed access.
    entries.sort_by(|a, b| {
        a.clock_slew
            .total_cmp(&b.clock_slew)
            .then(a.load.total_cmp(&b.load))
    });

    Ok(CellTable {
        cell: cell_name.to_string(),
        clock_slews: clock_slews.to_vec(),
        loads: loads.to_vec(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::tspc_register_with;

    fn small_table() -> CellTable {
        let tech = Technology::default_250nm();
        characterize(
            "tspc",
            &tech,
            ClockSpec::fast(),
            tspc_register_with,
            &[0.05e-9, 0.2e-9],
            &[10e-15, 40e-15],
            &TableOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn grid_is_dense_and_physical() {
        let table = small_table();
        assert_eq!(table.entries().len(), 4);
        for e in table.entries() {
            assert!(
                e.t_cq > 10e-12 && e.t_cq < 1e-9,
                "t_CQ {:.1} ps",
                e.t_cq * 1e12
            );
            assert!(e.setup.abs() < 1e-9 && e.hold.abs() < 1e-9);
        }
        // More load ⇒ slower clock-to-Q, at both slews.
        for i in 0..2 {
            let light = table.entry(i, 0).unwrap();
            let heavy = table.entry(i, 1).unwrap();
            assert!(
                heavy.t_cq > light.t_cq,
                "load should slow the cell: {:.1} vs {:.1} ps",
                heavy.t_cq * 1e12,
                light.t_cq * 1e12
            );
        }
    }

    #[test]
    fn warm_start_cheapens_later_entries() {
        let table = small_table();
        let first = table.entries()[0].simulations;
        let later_min = table.entries()[1..]
            .iter()
            .map(|e| e.simulations)
            .min()
            .unwrap();
        assert!(
            later_min < first,
            "warm start never helped: first {first}, later min {later_min}"
        );
    }

    #[test]
    fn liberty_rendering_contains_axes_and_values() {
        let table = small_table();
        let lib = table.to_liberty();
        assert!(lib.contains("index_1"));
        assert!(lib.contains("index_2"));
        assert!(lib.contains("setup_rising"));
        assert!(lib.contains("hold_rising"));
        // Load axis in pF: 0.01 and 0.04.
        assert!(lib.contains("0.0100"));
        assert!(lib.contains("0.0400"));
    }

    #[test]
    fn empty_axes_rejected() {
        let tech = Technology::default_250nm();
        assert!(matches!(
            characterize(
                "x",
                &tech,
                ClockSpec::fast(),
                tspc_register_with,
                &[],
                &[1e-15],
                &TableOptions::default(),
            ),
            Err(CharError::BadOption { .. })
        ));
    }
}
