//! Statistical (Monte Carlo) characterization.
//!
//! The paper's introduction names the second industrial axis besides PVT
//! corners: "statistical process samples". This module draws process
//! samples (threshold-voltage and transconductance variations), rebuilds
//! the cell per sample, and characterizes one interdependent setup/hold
//! point per sample — producing the distribution data a statistical STA
//! flow consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shc_cells::{Register, Technology};
use shc_spice::batch::{BatchPolicy, DEFAULT_LANES};
use shc_spice::waveform::Params;

use crate::mpnr::{self, MpnrOptions};
use crate::parallel::{self, Parallelism};
use crate::seed::{self, SeedOptions};
use crate::{CharacterizationProblem, Result};

/// Process-variation model: independent Gaussian perturbations applied to
/// both device polarities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// Standard deviation of the threshold-voltage shift, in volts.
    pub sigma_vt: f64,
    /// Relative standard deviation of the transconductance `k'`.
    pub sigma_kp_rel: f64,
}

impl Default for ProcessVariation {
    fn default() -> Self {
        ProcessVariation {
            sigma_vt: 0.02,
            sigma_kp_rel: 0.05,
        }
    }
}

impl ProcessVariation {
    /// Draws one perturbed technology card.
    ///
    /// Uses a Box-Muller transform on the generator's uniform output, so
    /// only `rand`'s core API is needed.
    pub fn sample(&self, base: &Technology, rng: &mut impl Rng) -> Technology {
        let mut tech = *base;
        let mut gauss = |sigma: f64| -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        tech.nmos.vt0 = (tech.nmos.vt0 + gauss(self.sigma_vt)).max(0.05);
        tech.pmos.vt0 = (tech.pmos.vt0 + gauss(self.sigma_vt)).max(0.05);
        tech.nmos.kp *= (1.0 + gauss(self.sigma_kp_rel)).max(0.2);
        tech.pmos.kp *= (1.0 + gauss(self.sigma_kp_rel)).max(0.2);
        tech
    }
}

/// One Monte Carlo sample's characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleResult {
    /// Sample index.
    pub index: usize,
    /// Characteristic clock-to-Q delay, seconds.
    /// unit: s
    pub t_cq: f64,
    /// Setup skew of the contour point at the pinned hold skew, seconds.
    /// unit: s
    pub tau_s: f64,
    /// The pinned hold skew, seconds.
    /// unit: s
    pub tau_h: f64,
    /// Simulations consumed by this sample.
    pub simulations: usize,
}

/// Aggregate statistics over the sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloStats {
    /// Number of samples.
    pub samples: usize,
    /// Mean setup skew, seconds.
    pub mean_tau_s: f64,
    /// Standard deviation of the setup skew, seconds.
    pub std_tau_s: f64,
    /// Mean characteristic clock-to-Q, seconds.
    pub mean_t_cq: f64,
    /// Standard deviation of the clock-to-Q, seconds.
    pub std_t_cq: f64,
    /// Total simulations across all samples.
    pub total_simulations: usize,
}

/// Options for a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOptions {
    /// Number of samples to draw.
    pub samples: usize,
    /// RNG seed (runs are reproducible by construction).
    pub rng_seed: u64,
    /// Variation model.
    pub variation: ProcessVariation,
    /// Seeding options (first sample / fallback).
    pub seed: SeedOptions,
    /// MPNR options for warm-started samples.
    pub mpnr: MpnrOptions,
    /// Fan-out policy for samples 1.. (sample 0 always runs first as the
    /// warm-start anchor). Results are independent of the policy: each
    /// sample draws from its own index-derived RNG stream.
    #[serde(skip)]
    pub parallelism: Parallelism,
    /// Batched-engine policy for serial runs: warm-started samples advance
    /// their MPNR solves in lockstep lane groups ([`mpnr::solve_batch`]),
    /// sample for sample identical to the scalar path. Parallel runs keep
    /// the per-thread scalar path.
    #[serde(default)]
    pub batch: BatchPolicy,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            samples: 20,
            rng_seed: 0x5348_4331,
            variation: ProcessVariation::default(),
            seed: SeedOptions::default(),
            mpnr: MpnrOptions::default(),
            parallelism: Parallelism::default(),
            batch: BatchPolicy::default(),
        }
    }
}

/// Decorrelates a per-sample RNG seed from the run seed and sample index
/// (SplitMix64 finalizer over a golden-ratio index stride), so each sample
/// owns an independent, order-free random stream.
fn sample_seed(rng_seed: u64, index: u64) -> u64 {
    let mut z = rng_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characterizes one process sample, optionally warm-starting MPNR from an
/// anchor solution (falling back to cold seeding on MPNR failure).
fn run_sample<F>(
    base: &Technology,
    build: &F,
    opts: &MonteCarloOptions,
    index: usize,
    warm_start: Option<Params>,
) -> Result<SampleResult>
where
    F: Fn(&Technology) -> Register,
{
    let mut rng = StdRng::seed_from_u64(sample_seed(opts.rng_seed, index as u64));
    let tech = opts.variation.sample(base, &mut rng);
    let problem = CharacterizationProblem::builder(build(&tech)).build()?;
    problem.reset_simulation_count();
    let point = match warm_start {
        Some(guess) => match mpnr::solve(&problem, guess, &opts.mpnr) {
            Ok(p) => p,
            Err(_) => seed::find_first_point(&problem, &opts.seed)?,
        },
        None => seed::find_first_point(&problem, &opts.seed)?,
    };
    Ok(SampleResult {
        index,
        t_cq: problem.characteristic_delay(),
        tau_s: point.params.tau_s,
        tau_h: point.params.tau_h,
        simulations: problem.simulation_count(),
    })
}

/// Builds the perturbed problem for one sample index (the sample's own
/// RNG stream makes this independent of evaluation order).
fn build_sample_problem<F>(
    base: &Technology,
    build: &F,
    opts: &MonteCarloOptions,
    index: usize,
) -> Result<CharacterizationProblem>
where
    F: Fn(&Technology) -> Register,
{
    let mut rng = StdRng::seed_from_u64(sample_seed(opts.rng_seed, index as u64));
    let tech = opts.variation.sample(base, &mut rng);
    let problem = CharacterizationProblem::builder(build(&tech))
        .batch(opts.batch)
        .build()?;
    problem.reset_simulation_count();
    Ok(problem)
}

/// The warm-started samples 1.., advanced in lockstep lane groups: each
/// group's MPNR solves share one batched transient per iteration, and a
/// lane whose warm start fails falls back to cold seeding — exactly the
/// scalar [`run_sample`] policy, sample for sample.
fn run_samples_lockstep<F>(
    base: &Technology,
    build: &F,
    opts: &MonteCarloOptions,
    anchor: Params,
) -> Result<Vec<SampleResult>>
where
    F: Fn(&Technology) -> Register,
{
    let mut results = Vec::with_capacity(opts.samples - 1);
    let indices: Vec<usize> = (1..opts.samples).collect();
    for group in indices.chunks(DEFAULT_LANES) {
        let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
        let problems: Vec<CharacterizationProblem> = group
            .iter()
            .map(|&index| build_sample_problem(base, build, opts, index))
            .collect::<Result<_>>()?;
        let refs: Vec<&CharacterizationProblem> = problems.iter().collect();
        let warm = mpnr::solve_batch(&refs, &vec![anchor; refs.len()], &opts.mpnr, opts.batch);
        for ((&index, problem), solved) in group.iter().zip(&problems).zip(warm) {
            let point = match solved {
                Ok(p) => p,
                Err(_) => seed::find_first_point(problem, &opts.seed)?,
            };
            results.push(SampleResult {
                index,
                t_cq: problem.characteristic_delay(),
                tau_s: point.params.tau_s,
                tau_h: point.params.tau_h,
                simulations: problem.simulation_count(),
            });
        }
    }
    Ok(results)
}

/// Runs a Monte Carlo characterization: for each process sample, finds the
/// interdependent setup/hold point at the seed's pinned hold skew.
///
/// Sample 0 is always solved first, from a cold seed; it anchors the MPNR
/// warm start for every later sample. Each sample draws its technology from
/// an RNG derived from `(rng_seed, index)`, so samples are independent of
/// execution order: a parallel run (`opts.parallelism`) is identical,
/// sample for sample, to a serial run with the same seed.
///
/// `build` constructs the register for a sampled technology (e.g.
/// `|tech| tspc_register_with(tech, clock)`); it must be `Sync` so samples
/// can fan out across threads.
///
/// # Errors
///
/// Propagates the anchor sample's failures; later samples fall back to
/// cold seeding before giving up.
pub fn run<F>(
    base: &Technology,
    build: F,
    opts: &MonteCarloOptions,
) -> Result<(Vec<SampleResult>, MonteCarloStats)>
where
    F: Fn(&Technology) -> Register + Sync,
{
    let _span = shc_obs::span(shc_obs::SpanKind::MonteCarlo);
    let mut results: Vec<SampleResult> = Vec::with_capacity(opts.samples);
    if opts.samples > 0 {
        let anchor = run_sample(base, &build, opts, 0, None)?;
        let anchor_params = Params::new(anchor.tau_s, anchor.tau_h);
        results.push(anchor);
        // Batched lockstep reorders problem building against solving, which
        // would perturb fault-injection draw order; under an active injector
        // the Auto policy stays on the scalar path.
        let try_lockstep = match opts.batch {
            BatchPolicy::Scalar => false,
            BatchPolicy::Auto => !shc_fault::enabled(),
            BatchPolicy::Batched => true,
        };
        if opts.parallelism.is_serial() && try_lockstep {
            results.extend(run_samples_lockstep(base, &build, opts, anchor_params)?);
        } else {
            results.extend(parallel::run_indexed(
                opts.parallelism,
                opts.samples - 1,
                |k| {
                    let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
                    run_sample(base, &build, opts, k + 1, Some(anchor_params))
                },
            )?);
        }
    }

    let n = results.len().max(1) as f64;
    let mean_tau_s = results.iter().map(|r| r.tau_s).sum::<f64>() / n;
    let mean_t_cq = results.iter().map(|r| r.t_cq).sum::<f64>() / n;
    let var_tau_s = results
        .iter()
        .map(|r| (r.tau_s - mean_tau_s).powi(2))
        .sum::<f64>()
        / n;
    let var_t_cq = results
        .iter()
        .map(|r| (r.t_cq - mean_t_cq).powi(2))
        .sum::<f64>()
        / n;
    let stats = MonteCarloStats {
        samples: results.len(),
        mean_tau_s,
        std_tau_s: var_tau_s.sqrt(),
        mean_t_cq,
        std_t_cq: var_t_cq.sqrt(),
        total_simulations: results.iter().map(|r| r.simulations).sum(),
    };
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_cells::{tspc_register_with, ClockSpec};

    fn small_run(samples: usize, seed: u64) -> (Vec<SampleResult>, MonteCarloStats) {
        let base = Technology::default_250nm();
        let opts = MonteCarloOptions {
            samples,
            rng_seed: seed,
            ..MonteCarloOptions::default()
        };
        run(
            &base,
            |tech| tspc_register_with(tech, ClockSpec::fast()),
            &opts,
        )
        .expect("monte carlo runs")
    }

    #[test]
    fn produces_requested_samples_with_spread() {
        let (results, stats) = small_run(6, 1);
        assert_eq!(results.len(), 6);
        assert_eq!(stats.samples, 6);
        // Process variation must actually move the numbers.
        assert!(
            stats.std_tau_s > 0.2e-12,
            "σ(τs) = {:.2} ps",
            stats.std_tau_s * 1e12
        );
        assert!(stats.std_t_cq > 0.2e-12);
        for r in &results {
            assert!(r.t_cq > 10e-12 && r.t_cq < 1e-9);
        }
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let (a, _) = small_run(4, 42);
        let (b, _) = small_run(4, 42);
        assert_eq!(a, b);
        let (c, _) = small_run(4, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn parallel_run_matches_serial_sample_for_sample() {
        let base = Technology::default_250nm();
        let build = |tech: &Technology| tspc_register_with(tech, ClockSpec::fast());
        let serial_opts = MonteCarloOptions {
            samples: 5,
            rng_seed: 42,
            ..MonteCarloOptions::default()
        };
        let parallel_opts = MonteCarloOptions {
            parallelism: Parallelism::Threads(4),
            ..serial_opts
        };
        let (serial, serial_stats) = run(&base, build, &serial_opts).expect("serial runs");
        let (parallel, parallel_stats) = run(&base, build, &parallel_opts).expect("parallel runs");
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
    }

    #[test]
    fn batched_serial_run_matches_scalar_sample_for_sample() {
        let base = Technology::default_250nm();
        let build = |tech: &Technology| tspc_register_with(tech, ClockSpec::fast());
        let scalar_opts = MonteCarloOptions {
            samples: 5,
            rng_seed: 42,
            batch: BatchPolicy::Scalar,
            ..MonteCarloOptions::default()
        };
        let batched_opts = MonteCarloOptions {
            batch: BatchPolicy::Batched,
            ..scalar_opts
        };
        let (scalar, scalar_stats) = run(&base, build, &scalar_opts).expect("scalar runs");
        let (batched, batched_stats) = run(&base, build, &batched_opts).expect("batched runs");
        assert_eq!(scalar, batched);
        assert_eq!(scalar_stats, batched_stats);
    }

    #[test]
    fn warm_start_reduces_later_sample_cost() {
        let (results, _) = small_run(5, 7);
        let cold = results[0].simulations;
        let cheapest_later = results[1..].iter().map(|r| r.simulations).min().unwrap();
        assert!(
            cheapest_later < cold,
            "warm start never helped: cold {cold}, later min {cheapest_later}"
        );
    }

    #[test]
    fn variation_sampling_respects_floors() {
        let mut rng = StdRng::seed_from_u64(9);
        let extreme = ProcessVariation {
            sigma_vt: 1.0,
            sigma_kp_rel: 2.0,
        };
        let base = Technology::default_250nm();
        for _ in 0..50 {
            let t = extreme.sample(&base, &mut rng);
            assert!(t.nmos.vt0 >= 0.05);
            assert!(t.pmos.vt0 >= 0.05);
            assert!(t.nmos.kp > 0.0);
            assert!(t.pmos.kp > 0.0);
        }
    }
}
