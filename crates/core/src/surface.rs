//! Brute-force output-surface generation and contour extraction — the
//! prior-art baseline the paper compares against (its Figs. 1, 9, 10, 12b).
//!
//! The register output at `t_f` is sampled on an n×n grid of (τs, τh)
//! skews (n² transient simulations); the constant clock-to-Q contour is
//! then extracted by intersecting the surface with the plane at level `r`
//! using marching-squares-style linear interpolation — exactly the
//! post-processing the paper describes, including its accuracy limitation
//! (interpolated points, versus MPNR-refined ones).

use serde::{Deserialize, Serialize};
use shc_spice::waveform::Params;

use crate::parallel::{self, Parallelism};
use crate::{CharError, CharacterizationProblem, Result};

/// Grid specification for surface generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceOptions {
    /// Setup-skew range `[min, max]`, in seconds.
    pub tau_s_range: (f64, f64),
    /// Hold-skew range `[min, max]`, in seconds.
    pub tau_h_range: (f64, f64),
    /// Grid points per axis (the paper uses 40×40).
    pub n: usize,
    /// Fan-out policy for the n² independent cell simulations. Serial by
    /// default; parallel runs produce bitwise-identical surfaces (each
    /// cell is an independent transient, merged in grid order).
    #[serde(skip)]
    pub parallelism: Parallelism,
}

impl SurfaceOptions {
    /// A grid centered on a traced contour, padded by 20% on each side —
    /// convenient for the overlay comparison of the paper's Fig. 10.
    pub fn around_contour(contour: &crate::Contour, n: usize) -> Self {
        let (mut s_min, mut s_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut h_min, mut h_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in contour.points() {
            s_min = s_min.min(p.tau_s);
            s_max = s_max.max(p.tau_s);
            h_min = h_min.min(p.tau_h);
            h_max = h_max.max(p.tau_h);
        }
        let pad_s = 0.2 * (s_max - s_min).max(10e-12);
        let pad_h = 0.2 * (h_max - h_min).max(10e-12);
        SurfaceOptions {
            tau_s_range: (s_min - pad_s, s_max + pad_s),
            tau_h_range: (h_min - pad_h, h_max + pad_h),
            n,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the fan-out policy (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// A sampled output surface `Q(t_f)` over the skew grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputSurface {
    tau_s: Vec<f64>,
    tau_h: Vec<f64>,
    /// `values[i][j]` = output at `(tau_s[i], tau_h[j])`.
    values: Vec<Vec<f64>>,
    simulations: usize,
}

impl OutputSurface {
    /// Setup-skew grid.
    pub fn tau_s_grid(&self) -> &[f64] {
        &self.tau_s
    }

    /// Hold-skew grid.
    pub fn tau_h_grid(&self) -> &[f64] {
        &self.tau_h
    }

    /// Sampled output values, indexed `[setup][hold]`.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Number of transient simulations used (n²).
    pub fn simulations(&self) -> usize {
        self.simulations
    }

    /// Extracts the level-`r` contour by marching-squares edge
    /// interpolation, returning (τs, τh) points sorted by τs.
    pub fn contour_at(&self, r: f64) -> SurfaceContour {
        let mut points = Vec::new();
        let n_s = self.tau_s.len();
        let n_h = self.tau_h.len();
        // Grid nodes lying exactly on the level (rare with real data, common
        // with synthetic surfaces) are contour points themselves; the edge
        // scans below use strict sign changes so these are not duplicated.
        for i in 0..n_s {
            for j in 0..n_h {
                if self.values[i][j] == r {
                    points.push((self.tau_s[i], self.tau_h[j]));
                }
            }
        }
        // Horizontal edges: fixed τs row, crossing between adjacent τh.
        for i in 0..n_s {
            for j in 0..n_h.saturating_sub(1) {
                let (v0, v1) = (self.values[i][j], self.values[i][j + 1]);
                if (v0 - r) * (v1 - r) < 0.0 {
                    let frac = (r - v0) / (v1 - v0);
                    let tau_h = self.tau_h[j] + frac * (self.tau_h[j + 1] - self.tau_h[j]);
                    points.push((self.tau_s[i], tau_h));
                }
            }
        }
        // Vertical edges: fixed τh column, crossing between adjacent τs.
        for j in 0..n_h {
            for i in 0..n_s.saturating_sub(1) {
                let (v0, v1) = (self.values[i][j], self.values[i + 1][j]);
                if (v0 - r) * (v1 - r) < 0.0 {
                    let frac = (r - v0) / (v1 - v0);
                    let tau_s = self.tau_s[i] + frac * (self.tau_s[i + 1] - self.tau_s[i]);
                    points.push((tau_s, self.tau_h[j]));
                }
            }
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        SurfaceContour { points }
    }
}

/// A contour extracted from an [`OutputSurface`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceContour {
    pub(crate) points: Vec<(f64, f64)>,
}

impl SurfaceContour {
    /// The (τs, τh) points, sorted by τs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Interpolates the contour's hold skew at a setup skew within range.
    ///
    /// Queries an ulp or two outside the stored τs range — the common case
    /// when the query point was computed through a different floating-point
    /// path, e.g. a traced contour endpoint — are snapped to the nearest
    /// endpoint instead of rejected; anything farther out returns `None`.
    /// Degenerate contours still answer where they can: a single-segment
    /// (two-point) contour interpolates normally, and a single-point
    /// contour answers exactly at (within snap tolerance of) its own τs.
    pub fn hold_at_setup(&self, tau_s: f64) -> Option<f64> {
        if self.points.is_empty() || !tau_s.is_finite() {
            return None;
        }
        let s_first = self.points[0].0;
        let s_last = self.points[self.points.len() - 1].0;
        // Relative snap tolerance: picoseconds-scale skews make any
        // absolute epsilon meaningless.
        let scale = (s_last - s_first)
            .abs()
            .max(s_first.abs().max(s_last.abs()));
        let tol = 1e-9 * scale;
        if tau_s < s_first - tol || tau_s > s_last + tol {
            return None;
        }
        let t = tau_s.clamp(s_first, s_last);
        if self.points.len() == 1 {
            return Some(self.points[0].1);
        }
        for w in self.points.windows(2) {
            let ((s0, h0), (s1, h1)) = (w[0], w[1]);
            if t >= s0 && t <= s1 {
                if s1 == s0 {
                    return Some(0.5 * (h0 + h1));
                }
                return Some(h0 + (h1 - h0) * (t - s0) / (s1 - s0));
            }
        }
        None
    }

    /// Maximum over traced points of the distance to the *nearest* surface
    /// contour point — the quantitative version of the paper's Fig. 10
    /// overlay check.
    ///
    /// A nearest-point metric is used (rather than τh-at-τs interpolation)
    /// because the contour may double back in τs: real cells can be locally
    /// non-monotone near t_f.
    ///
    /// Returns `None` if either contour is empty.
    pub fn max_deviation_from(&self, contour: &crate::Contour) -> Option<f64> {
        if self.points.is_empty() || contour.points().is_empty() {
            return None;
        }
        let mut max_dev = 0.0_f64;
        for p in contour.points() {
            let nearest = self
                .points
                .iter()
                .map(|&(s, h)| ((s - p.tau_s).powi(2) + (h - p.tau_h).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            max_dev = max_dev.max(nearest);
        }
        Some(max_dev)
    }
}

/// Generates the output surface with n² transient simulations.
///
/// The grid cells are independent transients, so they are fanned out
/// according to `opts.parallelism`; rows are merged back in grid order,
/// making the parallel surface bitwise identical to the serial one.
///
/// # Errors
///
/// - [`CharError::BadOption`] for degenerate grids;
/// - propagated simulation failures.
pub fn generate(problem: &CharacterizationProblem, opts: &SurfaceOptions) -> Result<OutputSurface> {
    let _span = shc_obs::span(shc_obs::SpanKind::Surface);
    if opts.n < 2 {
        return Err(CharError::BadOption {
            reason: "surface grid needs at least 2 points per axis",
        });
    }
    let (s0, s1) = opts.tau_s_range;
    let (h0, h1) = opts.tau_h_range;
    // NaN bounds must fail too, so the comparisons accept, not reject.
    let s_ok = s1 > s0;
    let h_ok = h1 > h0;
    if !s_ok || !h_ok {
        return Err(CharError::BadOption {
            reason: "surface ranges must be nonempty",
        });
    }
    let sims_before = problem.simulation_count();
    let lin = |a: f64, b: f64, k: usize| a + (b - a) * k as f64 / (opts.n - 1) as f64;
    let tau_s: Vec<f64> = (0..opts.n).map(|k| lin(s0, s1, k)).collect();
    let tau_h: Vec<f64> = (0..opts.n).map(|k| lin(h0, h1, k)).collect();
    let values = if opts.parallelism.is_serial() {
        // Serial sweeps route through the lockstep batched engine (per the
        // problem's `BatchPolicy`; `evaluate_batch` falls back to a scalar
        // loop outside its envelope): the row-major grid is cut into
        // lane-group chunks, each advancing in one SoA batch. Lane results
        // are bitwise identical to scalar evaluations, so this produces
        // the very same surface, faster.
        let cells: Vec<Params> = tau_s
            .iter()
            .flat_map(|&s| tau_h.iter().map(move |&h| Params::new(s, h)))
            .collect();
        let mut flat = Vec::with_capacity(cells.len());
        for chunk in cells.chunks(shc_spice::batch::DEFAULT_LANES) {
            // One sweep frame per lane-group chunk.
            let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
            for hval in problem.evaluate_batch(chunk)? {
                flat.push(hval + problem.r()); // store the raw output level
            }
        }
        flat.chunks(opts.n).map(<[f64]>::to_vec).collect()
    } else {
        // One job per grid row: big enough to amortize scheduling, small
        // enough to balance n >> threads rows across workers.
        parallel::run_indexed(opts.parallelism, opts.n, |i| {
            // One sweep frame per grid-row job, on whichever thread runs it.
            let _frame = shc_prof::enter(shc_prof::Phase::Sweep);
            let s = tau_s[i];
            let mut row = Vec::with_capacity(opts.n);
            for &h in &tau_h {
                let hval = problem.evaluate(&Params::new(s, h))?;
                row.push(hval + problem.r()); // store the raw output level
            }
            Ok::<Vec<f64>, CharError>(row)
        })?
    };
    Ok(OutputSurface {
        tau_s,
        tau_h,
        values,
        simulations: problem.simulation_count() - sims_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_surface() -> OutputSurface {
        // Output = τs + τh on a unit grid: the level-1.0 contour is the
        // anti-diagonal τh = 1 − τs.
        let grid: Vec<f64> = (0..11).map(|k| k as f64 / 10.0).collect();
        let values: Vec<Vec<f64>> = grid
            .iter()
            .map(|s| grid.iter().map(|h| s + h).collect())
            .collect();
        OutputSurface {
            tau_s: grid.clone(),
            tau_h: grid,
            values,
            simulations: 121,
        }
    }

    #[test]
    fn contour_extraction_recovers_antidiagonal() {
        let surface = synthetic_surface();
        let contour = surface.contour_at(1.0);
        assert!(contour.points().len() >= 9);
        for &(s, h) in contour.points() {
            assert!(
                (s + h - 1.0).abs() < 1e-12,
                "point ({s}, {h}) off the τs + τh = 1 line"
            );
        }
        // Interpolation along the contour.
        let h = contour.hold_at_setup(0.25).unwrap();
        assert!((h - 0.75).abs() < 1e-12);
        assert!(contour.hold_at_setup(-0.5).is_none());
    }

    #[test]
    fn deviation_against_exact_contour_is_zero() {
        let surface = synthetic_surface();
        let sc = surface.contour_at(1.0);
        let exact = crate::Contour {
            points: vec![
                crate::ContourPoint {
                    tau_s: 0.3,
                    tau_h: 0.7,
                    corrector_iterations: 2,
                    residual: 0.0,
                },
                crate::ContourPoint {
                    tau_s: 0.6,
                    tau_h: 0.4,
                    corrector_iterations: 2,
                    residual: 0.0,
                },
            ],
            simulations: 6,
            total_corrector_iterations: 4,
        };
        let dev = sc.max_deviation_from(&exact).unwrap();
        assert!(dev < 1e-12, "deviation {dev}");
    }

    #[test]
    fn parallel_surface_is_bitwise_identical_to_serial() {
        use shc_cells::{tspc_register_with, ClockSpec, Technology};

        let tech = Technology::default_250nm();
        let problem =
            CharacterizationProblem::builder(tspc_register_with(&tech, ClockSpec::fast()))
                .build()
                .unwrap();
        let r = problem.reference_params();
        let opts = SurfaceOptions {
            tau_s_range: (r.tau_s - 50e-12, r.tau_s),
            tau_h_range: (r.tau_h - 50e-12, r.tau_h),
            n: 4,
            parallelism: Parallelism::Serial,
        };
        let serial = generate(&problem, &opts).unwrap();
        let fanned = generate(&problem, &opts.with_parallelism(Parallelism::Threads(4))).unwrap();
        assert_eq!(
            serial.values(),
            fanned.values(),
            "surfaces must match bitwise"
        );
        assert_eq!(serial.tau_s_grid(), fanned.tau_s_grid());
        assert_eq!(serial.tau_h_grid(), fanned.tau_h_grid());
        assert_eq!(serial.simulations(), 16);
        assert_eq!(fanned.simulations(), 16);
    }

    #[test]
    fn hold_at_setup_snaps_endpoint_queries_within_tolerance() {
        let contour = synthetic_surface().contour_at(1.0);
        let s_last = contour.points().last().unwrap().0;
        // An endpoint computed through another floating-point path may sit
        // a few ulps outside the stored range: answer, don't reject.
        let h = contour.hold_at_setup(s_last + 1e-11).unwrap();
        assert!((h - contour.points().last().unwrap().1).abs() < 1e-12);
        let s_first = contour.points()[0].0;
        assert!(contour.hold_at_setup(s_first - 1e-11).is_some());
        // Clearly outside stays rejected.
        assert!(contour.hold_at_setup(s_last + 0.1).is_none());
        assert!(contour.hold_at_setup(s_first - 0.1).is_none());
        assert!(contour.hold_at_setup(f64::NAN).is_none());
    }

    #[test]
    fn hold_at_setup_single_segment_contour() {
        let contour = SurfaceContour {
            points: vec![(0.2, 0.8), (0.6, 0.4)],
        };
        assert!((contour.hold_at_setup(0.4).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(contour.hold_at_setup(0.2), Some(0.8));
        assert_eq!(contour.hold_at_setup(0.6), Some(0.4));
        assert!(contour.hold_at_setup(0.0).is_none());
        assert!(contour.hold_at_setup(1.0).is_none());
    }

    #[test]
    fn hold_at_setup_single_point_contour() {
        let contour = SurfaceContour {
            points: vec![(0.3, 0.7)],
        };
        assert_eq!(contour.hold_at_setup(0.3), Some(0.7));
        // Within snap tolerance of the lone point.
        assert_eq!(contour.hold_at_setup(0.3 + 1e-11), Some(0.7));
        assert!(contour.hold_at_setup(0.4).is_none());
        let empty = SurfaceContour { points: Vec::new() };
        assert!(empty.hold_at_setup(0.3).is_none());
    }

    #[test]
    fn flat_surface_has_no_contour() {
        let grid: Vec<f64> = (0..5).map(|k| k as f64).collect();
        let values = vec![vec![2.0; 5]; 5];
        let surface = OutputSurface {
            tau_s: grid.clone(),
            tau_h: grid,
            values,
            simulations: 25,
        };
        assert!(surface.contour_at(1.0).points().is_empty());
        assert!(surface.contour_at(1.0).hold_at_setup(2.0).is_none());
    }
}
