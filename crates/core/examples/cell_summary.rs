//! One-line characterization summary (t_CQ, setup, hold) for every cell in
//! the library — a quick smoke report over the whole flow.
//!
//! Run with: `cargo run -p shc-core --release --example cell_summary`

use shc_cells::{
    c2mos_register_with, pulsed_latch_with, saff_register_with, tg_register_with,
    tspc_register_with, ClockSpec, Technology, C2MOS_CLKB_SKEW,
};
use shc_core::independent::{binary_search, IndependentOptions, SkewAxis};
use shc_core::CharacterizationProblem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default_250nm();
    let clock = ClockSpec::fast();
    println!(
        "{:<8} {:>10} {:>11} {:>10}",
        "cell", "t_CQ(ps)", "setup(ps)", "hold(ps)"
    );
    for reg in [
        tspc_register_with(&tech, clock),
        c2mos_register_with(&tech, clock, C2MOS_CLKB_SKEW),
        tg_register_with(&tech, clock),
        saff_register_with(&tech, clock),
        pulsed_latch_with(&tech, clock),
    ] {
        let name = reg.name();
        let problem = CharacterizationProblem::builder(reg).build()?;
        let opts = IndependentOptions {
            tol: 0.5e-12,
            ..IndependentOptions::default()
        };
        let setup = binary_search(&problem, SkewAxis::Setup, &opts)?;
        let hold = binary_search(&problem, SkewAxis::Hold, &opts)?;
        println!(
            "{:<8} {:>10.1} {:>11.1} {:>10.1}",
            name,
            problem.characteristic_delay() * 1e12,
            setup.skew * 1e12,
            hold.skew * 1e12
        );
    }
    Ok(())
}
