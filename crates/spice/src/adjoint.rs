//! Discrete adjoint (backward) sensitivity analysis.
//!
//! The paper propagates *forward* sensitivities — one extra linear solve
//! per step per parameter (its eqs. (9)–(13)), which is ideal for the 1×2
//! setup/hold Jacobian. The adjoint method is the classic alternative: one
//! *backward* sweep yields the derivative of a single scalar output with
//! respect to **any number** of parameters, at a cost independent of the
//! parameter count. It becomes attractive when the characterization is
//! extended to many knobs (per-transistor process parameters, multiple
//! data pins), and it provides a strong independent cross-check of the
//! forward recursion — the two derivations share no code path.
//!
//! For the Backward-Euler discretization the step residuals are
//! `F_i(x_i, x_{i−1}) = q(x_i) − q(x_{i−1}) + Δt_i·f(x_i, t_i) = 0`, and
//! the output is `h = cᵀ x_N`. The discrete adjoint recursion is
//!
//! ```text
//! (C_N + Δt_N·G_N)ᵀ λ_N = c
//! (C_i + Δt_i·G_i)ᵀ λ_i = C_iᵀ λ_{i+1}            (i = N−1 … 1)
//! dh/dp = − Σ_i Δt_i · λ_iᵀ (∂f/∂p)(t_i)
//! ```
//!
//! where `C_i`, `G_i` are evaluated at the converged states of the forward
//! run (which must be recorded with [`RecordMode::Full`]).

use shc_linalg::Vector;

use crate::circuit::Circuit;
use crate::transient::TransientResult;
use crate::waveform::{Param, Params};
use crate::{Result, SpiceError};

/// Adjoint sensitivities of one scalar output `cᵀx(t_N)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjointResult {
    /// `(parameter, dh/dp)` pairs in request order.
    pub gradients: Vec<(Param, f64)>,
    /// Number of transposed linear solves performed (= accepted steps).
    pub solves: usize,
}

impl AdjointResult {
    /// The gradient for one parameter, if it was requested.
    pub fn gradient(&self, param: Param) -> Option<f64> {
        self.gradients
            .iter()
            .find(|(p, _)| *p == param)
            .map(|(_, g)| *g)
    }
}

/// Runs the discrete adjoint sweep over a completed Backward-Euler
/// transient, computing `d(cᵀx(t_N))/dp` for every requested parameter.
///
/// `result` must come from a fixed- or variable-step **Backward Euler**
/// run recorded with [`crate::transient::RecordMode::Full`] — the sweep
/// re-stamps the circuit at each recorded state.
///
/// # Errors
///
/// - [`SpiceError::BadCircuit`] if the result carries no full state
///   history or `output` is out of range;
/// - propagated linear-solver failures.
pub fn backward_sensitivities(
    circuit: &Circuit,
    result: &TransientResult,
    params_at: &Params,
    output: usize,
    params: &[Param],
) -> Result<AdjointResult> {
    let states = result.states();
    let times = result.times();
    let n = circuit.unknown_count();
    if states.len() != times.len() || states.len() < 2 {
        return Err(SpiceError::BadCircuit {
            reason: "adjoint needs a RecordMode::Full transient with at least one step".to_string(),
        });
    }
    if output >= n {
        return Err(SpiceError::BadCircuit {
            reason: format!("output unknown {output} out of range ({n} unknowns)"),
        });
    }

    let steps = states.len() - 1;
    let mut gradients: Vec<f64> = vec![0.0; params.len()];
    // λ_{i+1} from the previous (later) step; seeded by c at the last step.
    let mut lambda_next: Option<Vector> = None;
    let mut solves = 0;

    for i in (1..=steps).rev() {
        let t_i = times[i];
        let dt = t_i - times[i - 1];
        let stamps = circuit.assemble(&states[i], t_i, params_at, 1.0);
        let mut jac = stamps.c.clone();
        jac.axpy(dt, &stamps.g).map_err(SpiceError::from)?;
        let lu = jac.lu()?;

        let rhs = match &lambda_next {
            None => Vector::unit(n, output),
            Some(lam) => stamps.c.mul_vec_transposed(lam),
        };
        let lambda = lu.solve_transposed(&rhs)?;
        solves += 1;

        for (k, &param) in params.iter().enumerate() {
            let dfdp = circuit.assemble_dfdp(t_i, params_at, param);
            gradients[k] -= dt * lambda.dot(&dfdp);
        }
        lambda_next = Some(lambda);
    }

    Ok(AdjointResult {
        gradients: params.iter().copied().zip(gradients).collect(),
        solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::transient::{Integrator, RecordMode, TransientAnalysis, TransientOptions};
    use crate::waveform::{DataPulse, RampShape, Waveform};
    use crate::Circuit;

    fn data_driven_rc() -> (Circuit, usize) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        let pulse = DataPulse {
            v_rest: 0.0,
            v_active: 1.0,
            t_edge: 5e-7,
            rise: 1e-7,
            fall: 1e-7,
            shape: RampShape::Smoothstep,
        };
        c.add(VoltageSource::new(
            "Vd",
            vin,
            Circuit::GROUND,
            Waveform::Data(pulse),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-10));
        let out = c.unknown_of(vout).unwrap();
        (c, out)
    }

    #[test]
    fn adjoint_matches_forward_sensitivities() {
        let (c, out) = data_driven_rc();
        let opts = TransientOptions::builder(8e-7)
            .dt(1e-9)
            .integrator(Integrator::BackwardEuler)
            .sensitivities(&Param::ALL)
            .record(RecordMode::Full)
            .build();
        let params = Params::new(1e-7, 1e-7);
        let res = TransientAnalysis::new(&c, opts).run(&params).unwrap();

        let adj = backward_sensitivities(&c, &res, &params, out, &Param::ALL).unwrap();
        for p in Param::ALL {
            let fwd = res.final_sensitivity(p).unwrap()[out];
            let bwd = adj.gradient(p).unwrap();
            assert!(
                (fwd - bwd).abs() <= 1e-6 * fwd.abs().max(1e3),
                "{p:?}: forward {fwd:.8e} vs adjoint {bwd:.8e}"
            );
        }
        assert_eq!(adj.solves, res.times().len() - 1);
    }

    #[test]
    fn adjoint_matches_finite_differences() {
        let (c, out) = data_driven_rc();
        let make_opts = |record| {
            TransientOptions::builder(8e-7)
                .dt(1e-9)
                .record(record)
                .build()
        };
        let base = Params::new(1e-7, 1e-7);
        let res = TransientAnalysis::new(&c, make_opts(RecordMode::Full))
            .run(&base)
            .unwrap();
        let adj = backward_sensitivities(&c, &res, &base, out, &Param::ALL).unwrap();

        let h = 1e-12;
        for p in Param::ALL {
            let plus = TransientAnalysis::new(&c, make_opts(RecordMode::FinalOnly))
                .run(&base.with(p, base.get(p) + h))
                .unwrap()
                .final_state()[out];
            let minus = TransientAnalysis::new(&c, make_opts(RecordMode::FinalOnly))
                .run(&base.with(p, base.get(p) - h))
                .unwrap()
                .final_state()[out];
            let fd = (plus - minus) / (2.0 * h);
            let bwd = adj.gradient(p).unwrap();
            assert!(
                (bwd - fd).abs() <= 2e-3 * fd.abs().max(1e3),
                "{p:?}: adjoint {bwd:.6e} vs fd {fd:.6e}"
            );
        }
    }

    #[test]
    fn adjoint_requires_full_history() {
        let (c, out) = data_driven_rc();
        let opts = TransientOptions::builder(8e-7)
            .dt(1e-9)
            .record(RecordMode::FinalOnly)
            .build();
        let params = Params::default();
        let res = TransientAnalysis::new(&c, opts).run(&params).unwrap();
        let err = backward_sensitivities(&c, &res, &params, out, &Param::ALL).unwrap_err();
        assert!(matches!(err, SpiceError::BadCircuit { .. }));
    }

    #[test]
    fn adjoint_checks_output_bounds() {
        let (c, _) = data_driven_rc();
        let opts = TransientOptions::builder(1e-7)
            .dt(1e-9)
            .record(RecordMode::Full)
            .build();
        let params = Params::default();
        let res = TransientAnalysis::new(&c, opts).run(&params).unwrap();
        let err = backward_sensitivities(&c, &res, &params, 99, &Param::ALL).unwrap_err();
        assert!(matches!(err, SpiceError::BadCircuit { .. }));
    }

    /// Ignore the initial condition subtlety: for a parameter-independent
    /// x0 (our case), no extra boundary term is needed; verify by the
    /// equality with the forward method on a *nonuniform* grid (clamped
    /// final step).
    #[test]
    fn adjoint_handles_clamped_final_step() {
        let (c, out) = data_driven_rc();
        // tstop not a multiple of dt: last step is shorter.
        let opts = TransientOptions::builder(7.75e-7)
            .dt(1e-9)
            .sensitivities(&Param::ALL)
            .record(RecordMode::Full)
            .build();
        let params = Params::new(1.2e-7, 0.8e-7);
        let res = TransientAnalysis::new(&c, opts).run(&params).unwrap();
        let adj = backward_sensitivities(&c, &res, &params, out, &Param::ALL).unwrap();
        for p in Param::ALL {
            let fwd = res.final_sensitivity(p).unwrap()[out];
            let bwd = adj.gradient(p).unwrap();
            assert!(
                (fwd - bwd).abs() <= 1e-6 * fwd.abs().max(1e3),
                "{p:?}: forward {fwd:.8e} vs adjoint {bwd:.8e}"
            );
        }
    }
}
