//! Sparse-vs-dense linear-solver dispatch for the Newton loops.
//!
//! The seed cells of this project have a few dozen unknowns, where the
//! dense [`shc_linalg::LuFactor`] path is unbeatable and — crucially for
//! the golden-contour gates — bitwise reproducible. Larger circuits
//! (e.g. the register-bank cell) cross into the regime where dense
//! `O(n³)` factorization dominates the transient runtime; there the
//! KLU-style [`SparseLu`] path wins by an order of magnitude while
//! agreeing with the dense solve to solver tolerance.
//!
//! [`SolverChoice`] selects the backend (the default `Auto` dispatches on
//! the unknown count), and [`SparseJacSolver`] packages the machinery the
//! sparse path needs: the probed Jacobian sparsity pattern, a CSR
//! template whose values are gathered from the densely assembled
//! Jacobian, and the `SparseLu` factors that are refactored in place —
//! allocation-free — on every Newton iteration after the first.

use shc_linalg::{CsrMatrix, LinalgError, Matrix, SparseLu, Vector};

use crate::circuit::Circuit;
use crate::stamp::Stamps;
use crate::waveform::Params;

/// Unknown-count threshold at which [`SolverChoice::Auto`] switches from
/// the dense to the sparse path.
///
/// MNA circuit matrices at this size are already very sparse (a handful
/// of entries per row), and the `O(n³)` dense factorization overtakes the
/// sparse solve's bookkeeping well below 64 unknowns; the threshold is
/// kept above the crossover so every seed cell stays on the dense path
/// and keeps producing bitwise-identical contours.
pub const SPARSE_DISPATCH_MIN_UNKNOWNS: usize = 64;

/// Which linear solver backs the Newton iterations of the transient and
/// DC analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Per-circuit dispatch: sparse from
    /// [`SPARSE_DISPATCH_MIN_UNKNOWNS`] unknowns, dense below.
    #[default]
    Auto,
    /// Always the dense [`shc_linalg::LuFactor`] path.
    Dense,
    /// Always the sparse-direct [`SparseLu`] path.
    Sparse,
}

impl SolverChoice {
    /// Whether a circuit with `n` unknowns should use the sparse path.
    #[must_use]
    pub fn wants_sparse(self, n: usize) -> bool {
        match self {
            SolverChoice::Auto => n >= SPARSE_DISPATCH_MIN_UNKNOWNS,
            SolverChoice::Dense => false,
            SolverChoice::Sparse => true,
        }
    }

    /// Stable lowercase name (CLI value / JSON output).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SolverChoice::Auto => "auto",
            SolverChoice::Dense => "dense",
            SolverChoice::Sparse => "sparse",
        }
    }
}

impl std::fmt::Display for SolverChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SolverChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(SolverChoice::Auto),
            "dense" => Ok(SolverChoice::Dense),
            "sparse" => Ok(SolverChoice::Sparse),
            other => Err(format!(
                "unknown solver '{other}' (expected auto, dense or sparse)"
            )),
        }
    }
}

/// Sparse linear-solve state for one circuit topology.
///
/// Construction probes the step-Jacobian sparsity pattern once (see
/// [`Circuit::jacobian_pattern`]); every Newton iteration then gathers
/// the current values out of the densely assembled Jacobian into the CSR
/// template and refactors in place. Cloning copies the symbolic analysis
/// (tracked buffer allocations, cold) so the sensitivity path can share
/// it without re-running the fill-reducing ordering.
#[derive(Debug, Clone)]
pub struct SparseJacSolver {
    /// Probed Jacobian positions, sorted by `(row, col)` and
    /// duplicate-free — exactly the CSR storage order, so entry `k`
    /// gathers into `csr.values_mut()[k]`.
    entries: Vec<(usize, usize)>,
    /// Scratch for per-run pattern re-probes.
    probe: Vec<(usize, usize)>,
    /// CSR template holding the most recently gathered values.
    csr: CsrMatrix,
    /// Numeric factors; `None` until the first factorization.
    lu: Option<SparseLu>,
}

impl SparseJacSolver {
    /// Probes `circuit`'s Jacobian pattern and builds the CSR template.
    /// Cold: runs once per topology.
    pub fn new(circuit: &Circuit, params: &Params) -> crate::Result<Self> {
        let n = circuit.unknown_count();
        let entries = circuit.jacobian_pattern(params);
        let triplets: Vec<(usize, usize, f64)> =
            entries.iter().map(|&(i, j)| (i, j, 1.0)).collect();
        let csr = CsrMatrix::from_triplets(n, n, &triplets)?;
        debug_assert_eq!(csr.nnz(), entries.len());
        Ok(SparseJacSolver {
            entries,
            probe: Vec::new(),
            csr,
            lu: None,
        })
    }

    /// Unknown count of the analyzed circuit.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.csr.rows()
    }

    /// Structural nonzeros in the analyzed Jacobian pattern.
    #[must_use]
    pub fn pattern_nnz(&self) -> usize {
        self.entries.len()
    }

    /// The probed Jacobian positions, sorted by `(row, col)` and
    /// duplicate-free. The transient hot loop uses this to confine its
    /// stamp clears and Jacobian combines to the structural nonzeros.
    #[must_use]
    pub fn pattern(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Whether the first factorization has happened yet.
    #[must_use]
    pub fn is_factored(&self) -> bool {
        self.lu.is_some()
    }

    /// True when `circuit` probes to exactly the analyzed pattern, i.e.
    /// this solver (including any symbolic analysis it carries) can be
    /// reused as-is. `stamps`/`x_zero` are clobbered as probe scratch
    /// and must match the circuit's unknown count.
    pub fn matches_pattern(
        &mut self,
        circuit: &Circuit,
        stamps: &mut Stamps,
        x_zero: &Vector,
        params: &Params,
    ) -> bool {
        if circuit.unknown_count() != self.dim() {
            return false;
        }
        circuit.assemble_pattern_into(stamps, x_zero, params, &mut self.probe);
        self.probe == self.entries
    }

    /// Gathers the pattern's values out of the densely assembled Jacobian
    /// and (re)factors. The first call performs the symbolic analysis and
    /// allocates the factors; every later call refactors in place without
    /// allocating (falling back to a fresh repivoting factorization only
    /// on a pivot-collapse event — see [`SparseLu::refactor`]).
    ///
    /// effects: assert
    // lint: hot-fn
    pub fn factor_from(&mut self, jac: &Matrix) -> crate::Result<()> {
        let vals = self.csr.values_mut();
        let mut finite = true;
        for (k, &(i, j)) in self.entries.iter().enumerate() {
            vals[k] = jac[(i, j)];
            finite &= vals[k].is_finite();
        }
        // Blow-up detection lives here, on the gathered O(nnz) values:
        // the sparse Newton path never scans the dense matrix (whose
        // off-pattern entries are structurally zero anyway).
        if !finite {
            return Err(crate::SpiceError::NumericalBlowup { time: f64::NAN });
        }
        match self.lu.as_mut() {
            Some(lu) => lu.refactor(&self.csr)?,
            None => {
                // lint: allow(hot-path-certify, reason = "cold path: the first call performs the symbolic analysis (allocating, span-instrumented); every later call takes the in-place refactor arm")
                self.lu = Some(SparseLu::new(&self.csr)?);
            }
        }
        Ok(())
    }

    /// Solves `J·x = b` with the current factors.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if called before any
    /// [`SparseJacSolver::factor_from`]; otherwise whatever
    /// [`SparseLu::solve_into`] reports.
    ///
    /// effects: none
    // lint: hot-fn
    pub fn solve_into(&mut self, b: &Vector, x: &mut Vector) -> crate::Result<()> {
        match self.lu.as_mut() {
            Some(lu) => {
                lu.solve_into(b, x)?;
                Ok(())
            }
            None => Err(LinalgError::InvalidInput {
                reason: "sparse solver used before factorization",
            }
            .into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::waveform::Waveform;
    use crate::Circuit;

    fn rc_chain(stages: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut prev = c.node("in");
        c.add(VoltageSource::new(
            "V1",
            prev,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        for s in 0..stages {
            let node = c.node(&format!("n{s}"));
            c.add(Resistor::new(&format!("R{s}"), prev, node, 1e3));
            c.add(Capacitor::new(
                &format!("C{s}"),
                node,
                Circuit::GROUND,
                1e-12,
            ));
            prev = node;
        }
        c
    }

    #[test]
    fn auto_dispatch_threshold() {
        assert!(!SolverChoice::Auto.wants_sparse(SPARSE_DISPATCH_MIN_UNKNOWNS - 1));
        assert!(SolverChoice::Auto.wants_sparse(SPARSE_DISPATCH_MIN_UNKNOWNS));
        assert!(!SolverChoice::Dense.wants_sparse(10_000));
        assert!(SolverChoice::Sparse.wants_sparse(2));
    }

    #[test]
    fn choice_parses_and_displays() {
        for c in [
            SolverChoice::Auto,
            SolverChoice::Dense,
            SolverChoice::Sparse,
        ] {
            assert_eq!(c.name().parse::<SolverChoice>(), Ok(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert!("cholesky".parse::<SolverChoice>().is_err());
        assert_eq!(SolverChoice::default(), SolverChoice::Auto);
    }

    #[test]
    fn sparse_solver_matches_dense_lu_on_stamped_jacobian() {
        let circuit = rc_chain(12);
        let params = Params::default();
        let n = circuit.unknown_count();
        let mut solver = SparseJacSolver::new(&circuit, &params).unwrap();
        assert_eq!(solver.dim(), n);
        assert!(!solver.is_factored());

        // Assemble at a nonzero state so C and G carry real values.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[i] = 0.1 * (i as f64 + 1.0);
        }
        let stamps = circuit.assemble(&x, 1e-9, &params, 1.0);
        let jac = Circuit::combine_jacobian(&stamps.c, &stamps.g, 1.0 / 1e-12).unwrap();

        let mut b = Vector::zeros(n);
        for i in 0..n {
            b[i] = (i as f64).sin();
        }
        solver.factor_from(&jac).unwrap();
        let mut xs = Vector::zeros(n);
        solver.solve_into(&b, &mut xs).unwrap();

        let xd = jac.lu().unwrap().solve(&b).unwrap();
        assert!(xs.sub(&xd).norm_inf() < 1e-12 * xd.norm_inf().max(1.0));

        // Refactor path: scale the Jacobian, solve again, compare again.
        let jac2 = Circuit::combine_jacobian(&stamps.c, &stamps.g, 1.0 / 2e-12).unwrap();
        solver.factor_from(&jac2).unwrap();
        solver.solve_into(&b, &mut xs).unwrap();
        let xd2 = jac2.lu().unwrap().solve(&b).unwrap();
        assert!(xs.sub(&xd2).norm_inf() < 1e-12 * xd2.norm_inf().max(1.0));
    }

    #[test]
    fn pattern_recheck_accepts_same_topology_and_rejects_other() {
        let circuit = rc_chain(6);
        let other = rc_chain(7);
        let params = Params::default();
        let mut solver = SparseJacSolver::new(&circuit, &params).unwrap();

        let mut stamps = Stamps::new(circuit.unknown_count());
        let x0 = Vector::zeros(circuit.unknown_count());
        assert!(solver.matches_pattern(&circuit, &mut stamps, &x0, &params));
        // Different unknown count: rejected before probing.
        assert!(!solver.matches_pattern(&other, &mut stamps, &x0, &params));
    }

    #[test]
    fn solve_before_factor_is_an_error() {
        let circuit = rc_chain(3);
        let params = Params::default();
        let mut solver = SparseJacSolver::new(&circuit, &params).unwrap();
        let b = Vector::zeros(circuit.unknown_count());
        let mut x = Vector::zeros(circuit.unknown_count());
        assert!(solver.solve_into(&b, &mut x).is_err());
    }
}
