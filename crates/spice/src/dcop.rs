//! DC operating-point analysis.
//!
//! Solves `f(x, t₀) = 0` (charges do not enter DC). Plain Newton-Raphson is
//! attempted first; if it diverges, two classic homotopies are tried in
//! order — **gmin stepping** (a shunt conductance from every node to ground,
//! progressively reduced) and **source stepping** (all independent sources
//! ramped from 0 to full value). Both are, fittingly, simple continuation
//! methods — the same family of ideas as the Euler-Newton contour tracing
//! this simulator exists to support.

use shc_linalg::{Matrix, Vector};

use crate::circuit::Circuit;
use crate::newton::{self, NewtonOptions};
use crate::solver::{SolverChoice, SparseJacSolver};
use crate::stamp::Stamps;
use crate::waveform::Params;
use crate::{Result, SpiceError};

/// Options for DC operating-point analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Newton settings for each inner solve.
    pub newton: NewtonOptions,
    /// Initial gmin for gmin stepping, in siemens.
    pub gmin_start: f64,
    /// Final (residual) gmin left in place for numerical robustness.
    pub gmin_final: f64,
    /// Multiplicative reduction per gmin step.
    pub gmin_factor: f64,
    /// Number of source-stepping increments.
    pub source_steps: usize,
    /// Time at which source waveforms are evaluated (usually `0.0`).
    pub time: f64,
    /// Linear-solver backend for the inner Newton solves. Small circuits
    /// stay on the (bitwise-reproducible) dense path under `Auto`.
    pub solver: SolverChoice,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            newton: NewtonOptions::default(),
            gmin_start: 1e-2,
            gmin_final: 1e-12,
            gmin_factor: 0.1,
            source_steps: 20,
            time: 0.0,
            solver: SolverChoice::Auto,
        }
    }
}

/// Result of a DC operating-point solve.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// The operating point (node voltages then branch currents).
    pub x: Vector,
    /// Which strategy succeeded.
    pub strategy: DcStrategy,
    /// Total Newton iterations across all homotopy steps.
    pub total_iterations: usize,
}

/// The homotopy (if any) that produced the operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcStrategy {
    /// Plain Newton from the initial guess.
    Direct,
    /// Gmin stepping.
    GminStepping,
    /// Source stepping.
    SourceStepping,
}

/// Computes the DC operating point of a circuit.
///
/// # Errors
///
/// Returns [`SpiceError::NewtonDiverged`] if all strategies fail, or other
/// simulation errors from the inner solves.
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Resistor, VoltageSource, Waveform};
/// use shc_spice::dcop::{solve_dc, DcOptions};
/// use shc_spice::waveform::Params;
///
/// # fn main() -> Result<(), shc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add(VoltageSource::new("V1", a, Circuit::GROUND, Waveform::dc(2.0)));
/// ckt.add(Resistor::new("R1", a, b, 1e3));
/// ckt.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
/// let sol = solve_dc(&ckt, &Params::default(), &DcOptions::default())?;
/// let vb = sol.x[ckt.unknown_of(b).expect("not ground")];
/// assert!((vb - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn solve_dc(circuit: &Circuit, params: &Params, opts: &DcOptions) -> Result<DcSolution> {
    // Once per transient run, outside the stepping hot loop: a full
    // profiler frame is affordable here.
    let _frame = shc_prof::enter(shc_prof::Phase::DcOp);
    let n = circuit.unknown_count();
    let x0 = Vector::zeros(n);

    // One sparse workspace (pattern probe + symbolic analysis) shared by
    // every inner solve of every homotopy strategy; `None` keeps the
    // classic dense path, bit for bit.
    let mut sparse = if opts.solver.wants_sparse(n) {
        let mut ws = newton::NewtonWorkspace::new(n);
        ws.set_sparse_solver(Some(SparseJacSolver::new(circuit, params)?));
        Some(DcSparse {
            ws,
            stamps: Stamps::new(n),
        })
    } else {
        None
    };

    // Strategy 1: plain Newton with the residual gmin.
    if let Ok(sol) = dc_newton(
        circuit,
        params,
        opts,
        &x0,
        opts.gmin_final,
        1.0,
        &mut sparse,
    ) {
        return Ok(DcSolution {
            x: sol.0,
            strategy: DcStrategy::Direct,
            total_iterations: sol.1,
        });
    }

    // Strategy 2: gmin stepping.
    if let Ok(sol) = gmin_stepping(circuit, params, opts, &x0, &mut sparse) {
        return Ok(sol);
    }

    // Strategy 3: source stepping.
    source_stepping(circuit, params, opts, &x0, &mut sparse)
}

/// Extra attempts granted per inner solve when a fault injector is active.
///
/// An injected fault draws a fresh decision on every call, so a retry
/// usually clears it; genuine divergence is deterministic, so without an
/// injector a retry would only replay the same failure — the homotopies
/// are the real recovery there, and fault-free behavior stays untouched.
/// A homotopy chains up to ~30 inner solves and a trace runs hundreds of
/// operating points, so the per-solve residual failure rate must be tiny:
/// at a 10% injection rate, 4 retries leave 1e-5 per solve.
const DC_FAULT_RETRIES: usize = 4;

/// Sparse-path workspace shared by every inner DC solve: the Newton
/// buffers (with the [`SparseJacSolver`] installed) plus assembly stamps.
/// Large circuits would otherwise pay a dense `O(n³)` factorization per
/// Newton iteration per homotopy step.
#[derive(Debug)]
struct DcSparse {
    ws: newton::NewtonWorkspace,
    stamps: Stamps,
}

fn dc_newton(
    circuit: &Circuit,
    params: &Params,
    opts: &DcOptions,
    x0: &Vector,
    gmin: f64,
    source_scale: f64,
    sparse: &mut Option<DcSparse>,
) -> Result<(Vector, usize)> {
    let n_nodes = circuit.node_count();
    let mut attempt = 0;
    if let Some(DcSparse { ws, stamps }) = sparse.as_mut() {
        let mut assemble = |x: &Vector, f: &mut Vector, j: &mut Matrix| -> Result<()> {
            circuit.assemble_into(stamps, x, opts.time, params, source_scale);
            // Shunt gmin on every node (not on branch equations).
            for i in 0..n_nodes {
                stamps.f[i] += gmin * x[i];
                stamps.g.add_at(i, i, gmin);
            }
            f.copy_from(&stamps.f);
            j.copy_from(&stamps.g)?;
            Ok(())
        };
        loop {
            match newton::solve_in_place(ws, x0, &opts.newton, &mut assemble) {
                Ok(iters) => {
                    if attempt > 0 {
                        shc_obs::count(shc_obs::Metric::NewtonRecoveries, 1);
                    }
                    return Ok((ws.x().clone(), iters));
                }
                Err(e)
                    if shc_fault::enabled()
                        && attempt < DC_FAULT_RETRIES
                        && newton::retryable(&e) =>
                {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
    let mut assemble = |x: &Vector| {
        let mut stamps = circuit.assemble(x, opts.time, params, source_scale);
        // Shunt gmin on every node (not on branch equations).
        for i in 0..n_nodes {
            stamps.f[i] += gmin * x[i];
            stamps.g.add_at(i, i, gmin);
        }
        Ok((stamps.f, stamps.g))
    };
    loop {
        match newton::solve(x0, &opts.newton, &mut assemble) {
            Ok(sol) => {
                if attempt > 0 {
                    shc_obs::count(shc_obs::Metric::NewtonRecoveries, 1);
                }
                return Ok((sol.x, sol.iterations));
            }
            Err(e)
                if shc_fault::enabled() && attempt < DC_FAULT_RETRIES && newton::retryable(&e) =>
            {
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn gmin_stepping(
    circuit: &Circuit,
    params: &Params,
    opts: &DcOptions,
    x0: &Vector,
    sparse: &mut Option<DcSparse>,
) -> Result<DcSolution> {
    let mut x = x0.clone();
    let mut gmin = opts.gmin_start;
    let mut total = 0;
    loop {
        let (xn, iters) = dc_newton(circuit, params, opts, &x, gmin, 1.0, sparse)?;
        x = xn;
        total += iters;
        if gmin <= opts.gmin_final {
            return Ok(DcSolution {
                x,
                strategy: DcStrategy::GminStepping,
                total_iterations: total,
            });
        }
        gmin = (gmin * opts.gmin_factor).max(opts.gmin_final);
    }
}

fn source_stepping(
    circuit: &Circuit,
    params: &Params,
    opts: &DcOptions,
    x0: &Vector,
    sparse: &mut Option<DcSparse>,
) -> Result<DcSolution> {
    let mut x = x0.clone();
    let mut total = 0;
    let steps = opts.source_steps.max(1);
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        match dc_newton(circuit, params, opts, &x, opts.gmin_final, scale, sparse) {
            Ok((xn, iters)) => {
                x = xn;
                total += iters;
            }
            Err(_) => {
                return Err(SpiceError::NewtonDiverged {
                    context: "dc operating point (all strategies)",
                    iterations: total,
                    residual: f64::NAN,
                })
            }
        }
    }
    Ok(DcSolution {
        x,
        strategy: DcStrategy::SourceStepping,
        total_iterations: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::MosParams;
    use crate::devices::{Mosfet, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    #[test]
    fn divider_direct() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(2.0),
        ));
        c.add(Resistor::new("R1", a, b, 1e3));
        c.add(Resistor::new("R2", b, Circuit::GROUND, 3e3));
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        assert_eq!(sol.strategy, DcStrategy::Direct);
        assert!((sol.x[0] - 2.0).abs() < 1e-6);
        assert!((sol.x[1] - 1.5).abs() < 1e-6);
        // Branch current: 2V across 4k total = 0.5 mA, flowing out of +.
        assert!((sol.x[2] + 0.5e-3).abs() < 1e-8);
    }

    #[test]
    fn inverter_transfer_points() {
        // CMOS inverter: input low → output at vdd; input high → output ~0.
        let tech_n = MosParams::nmos_250nm();
        let tech_p = MosParams::pmos_250nm();
        for (vin, vout_expect) in [(0.0, 2.5), (2.5, 0.0)] {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::new(
                "Vdd",
                vdd,
                Circuit::GROUND,
                Waveform::dc(2.5),
            ));
            c.add(VoltageSource::new(
                "Vin",
                inp,
                Circuit::GROUND,
                Waveform::dc(vin),
            ));
            c.add(Mosfet::new(
                "MN",
                out,
                inp,
                Circuit::GROUND,
                tech_n,
                1e-6,
                0.25e-6,
            ));
            c.add(Mosfet::new("MP", out, inp, vdd, tech_p, 2e-6, 0.25e-6));
            let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
            let vout = sol.x[c.unknown_of(out).unwrap()];
            assert!(
                (vout - vout_expect).abs() < 0.1,
                "vin={vin}: vout={vout}, expected ~{vout_expect}"
            );
        }
    }

    #[test]
    fn cross_coupled_inverters_find_stable_state() {
        // A bistable pair — the classic hard DC case that needs homotopy or
        // luck; whatever strategy wins, the result must be a valid solution.
        let tech_n = MosParams::nmos_250nm();
        let tech_p = MosParams::pmos_250nm();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let q = c.node("q");
        let qb = c.node("qb");
        c.add(VoltageSource::new(
            "Vdd",
            vdd,
            Circuit::GROUND,
            Waveform::dc(2.5),
        ));
        c.add(Mosfet::new(
            "MN1",
            q,
            qb,
            Circuit::GROUND,
            tech_n,
            1e-6,
            0.25e-6,
        ));
        c.add(Mosfet::new("MP1", q, qb, vdd, tech_p, 2e-6, 0.25e-6));
        c.add(Mosfet::new(
            "MN2",
            qb,
            q,
            Circuit::GROUND,
            tech_n,
            1e-6,
            0.25e-6,
        ));
        c.add(Mosfet::new("MP2", qb, q, vdd, tech_p, 2e-6, 0.25e-6));
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        // Verify it is a genuine root: residual small at the solution.
        let stamps = c.assemble(&sol.x, 0.0, &Params::default(), 1.0);
        assert!(
            stamps.f.norm_inf() < 1e-6,
            "residual {}",
            stamps.f.norm_inf()
        );
    }

    #[test]
    fn sparse_dc_matches_dense_on_large_ladder() {
        // A ladder big enough that `Sparse` is the honest production
        // config; compare its operating point against the dense solve.
        let mut c = Circuit::new();
        let mut prev = c.node("in");
        c.add(VoltageSource::new(
            "V1",
            prev,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        for s in 0..80 {
            let node = c.node(&format!("n{s}"));
            c.add(Resistor::new(&format!("R{s}"), prev, node, 1e3));
            c.add(Resistor::new(&format!("Rg{s}"), node, Circuit::GROUND, 1e5));
            prev = node;
        }
        let params = Params::default();
        let dense = solve_dc(
            &c,
            &params,
            &DcOptions {
                solver: SolverChoice::Dense,
                ..DcOptions::default()
            },
        )
        .unwrap();
        let sparse = solve_dc(
            &c,
            &params,
            &DcOptions {
                solver: SolverChoice::Sparse,
                ..DcOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.strategy, sparse.strategy);
        let diff = dense.x.sub(&sparse.x).norm_inf();
        assert!(diff < 1e-10, "sparse vs dense dc diverged: {diff:e}");
    }

    #[test]
    fn source_stepping_recovers_when_asked_directly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
        let sol = source_stepping(
            &c,
            &Params::default(),
            &DcOptions::default(),
            &Vector::zeros(c.unknown_count()),
            &mut None,
        )
        .unwrap();
        assert_eq!(sol.strategy, DcStrategy::SourceStepping);
        assert!((sol.x[0] - 1.0).abs() < 1e-6);
    }
}
