//! MNA stamp assembly workspace.
//!
//! Devices contribute ("stamp") their constitutive relations into four
//! containers that together define the circuit DAE
//! `d/dt q(x) + f(x, t) = 0`:
//!
//! - `q`: charge/flux vector `q(x)`;
//! - `f`: resistive/source residual `f(x, t)` (includes `b(t)`);
//! - `c`: charge Jacobian `C = ∂q/∂x`;
//! - `g`: conductance Jacobian `G = ∂f/∂x`.

use shc_linalg::{Matrix, Vector};

use crate::waveform::Params;

/// Assembled MNA quantities at one `(x, t)` evaluation point.
#[derive(Debug, Clone)]
pub struct Stamps {
    /// Charge vector `q(x)`.
    pub q: Vector,
    /// Residual `f(x, t)` including independent sources.
    pub f: Vector,
    /// Charge Jacobian `C = ∂q/∂x`.
    pub c: Matrix,
    /// Conductance Jacobian `G = ∂f/∂x`.
    pub g: Matrix,
}

impl Stamps {
    /// Creates a zeroed workspace for `n` unknowns.
    pub fn new(n: usize) -> Self {
        Stamps {
            q: Vector::zeros(n),
            f: Vector::zeros(n),
            c: Matrix::zeros(n, n),
            g: Matrix::zeros(n, n),
        }
    }

    /// Dimension of the workspace.
    pub fn dim(&self) -> usize {
        self.q.len()
    }

    /// Zeroes all containers, keeping allocations.
    pub fn clear(&mut self) {
        self.q.fill_zero();
        self.f.fill_zero();
        self.c.fill_zero();
        self.g.fill_zero();
    }

    /// Zeroes the vectors fully but the Jacobians only at the given
    /// positions — `O(nnz)` instead of `O(n²)`, the sparse hot path's
    /// per-iteration clear.
    ///
    /// Sound only under the pattern-preserving stamping invariant: every
    /// `C`/`G` write since the last full [`Stamps::clear`] must have hit a
    /// position inside `pattern`, so everything outside it is still zero.
    pub fn clear_pattern(&mut self, pattern: &[(usize, usize)]) {
        self.q.fill_zero();
        self.f.fill_zero();
        for &(i, j) in pattern {
            self.c[(i, j)] = 0.0;
            self.g[(i, j)] = 0.0;
        }
    }
}

/// Evaluation context handed to devices while stamping.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// Current state vector (node voltages then branch currents).
    pub x: &'a Vector,
    /// Simulation time in seconds.
    pub t: f64,
    /// Skew parameter values.
    pub params: &'a Params,
    /// Multiplier applied to independent sources (DC source stepping).
    pub source_scale: f64,
    /// Number of node-voltage unknowns; branch unknown `b` lives at
    /// `node_offset + b`.
    pub node_offset: usize,
}

impl<'a> EvalContext<'a> {
    /// Voltage of a node under the current state (`0.0` for ground).
    pub fn voltage(&self, node: crate::Node) -> f64 {
        match node.unknown() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// State value of branch unknown `b`.
    pub fn branch_current(&self, b: usize) -> f64 {
        self.x[self.node_offset + b]
    }

    /// Global unknown index of branch `b`.
    pub fn branch_index(&self, b: usize) -> usize {
        self.node_offset + b
    }
}

/// Mutable stamping interface handed to devices.
///
/// All methods accept `Option<usize>` equation/variable indices so that
/// ground connections (`None`) are silently dropped, exactly as in
/// textbook MNA stamping.
///
/// Device stamping is *pattern-preserving*: the set of `(eq, var)`
/// positions a device touches depends only on the topology, never on the
/// evaluation point. [`Stamper::with_pattern`] exploits that to record the
/// step-Jacobian sparsity structure from a single probe assembly.
#[derive(Debug)]
pub struct Stamper<'a> {
    stamps: &'a mut Stamps,
    /// When present, every `C`/`G` position stamped is appended here
    /// (duplicates included; callers sort + dedup afterwards).
    pattern: Option<&'a mut Vec<(usize, usize)>>,
}

impl<'a> Stamper<'a> {
    /// Wraps a workspace for stamping.
    pub fn new(stamps: &'a mut Stamps) -> Self {
        Stamper {
            stamps,
            pattern: None,
        }
    }

    /// Wraps a workspace and records every Jacobian position stamped via
    /// [`Stamper::add_c`]/[`Stamper::add_g`] into `pattern`.
    pub fn with_pattern(stamps: &'a mut Stamps, pattern: &'a mut Vec<(usize, usize)>) -> Self {
        Stamper {
            stamps,
            pattern: Some(pattern),
        }
    }

    /// Adds `value` to the charge vector at equation `eq`.
    pub fn add_q(&mut self, eq: Option<usize>, value: f64) {
        if let Some(i) = eq {
            self.stamps.q[i] += value;
        }
    }

    /// Adds `value` to the residual at equation `eq`.
    pub fn add_f(&mut self, eq: Option<usize>, value: f64) {
        if let Some(i) = eq {
            self.stamps.f[i] += value;
        }
    }

    /// Adds `value` to `C[eq, var]`.
    pub fn add_c(&mut self, eq: Option<usize>, var: Option<usize>, value: f64) {
        if let (Some(i), Some(j)) = (eq, var) {
            self.stamps.c.add_at(i, j, value);
            if let Some(pattern) = self.pattern.as_deref_mut() {
                // lint: allow(hot-path-certify, reason = "probe mode only: `pattern` is `Some` during the one-time sparsity probe and `None` in every per-iteration assembly")
                pattern.push((i, j));
            }
        }
    }

    /// Adds `value` to `G[eq, var]`.
    pub fn add_g(&mut self, eq: Option<usize>, var: Option<usize>, value: f64) {
        if let (Some(i), Some(j)) = (eq, var) {
            self.stamps.g.add_at(i, j, value);
            if let Some(pattern) = self.pattern.as_deref_mut() {
                // lint: allow(hot-path-certify, reason = "probe mode only: `pattern` is `Some` during the one-time sparsity probe and `None` in every per-iteration assembly")
                pattern.push((i, j));
            }
        }
    }

    /// Stamps a two-terminal conductance `g` between equations/variables
    /// `a` and `b` (the classic 4-entry pattern).
    pub fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        self.add_g(a, a, g);
        self.add_g(b, b, g);
        self.add_g(a, b, -g);
        self.add_g(b, a, -g);
    }

    /// Stamps a two-terminal linear capacitance `c` between `a` and `b`
    /// into the `C` matrix.
    pub fn stamp_capacitance(&mut self, a: Option<usize>, b: Option<usize>, c: f64) {
        self.add_c(a, a, c);
        self.add_c(b, b, c);
        self.add_c(a, b, -c);
        self.add_c(b, a, -c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_stamps_are_dropped() {
        let mut s = Stamps::new(2);
        let mut st = Stamper::new(&mut s);
        st.add_f(None, 5.0);
        st.add_q(None, 5.0);
        st.add_g(None, Some(0), 1.0);
        st.add_g(Some(0), None, 1.0);
        st.add_c(None, None, 1.0);
        assert_eq!(s.f.norm_inf(), 0.0);
        assert_eq!(s.q.norm_inf(), 0.0);
        assert_eq!(s.g.norm_frobenius(), 0.0);
        assert_eq!(s.c.norm_frobenius(), 0.0);
    }

    #[test]
    fn conductance_pattern() {
        let mut s = Stamps::new(2);
        let mut st = Stamper::new(&mut s);
        st.stamp_conductance(Some(0), Some(1), 2.0);
        assert_eq!(s.g[(0, 0)], 2.0);
        assert_eq!(s.g[(1, 1)], 2.0);
        assert_eq!(s.g[(0, 1)], -2.0);
        assert_eq!(s.g[(1, 0)], -2.0);
    }

    #[test]
    fn capacitance_pattern_to_ground() {
        let mut s = Stamps::new(1);
        let mut st = Stamper::new(&mut s);
        st.stamp_capacitance(Some(0), None, 1e-12);
        assert_eq!(s.c[(0, 0)], 1e-12);
    }

    #[test]
    fn pattern_recording_captures_jacobian_positions_only() {
        let mut s = Stamps::new(3);
        let mut pattern = Vec::new();
        let mut st = Stamper::with_pattern(&mut s, &mut pattern);
        st.stamp_conductance(Some(0), Some(1), 2.0);
        st.add_c(Some(2), Some(2), 1e-15);
        st.add_g(None, Some(1), 1.0); // ground: dropped from values AND pattern
        st.add_f(Some(2), 1.0); // residual writes are not Jacobian structure
        pattern.sort_unstable();
        pattern.dedup();
        assert_eq!(pattern, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn clear_resets_but_keeps_dim() {
        let mut s = Stamps::new(3);
        s.f[1] = 4.0;
        s.g[(2, 2)] = 1.0;
        s.clear();
        assert_eq!(s.dim(), 3);
        assert_eq!(s.f.norm_inf(), 0.0);
        assert_eq!(s.g.norm_frobenius(), 0.0);
    }
}
