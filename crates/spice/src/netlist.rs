//! SPICE-subset netlist parser.
//!
//! Builds a [`Circuit`] from a textual deck, so cells can be characterized
//! without writing Rust. The accepted grammar is a practical subset of
//! Berkeley SPICE (the paper's ref \[16\]):
//!
//! ```text
//! * comment                      ; '*' or ';' comments
//! R<name> n1 n2 <value>
//! C<name> n1 n2 <value>
//! L<name> n1 n2 <value>
//! V<name> n+ n- DC <value>
//! V<name> n+ n- PULSE(v0 v1 delay rise fall width period)
//! V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//! V<name> n+ n- DATA(v_rest v_active t_edge rise fall)   ; τs/τh data pulse
//! I<name> n+ n- DC <value>
//! D<name> anode cathode [IS=.. VT=.. N=.. CJ=..]
//! M<name> d g s <model> W=<value> L=<value>
//! E<name> p n cp cn <gain>
//! G<name> p n cp cn <gm>
//! .MODEL <model> NMOS|PMOS [VT0=.. KP=.. LAMBDA=.. COX=.. COV=.. CJ=..]
//! .SUBCKT <name> <ports...> … .ENDS     ; hierarchical definitions
//! X<name> <nodes...> <subckt>           ; instantiation (flattened)
//! .END
//! ```
//!
//! Values take SPICE magnitude suffixes (`f p n u m k meg g t`), lines are
//! case-insensitive, `+` continues the previous line, and node `0` is
//! ground.
//!
//! # Example
//!
//! ```rust
//! use shc_spice::netlist;
//!
//! let deck = "\
//! * rc divider
//! V1 in 0 DC 1.0
//! R1 in out 1k
//! C1 out 0 10p
//! .end";
//! let circuit = netlist::parse(deck)?;
//! assert_eq!(circuit.unknown_count(), 3); // two nodes + one branch
//! # Ok::<(), shc_spice::netlist::NetlistError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::devices::{
    Capacitor, CurrentSource, Diode, DiodeParams, Inductor, MosParams, Mosfet, Resistor, Vccs,
    Vcvs, VoltageSource,
};
use crate::waveform::{DataPulse, Pulse, RampShape, Waveform};
use crate::{Circuit, Node};

/// A netlist parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistError {
    /// 1-based line number in the deck.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetlistError {}

fn err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError {
        line,
        message: message.into(),
    }
}

/// Parses a SPICE value with magnitude suffix: `10k`, `2.5`, `0.1n`,
/// `3meg`, `20f`. Trailing unit letters after the suffix are ignored
/// (`10pF`, `1kohm`), as in SPICE.
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Split numeric prefix.
    let split = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        // Careful: 'e' may start an exponent or be a suffix-less end.
        .unwrap_or(t.len());
    // Retry logic: the scan above eats 'e' greedily, so "1e3" parses whole
    // while "1meg" splits at 'm'. A token like "2e" (broken exponent) fails
    // float parsing below and returns None.
    let (num_str, suffix) = t.split_at(split);
    let base: f64 = num_str.parse().ok()?;
    let mult = if suffix.is_empty() {
        1.0
    } else if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.as_bytes()[0] {
            b't' => 1e12,
            b'g' => 1e9,
            b'k' => 1e3,
            b'm' => 1e-3,
            b'u' => 1e-6,
            b'n' => 1e-9,
            b'p' => 1e-12,
            b'f' => 1e-15,
            // Unknown letter: treat as a unit annotation ("5ohm").
            _ => 1.0,
        }
    };
    Some(base * mult)
}

/// One logical line after comment-stripping and continuation-joining.
#[derive(Debug, Clone)]
struct Line {
    number: usize,
    text: String,
}

fn logical_lines(deck: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    for (idx, raw) in deck.lines().enumerate() {
        let number = idx + 1;
        // Strip ';' comments; '*' comments only when the line starts with one.
        let mut text = raw.trim().to_string();
        if text.starts_with('*') {
            continue;
        }
        if let Some(pos) = text.find(';') {
            text.truncate(pos);
        }
        let text = text.trim().to_string();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('+') {
            if let Some(prev) = out.last_mut() {
                prev.text.push(' ');
                prev.text.push_str(rest.trim());
                continue;
            }
        }
        out.push(Line { number, text });
    }
    out
}

/// Splits a card into tokens, keeping `NAME(...)` groups intact and
/// normalizing to lowercase.
fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.is_empty() {
                    tokens.push(current.to_ascii_lowercase());
                    current = String::new();
                }
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        tokens.push(current.to_ascii_lowercase());
    }
    tokens
}

/// Parses `key=value` fields from tokens, returning the map and leftovers.
fn split_kv(tokens: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut kv = HashMap::new();
    let mut rest = Vec::new();
    for t in tokens {
        if let Some(eq) = t.find('=') {
            kv.insert(t[..eq].to_string(), t[eq + 1..].to_string());
        } else {
            rest.push(t.clone());
        }
    }
    (kv, rest)
}

fn kv_value(
    kv: &HashMap<String, String>,
    key: &str,
    default: f64,
    line: usize,
) -> Result<f64, NetlistError> {
    match kv.get(key) {
        None => Ok(default),
        Some(v) => parse_value(v).ok_or_else(|| err(line, format!("bad value for {key}: '{v}'"))),
    }
}

/// Parses a waveform specification from source-card tokens.
fn parse_waveform(tokens: &[String], line: usize) -> Result<Waveform, NetlistError> {
    if tokens.is_empty() {
        return Err(err(line, "missing source value"));
    }
    let first = &tokens[0];
    let args_of = |tok: &str, name: &str| -> Result<Vec<f64>, NetlistError> {
        let inner = tok
            .strip_prefix(name)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| err(line, format!("malformed {name}(...) group")))?;
        inner
            .split([' ', ','])
            .filter(|s| !s.is_empty())
            .map(|s| parse_value(s).ok_or_else(|| err(line, format!("bad number '{s}'"))))
            .collect()
    };

    if first == "dc" {
        let v = tokens
            .get(1)
            .and_then(|t| parse_value(t))
            .ok_or_else(|| err(line, "DC needs a value"))?;
        return Ok(Waveform::Dc(v));
    }
    if first.starts_with("pulse") {
        let a = args_of(first, "pulse")?;
        if a.len() != 7 {
            return Err(err(
                line,
                "PULSE needs 7 arguments: v0 v1 delay rise fall width period",
            ));
        }
        return Ok(Waveform::Pulse(Pulse {
            v0: a[0],
            v1: a[1],
            delay: a[2],
            rise: a[3],
            fall: a[4],
            width: a[5],
            period: a[6],
            shape: RampShape::Smoothstep,
        }));
    }
    if first.starts_with("pwl") {
        let a = args_of(first, "pwl")?;
        if a.len() < 2 || a.len() % 2 != 0 {
            return Err(err(line, "PWL needs an even number of time/value pairs"));
        }
        let points: Vec<(f64, f64)> = a.chunks(2).map(|c| (c[0], c[1])).collect();
        if points.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(err(line, "PWL time points must be nondecreasing"));
        }
        return Ok(Waveform::Pwl(points));
    }
    if first.starts_with("data") {
        let a = args_of(first, "data")?;
        if a.len() != 5 {
            return Err(err(
                line,
                "DATA needs 5 arguments: v_rest v_active t_edge rise fall",
            ));
        }
        return Ok(Waveform::Data(DataPulse {
            v_rest: a[0],
            v_active: a[1],
            t_edge: a[2],
            rise: a[3],
            fall: a[4],
            shape: RampShape::Smoothstep,
        }));
    }
    // Bare number = DC.
    if let Some(v) = parse_value(first) {
        return Ok(Waveform::Dc(v));
    }
    Err(err(line, format!("unrecognized source spec '{first}'")))
}

fn parse_model(tokens: &[String], line: usize) -> Result<(String, MosParams), NetlistError> {
    // .model <name> nmos|pmos [params]
    if tokens.len() < 3 {
        return Err(err(line, ".MODEL needs a name and a type"));
    }
    let name = tokens[1].clone();
    let (kv, _) = split_kv(&tokens[3..]);
    let mut params = match tokens[2].as_str() {
        "nmos" => MosParams::nmos_250nm(),
        "pmos" => MosParams::pmos_250nm(),
        other => return Err(err(line, format!("unknown model type '{other}'"))),
    };
    params.vt0 = kv_value(&kv, "vt0", params.vt0, line)?.abs();
    params.kp = kv_value(&kv, "kp", params.kp, line)?;
    params.lambda = kv_value(&kv, "lambda", params.lambda, line)?;
    params.cox = kv_value(&kv, "cox", params.cox, line)?;
    params.cov = kv_value(&kv, "cov", params.cov, line)?;
    params.cj = kv_value(&kv, "cj", params.cj, line)?;
    Ok((name, params))
}

/// A `.SUBCKT` definition: port names plus body lines.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    body: Vec<Line>,
    defined_at: usize,
}

/// Extracts `.subckt … .ends` blocks, returning them plus the remaining
/// top-level lines.
fn extract_subckts(lines: Vec<Line>) -> Result<(HashMap<String, Subckt>, Vec<Line>), NetlistError> {
    let mut subckts = HashMap::new();
    let mut top = Vec::new();
    let mut current: Option<(String, Subckt)> = None;
    for line in lines {
        let tokens = tokenize(&line.text);
        match tokens.first().map(String::as_str) {
            Some(".subckt") => {
                if current.is_some() {
                    return Err(err(line.number, "nested .SUBCKT definitions not supported"));
                }
                if tokens.len() < 3 {
                    return Err(err(
                        line.number,
                        ".SUBCKT needs a name and at least one port",
                    ));
                }
                current = Some((
                    tokens[1].clone(),
                    Subckt {
                        ports: tokens[2..].to_vec(),
                        body: Vec::new(),
                        defined_at: line.number,
                    },
                ));
            }
            Some(".ends") => match current.take() {
                Some((name, sub)) => {
                    subckts.insert(name, sub);
                }
                None => return Err(err(line.number, ".ENDS without .SUBCKT")),
            },
            _ => match &mut current {
                Some((_, sub)) => sub.body.push(line),
                None => top.push(line),
            },
        }
    }
    if let Some((name, sub)) = current {
        return Err(err(sub.defined_at, format!(".SUBCKT {name} missing .ENDS")));
    }
    Ok((subckts, top))
}

/// Token positions holding node names for each card type.
fn node_token_indices(card_letter: char, tokens: &[String]) -> Vec<usize> {
    match card_letter {
        'r' | 'c' | 'l' | 'v' | 'i' | 'd' => vec![1, 2],
        'e' | 'g' => vec![1, 2, 3, 4],
        'm' => {
            // First three positional (non key=value) fields are d, g, s.
            tokens
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, t)| !t.contains('='))
                .map(|(i, _)| i)
                .take(3)
                .collect()
        }
        'x' => {
            // All positional fields except the final subckt name.
            let positional: Vec<usize> = tokens
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, t)| !t.contains('='))
                .map(|(i, _)| i)
                .collect();
            positional[..positional.len().saturating_sub(1)].to_vec()
        }
        _ => Vec::new(),
    }
}

/// Maximum subcircuit nesting depth during flattening.
const MAX_SUBCKT_DEPTH: usize = 20;

/// Expands one `X` instance into flattened device lines.
fn expand_instance(
    inst: &str,
    line_no: usize,
    tokens: &[String],
    subckts: &HashMap<String, Subckt>,
    depth: usize,
    out: &mut Vec<Line>,
) -> Result<(), NetlistError> {
    if depth > MAX_SUBCKT_DEPTH {
        return Err(err(line_no, "subcircuit nesting too deep (cycle?)"));
    }
    let positional: Vec<&String> = tokens[1..].iter().filter(|t| !t.contains('=')).collect();
    let Some((sub_name, actual_nodes)) = positional.split_last() else {
        return Err(err(line_no, "X card needs nodes and a subckt name"));
    };
    let sub = subckts
        .get(sub_name.as_str())
        .ok_or_else(|| err(line_no, format!("unknown subcircuit '{sub_name}'")))?;
    if actual_nodes.len() != sub.ports.len() {
        return Err(err(
            line_no,
            format!(
                "subcircuit '{sub_name}' has {} ports, instance gives {}",
                sub.ports.len(),
                actual_nodes.len()
            ),
        ));
    }
    let mut port_map: HashMap<&str, &str> = HashMap::new();
    for (port, actual) in sub.ports.iter().zip(actual_nodes.iter()) {
        port_map.insert(port.as_str(), actual.as_str());
    }
    let rename = |node: &str| -> String {
        if node == "0" {
            "0".to_string()
        } else if let Some(actual) = port_map.get(node) {
            (*actual).to_string()
        } else {
            format!("{inst}.{node}")
        }
    };

    for body_line in &sub.body {
        let mut btokens = tokenize(&body_line.text);
        let Some(first) = btokens.first().cloned() else {
            continue;
        };
        let Some(letter) = first.chars().next() else {
            // tokenize() never yields empty tokens; skip rather than panic.
            continue;
        };
        if letter == '.' {
            // .model cards are collected globally; other directives are
            // not allowed inside a body.
            if first == ".model" {
                continue;
            }
            return Err(err(
                body_line.number,
                format!("directive '{first}' not allowed inside .SUBCKT"),
            ));
        }
        for idx in node_token_indices(letter, &btokens) {
            btokens[idx] = rename(&btokens[idx]);
        }
        // Keep the leading card letter; qualify the instance path after it.
        btokens[0] = format!("{first}@{inst}");
        if letter == 'x' {
            let nested_inst = btokens[0].clone();
            expand_instance(
                &nested_inst,
                body_line.number,
                &btokens,
                subckts,
                depth + 1,
                out,
            )?;
        } else {
            out.push(Line {
                number: body_line.number,
                text: btokens.join(" "),
            });
        }
    }
    Ok(())
}

/// Flattens all `X` instances, leaving a purely flat card list.
fn flatten(lines: Vec<Line>) -> Result<Vec<Line>, NetlistError> {
    let (subckts, top) = extract_subckts(lines)?;
    let mut out = Vec::new();
    for line in top {
        let tokens = tokenize(&line.text);
        let Some(first) = tokens.first() else {
            continue;
        };
        if first.starts_with('x') {
            let inst = first.clone();
            expand_instance(&inst, line.number, &tokens, &subckts, 0, &mut out)?;
        } else {
            out.push(line);
        }
    }
    Ok(out)
}

/// Parses a SPICE-subset deck into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`NetlistError`] carrying the offending line number for any
/// syntax or semantic problem (unknown card, bad value, missing model…).
pub fn parse(deck: &str) -> Result<Circuit, NetlistError> {
    let lines = flatten(logical_lines(deck))?;

    // First pass: collect .model cards (they may appear after use).
    let mut models: HashMap<String, MosParams> = HashMap::new();
    for line in &lines {
        let tokens = tokenize(&line.text);
        if tokens.first().map(String::as_str) == Some(".model") {
            let (name, params) = parse_model(&tokens, line.number)?;
            models.insert(name, params);
        }
    }

    let mut circuit = Circuit::new();
    let node = |circuit: &mut Circuit, name: &str| -> Node { circuit.node(name) };

    for line in &lines {
        let tokens = tokenize(&line.text);
        let Some(card) = tokens.first() else { continue };
        let ln = line.number;
        let need = |k: usize| -> Result<(), NetlistError> {
            if tokens.len() < k {
                Err(err(ln, format!("expected at least {} fields", k)))
            } else {
                Ok(())
            }
        };
        let Some(kind) = card.chars().next() else {
            // tokenize() never yields empty tokens; skip rather than panic.
            continue;
        };
        match kind {
            '.' => {
                match card.as_str() {
                    ".model" => {} // handled in the first pass
                    ".end" => break,
                    other => return Err(err(ln, format!("unsupported directive '{other}'"))),
                }
            }
            'r' => {
                need(4)?;
                let value = parse_value(&tokens[3])
                    .ok_or_else(|| err(ln, format!("bad resistance '{}'", tokens[3])))?;
                let (a, b) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(Resistor::new(card, a, b, value));
            }
            'c' => {
                need(4)?;
                let value = parse_value(&tokens[3])
                    .ok_or_else(|| err(ln, format!("bad capacitance '{}'", tokens[3])))?;
                let (a, b) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(Capacitor::new(card, a, b, value));
            }
            'l' => {
                need(4)?;
                let value = parse_value(&tokens[3])
                    .ok_or_else(|| err(ln, format!("bad inductance '{}'", tokens[3])))?;
                let (a, b) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(Inductor::new(card, a, b, value));
            }
            'v' => {
                need(4)?;
                let wf = parse_waveform(&tokens[3..], ln)?;
                let (p, n) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(VoltageSource::new(card, p, n, wf));
            }
            'i' => {
                need(4)?;
                let wf = parse_waveform(&tokens[3..], ln)?;
                let (p, n) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(CurrentSource::new(card, p, n, wf));
            }
            'd' => {
                need(3)?;
                let (kv, _) = split_kv(&tokens[3..]);
                let params = DiodeParams {
                    i_s: kv_value(&kv, "is", DiodeParams::default().i_s, ln)?,
                    v_t: kv_value(&kv, "vt", DiodeParams::default().v_t, ln)?,
                    n: kv_value(&kv, "n", DiodeParams::default().n, ln)?,
                    cj: kv_value(&kv, "cj", DiodeParams::default().cj, ln)?,
                    v_crit: DiodeParams::default().v_crit,
                };
                let (a, c) = (
                    node(&mut circuit, &tokens[1]),
                    node(&mut circuit, &tokens[2]),
                );
                circuit.add(Diode::new(card, a, c, params));
            }
            'm' => {
                need(5)?;
                let (kv, positional) = split_kv(&tokens[1..]);
                if positional.len() < 4 {
                    return Err(err(ln, "MOSFET needs d g s <model>"));
                }
                let model_name = &positional[3];
                let params = *models.get(model_name).ok_or_else(|| {
                    err(
                        ln,
                        format!("unknown model '{model_name}' (missing .MODEL?)"),
                    )
                })?;
                let w = kv_value(&kv, "w", 1e-6, ln)?;
                let l = kv_value(&kv, "l", 0.25e-6, ln)?;
                let d = node(&mut circuit, &positional[0]);
                let g = node(&mut circuit, &positional[1]);
                let s = node(&mut circuit, &positional[2]);
                circuit.add(Mosfet::new(card, d, g, s, params, w, l));
            }
            'e' => {
                need(6)?;
                let gain = parse_value(&tokens[5])
                    .ok_or_else(|| err(ln, format!("bad gain '{}'", tokens[5])))?;
                let p = node(&mut circuit, &tokens[1]);
                let n = node(&mut circuit, &tokens[2]);
                let cp = node(&mut circuit, &tokens[3]);
                let cn = node(&mut circuit, &tokens[4]);
                circuit.add(Vcvs::new(card, p, n, cp, cn, gain));
            }
            'g' => {
                need(6)?;
                let gm = parse_value(&tokens[5])
                    .ok_or_else(|| err(ln, format!("bad transconductance '{}'", tokens[5])))?;
                let p = node(&mut circuit, &tokens[1]);
                let n = node(&mut circuit, &tokens[2]);
                let cp = node(&mut circuit, &tokens[3]);
                let cn = node(&mut circuit, &tokens[4]);
                circuit.add(Vccs::new(card, p, n, cp, cn, gm));
            }
            other => {
                return Err(err(ln, format!("unknown card type '{other}'")));
            }
        }
    }

    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcop::{solve_dc, DcOptions};
    use crate::waveform::Params;

    #[test]
    fn value_suffixes() {
        // Suffix multiplication rounds in the last ulp; compare relatively.
        let close = |tok: &str, expect: f64| {
            let v = parse_value(tok).unwrap_or_else(|| panic!("'{tok}' should parse"));
            assert!(
                (v - expect).abs() <= 1e-12 * expect.abs(),
                "'{tok}': got {v:e}, expected {expect:e}"
            );
        };
        close("10k", 10e3);
        close("2.5", 2.5);
        close("0.1n", 0.1e-9);
        close("3meg", 3e6);
        close("20f", 20e-15);
        close("1e3", 1000.0);
        close("-5m", -5e-3);
        close("1u", 1e-6);
        close("1t", 1e12);
        close("1g", 1e9);
        close("10pF", 10e-12);
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn parses_rc_divider_and_solves() {
        let deck = "\
* divider
V1 in 0 DC 2.0
R1 in mid 1k
R2 mid 0 1k
.end";
        let c = parse(deck).unwrap();
        assert_eq!(c.unknown_count(), 3);
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let mid = c.find_node("mid").unwrap().unknown().unwrap();
        assert!((sol.x[mid] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn continuation_lines_and_comments() {
        let deck = "\
V1 a 0 DC 1 ; source
R1 a b
+ 2k
R2 b 0 2k
* trailing comment line
.end";
        let c = parse(deck).unwrap();
        assert_eq!(c.device_count(), 3);
    }

    #[test]
    fn parses_pulse_pwl_and_data_sources() {
        let deck = "\
Vclk clk 0 PULSE(0 2.5 1n 0.1n 0.1n 4.9n 10n)
Vd d 0 DATA(0 2.5 11.05n 0.1n 0.1n)
Vp p 0 PWL(0 0 1n 1 2n 0.5)
R1 clk 0 1k
R2 d 0 1k
R3 p 0 1k
.end";
        let c = parse(deck).unwrap();
        assert_eq!(c.device_count(), 6);
        // The data source responds to skews.
        let params = Params::new(300e-12, 200e-12);
        let dfdp = c.assemble_dfdp(11.05e-9 - 300e-12, &params, crate::Param::Setup);
        assert!(dfdp.norm_inf() > 0.0, "data source must couple to τs");
    }

    #[test]
    fn parses_mosfet_with_model() {
        let deck = "\
.model mynmos NMOS VT0=0.5 KP=100u LAMBDA=0.05
.model mypmos PMOS
Vdd vdd 0 DC 2.5
Vin in 0 DC 0
M1 out in 0 mynmos W=2u L=0.25u
M2 out in vdd mypmos W=4u L=0.25u
Cout out 0 10f
.end";
        let c = parse(deck).unwrap();
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let out = c.find_node("out").unwrap().unknown().unwrap();
        assert!(
            (sol.x[out] - 2.5).abs() < 0.1,
            "inverter with low input → high out"
        );
    }

    #[test]
    fn parses_inductor_card() {
        let deck = "\
V1 in 0 DC 1
R1 in mid 1k
L1 mid 0 10u
.end";
        let c = parse(deck).unwrap();
        assert_eq!(c.device_count(), 3);
        // Inductor + source each take a branch unknown.
        assert_eq!(c.branch_count(), 2);
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let mid = c.find_node("mid").unwrap().unknown().unwrap();
        assert!(sol.x[mid].abs() < 1e-6, "dc short, got {}", sol.x[mid]);
    }

    #[test]
    fn parses_controlled_sources_and_diode() {
        let deck = "\
V1 in 0 DC 0.5
E1 amp 0 in 0 3
G1 0 load in 0 1m
RL load 0 1k
RA amp 0 1k
D1 load 0 IS=1e-14
.end";
        let c = parse(deck).unwrap();
        assert_eq!(c.device_count(), 6);
        c.validate().unwrap();
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("R1 a 0 bogus\n.end").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("bogus"));

        let e = parse("V1 a 0 DC 1\nX9 what 0 1k\n.end").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("M1 d g s missing W=1u L=1u\n.end").unwrap_err();
        assert!(e.message.contains("unknown model"));

        let e = parse("V1 a 0 PULSE(1 2 3)\n.end").unwrap_err();
        assert!(e.message.contains("7 arguments"));

        let e = parse(".weird\n.end").unwrap_err();
        assert!(e.message.contains("unsupported directive"));
    }

    #[test]
    fn end_stops_parsing() {
        let deck = "\
R1 a 0 1k
.end
R2 b 0 totally broken";
        let c = parse(deck).unwrap();
        assert_eq!(c.device_count(), 1);
    }

    #[test]
    fn subckt_flattening_builds_hierarchy() {
        // An inverter subckt used twice, plus a nested buffer subckt.
        let deck = "\
.model n1 NMOS
.model p1 PMOS
.subckt inv in out vdd
Mp out in vdd p1 W=2u L=0.25u
Mn out in 0   n1 W=1u L=0.25u
.ends
.subckt buf a y vdd
Xi1 a mid vdd inv
Xi2 mid y vdd inv
.ends
Vdd vdd 0 DC 2.5
Vin in 0 DC 0
Xb in out vdd buf
Cl out 0 10f
.end";
        let c = parse(deck).unwrap();
        // 4 MOSFETs + 2 sources + 1 cap.
        assert_eq!(c.device_count(), 7);
        // Internal node of the buffer is qualified, the ports are shared.
        assert!(c.find_node("xb.mid").is_some(), "hierarchical node name");
        assert!(c.find_node("out").is_some());
        // And it simulates: buffer of a low input is low.
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let out = c.find_node("out").unwrap().unknown().unwrap();
        assert!(
            sol.x[out] < 0.1,
            "buffered low input should stay low, got {}",
            sol.x[out]
        );
    }

    #[test]
    fn subckt_errors_are_descriptive() {
        let e = parse(
            ".subckt a in
R1 in 0 1k
.end",
        )
        .unwrap_err();
        assert!(e.message.contains("missing .ENDS"), "{e}");

        let e = parse(
            ".ends
.end",
        )
        .unwrap_err();
        assert!(e.message.contains("without .SUBCKT"));

        let e = parse(
            "X1 a b missing
.end",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown subcircuit"));

        let deck = "\
.subckt inv in out
R1 in out 1k
.ends
X1 a inv
.end";
        let e = parse(deck).unwrap_err();
        assert!(e.message.contains("ports"), "{e}");
    }

    #[test]
    fn recursive_subckt_is_rejected() {
        let deck = "\
.subckt loop a b
Xinner a b loop
.ends
X1 n1 n2 loop
.end";
        let e = parse(deck).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
    }

    #[test]
    fn pwl_times_must_be_sorted() {
        let e = parse("V1 a 0 PWL(1n 1 0 0)\n.end").unwrap_err();
        assert!(e.message.contains("nondecreasing"));
    }
}
