//! Transient analysis with forward sensitivity propagation.
//!
//! Integrates the circuit DAE `d/dt q(x) + f(x, t) = 0` with Backward Euler
//! or the Trapezoidal rule, fixed or LTE-adaptive steps. Alongside the state,
//! it can propagate the forward sensitivities `m_p(t) = ∂x/∂p` for the skew
//! parameters, using the recursions of the paper's eqs. (11) and (13):
//!
//! ```text
//! BE:   (C_i + Δt·G_i) m_i = C_{i−1} m_{i−1} − Δt·(∂f/∂p)_i
//! TRAP: (C_i + Δt/2·G_i) m_i = (C_{i−1} − Δt/2·G_{i−1}) m_{i−1}
//!                               − Δt/2·[(∂f/∂p)_i + (∂f/∂p)_{i−1}]
//! ```
//!
//! The step Jacobian is factored once per accepted step and **reused** for
//! every sensitivity solve, so the 1×2 characterization Jacobian costs only
//! two extra back-substitutions per step — the paper's key efficiency
//! observation.

use std::mem;

use shc_linalg::{LuFactor, Matrix, Vector};

use crate::circuit::Circuit;
use crate::dcop::{self, DcOptions};
use crate::newton::{self, NewtonOptions};
use crate::solver::{SolverChoice, SparseJacSolver};
use crate::stamp::Stamps;
use crate::waveform::{Param, Params};
use crate::{Result, SpiceError};

/// Jittered damped-Newton retries granted when a step diverges at the
/// `dt_min` floor (where there is no smaller step to cut to).
pub(crate) const NEWTON_FLOOR_RETRIES: usize = 2;

/// Same-`dt` retries granted per diverged step while a fault injector is
/// installed, *before* the step-cut policy engages.
///
/// An injected Newton fault draws a fresh decision on every solve, so a
/// same-`dt` retry usually clears it and the accepted step sequence — and
/// with it the trajectory the characterization corrector differentiates —
/// stays identical to the fault-free run. Cutting `dt` instead would
/// "recover" but perturb every downstream step, turning a transient fault
/// into a millivolt-scale bias on the measured state transition. Genuine
/// divergence is unaffected: retries exhaust quickly and the normal cut
/// policy below takes over. Sized so that at a 10% per-solve injection
/// rate the leak-through probability per step is ~1e-7.
pub(crate) const NEWTON_FAULT_RETRIES: usize = 6;

/// Re-runs a deterministic LU operation when a fault injector is active.
///
/// The sensitivity propagation after an accepted step factors and solves
/// outside the Newton loop, so injected LU faults there would kill the
/// whole run with no recovery rung. Each re-run draws a fresh fault
/// decision and recomputes from unchanged inputs, so absorption cannot
/// alter the result; without an injector the operation runs exactly once.
pub(crate) fn with_lu_fault_retries<T, E>(
    mut op: impl FnMut() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    let mut last = op();
    if shc_fault::enabled() {
        for _ in 0..NEWTON_FAULT_RETRIES {
            if last.is_ok() {
                break;
            }
            last = op();
        }
    }
    last
}

/// Relative slack for "is this step at the `dt_min` floor?" tests.
///
/// The effective step is `(t_prev + dt) - t_prev`, which re-rounds the
/// nominal `dt`; near large `t_prev` a floor-sized step can come back a
/// few ulps *above* `dt_min`, and an exact comparison then keeps cutting
/// to the same floor value forever instead of engaging the floor policy.
pub(crate) const DT_FLOOR_SLACK: f64 = 1.0 + 1e-9;

/// Relative endpoint slack for the outer time loop: integration stops
/// once `t_prev` is within this fraction of `tstop` (scaled by
/// `tstop.max(1.0)` so a zero-length window still terminates). Guards
/// against a final ulp-sized step that Newton would reject.
pub(crate) const TSTOP_ENDPOINT_SLACK: f64 = 1e-18;

/// A step is accepted when the weighted LTE norm is at or below this
/// value — the norm is already scaled by `lte_reltol`/`lte_abstol`, so
/// 1.0 means "error exactly at tolerance".
const LTE_ACCEPT_NORM: f64 = 1.0;

/// Per-step lap slots (see `shc_prof::Laps`): the stepping loop is a
/// contiguous chain NEWTON → LTE → SENS → STEP_SELF, one clock read per
/// boundary, so the default profiling detail costs ~4 reads per step.
const LAP_NEWTON: usize = 0;
/// LTE estimate and step-size control (adaptive mode).
const LAP_LTE: usize = 1;
/// Accepted-point re-stamp plus the sensitivity factor/solves — the
/// re-stamp exists to furnish exact `C_i`, `G_i` for this recursion, so
/// it is charged here.
const LAP_SENS: usize = 2;
/// History rotation and result recording; never flushed — it remains the
/// `Transient` frame's own self-time.
const LAP_STEP_SELF: usize = 3;

/// Flushes the per-run lap accumulators into the profile tree, exactly
/// once, when the run exits — on success, on error returns, and on
/// fault-injected aborts alike. Lives inside the open
/// `shc_prof::Phase::Transient` frame so every recorded path lands under
/// it.
struct ProfFlush<'l> {
    step: &'l shc_prof::Laps,
    iter: &'l shc_prof::Laps,
    sparse: bool,
}

impl Drop for ProfFlush<'_> {
    fn drop(&mut self) {
        if !(self.step.active() || self.iter.active()) {
            return;
        }
        use crate::newton::lap;
        use shc_prof::{record, Phase, Sample};
        let dev = self.iter.sample(lap::DEV);
        let stamp = self.iter.sample(lap::STAMP);
        let factor = self.iter.sample(lap::FACTOR);
        let solve = self.iter.sample(lap::SOLVE);
        // The iteration slots carry exact counts at every detail level
        // and ticks only at `Detail::Iter`; phase names follow the
        // solver backend.
        let (dev_phase, factor_phase, solve_phase) = if self.sparse {
            (
                Phase::AssembleSparse,
                Phase::SparseRefactor,
                Phase::SparseSolve,
            )
        } else {
            (Phase::DeviceEval, Phase::LuRefactor, Phase::LuSolve)
        };
        record(&[Phase::NewtonOverhead, dev_phase], dev);
        record(&[Phase::NewtonOverhead, Phase::Stamp], stamp);
        record(&[Phase::NewtonOverhead, factor_phase], factor);
        record(&[Phase::NewtonOverhead, solve_phase], solve);
        // Newton self-time is the per-step lap total minus the four
        // iteration regions; at `Detail::Step` those are zero and the
        // whole solve is Newton self.
        let newton = self.step.sample(LAP_NEWTON);
        let children = dev.ticks + stamp.ticks + factor.ticks + solve.ticks;
        record(
            &[Phase::NewtonOverhead],
            Sample {
                ticks: newton.ticks.saturating_sub(children),
                ..newton
            },
        );
        record(&[Phase::LteControl], self.step.sample(LAP_LTE));
        record(&[Phase::SensSolve], self.step.sample(LAP_SENS));
    }
}

/// Below this weighted LTE norm the step size is allowed to grow: the
/// error is far enough under tolerance that a larger step will likely
/// still be accepted, and re-stamping cost dominates.
const LTE_GROW_NORM: f64 = 0.2;

/// Time-integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, first order — robust default for stiff
    /// latch circuits.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: A-stable, second order.
    Trapezoidal,
    /// Gear-2 (BDF2): L-stable, second order; variable-step coefficients.
    /// Falls back to Backward Euler on the first step (no history yet).
    Gear2,
}

/// What state history to retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Keep every state vector (small circuits only).
    #[default]
    Full,
    /// Keep only one unknown's trajectory.
    Probe(usize),
    /// Keep nothing but the final state.
    FinalOnly,
}

/// How the initial condition is obtained.
#[derive(Debug, Clone, Default)]
pub enum InitialCondition {
    /// Solve the DC operating point at `t = 0` (the default).
    #[default]
    DcOperatingPoint,
    /// Start from the given state vector.
    Given(Vector),
}

/// Transient analysis options. Build with [`TransientOptions::builder`].
#[derive(Debug, Clone)]
pub struct TransientOptions {
    /// Stop time in seconds.
    pub tstop: f64,
    /// (Initial) time step in seconds.
    pub dt: f64,
    /// Minimum step before aborting (adaptive mode).
    pub dt_min: f64,
    /// Maximum step (adaptive mode).
    pub dt_max: f64,
    /// Use LTE-based adaptive stepping.
    pub adaptive: bool,
    /// Integration method.
    pub integrator: Integrator,
    /// Newton settings per time step.
    pub newton: NewtonOptions,
    /// DC operating-point settings (for the initial condition).
    pub dc: DcOptions,
    /// Parameters whose sensitivities `∂x/∂p` to propagate.
    pub sensitivities: Vec<Param>,
    /// History retention.
    pub record: RecordMode,
    /// Initial condition.
    pub initial: InitialCondition,
    /// LTE relative tolerance (adaptive mode).
    pub lte_reltol: f64,
    /// LTE absolute tolerance in volts (adaptive mode).
    pub lte_abstol: f64,
    /// Linear-solver backend for the per-step Newton solves (and, via
    /// [`DcOptions::solver`], the DC operating point).
    pub solver: SolverChoice,
}

impl TransientOptions {
    /// Starts a builder with the mandatory stop time.
    pub fn builder(tstop: f64) -> TransientOptionsBuilder {
        TransientOptionsBuilder {
            opts: TransientOptions {
                tstop,
                dt: tstop / 1000.0,
                dt_min: tstop * 1e-9,
                dt_max: tstop / 100.0,
                adaptive: false,
                integrator: Integrator::default(),
                newton: NewtonOptions::default(),
                dc: DcOptions::default(),
                sensitivities: Vec::new(),
                record: RecordMode::default(),
                initial: InitialCondition::default(),
                lte_reltol: 1e-3,
                lte_abstol: 1e-4,
                solver: SolverChoice::Auto,
            },
        }
    }
}

/// Builder for [`TransientOptions`].
#[derive(Debug, Clone)]
pub struct TransientOptionsBuilder {
    opts: TransientOptions,
}

impl TransientOptionsBuilder {
    /// Sets the (initial) time step.
    pub fn dt(mut self, dt: f64) -> Self {
        self.opts.dt = dt;
        self
    }

    /// Enables LTE-adaptive stepping with the given bounds.
    pub fn adaptive(mut self, dt_min: f64, dt_max: f64) -> Self {
        self.opts.adaptive = true;
        self.opts.dt_min = dt_min;
        self.opts.dt_max = dt_max;
        self
    }

    /// Selects the integration method.
    pub fn integrator(mut self, method: Integrator) -> Self {
        self.opts.integrator = method;
        self
    }

    /// Requests sensitivity propagation for the given parameters.
    pub fn sensitivities(mut self, params: &[Param]) -> Self {
        self.opts.sensitivities = params.to_vec();
        self
    }

    /// Sets the history retention mode.
    pub fn record(mut self, mode: RecordMode) -> Self {
        self.opts.record = mode;
        self
    }

    /// Sets the initial condition.
    pub fn initial(mut self, ic: InitialCondition) -> Self {
        self.opts.initial = ic;
        self
    }

    /// Overrides the per-step Newton options.
    pub fn newton(mut self, newton: NewtonOptions) -> Self {
        self.opts.newton = newton;
        self
    }

    /// Selects the linear-solver backend for both the transient Newton
    /// solves and the DC operating point.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.opts.solver = solver;
        self.opts.dc.solver = solver;
        self
    }

    /// Finalizes the options.
    ///
    /// # Panics
    ///
    /// Panics if `tstop` or `dt` is not positive and finite.
    pub fn build(self) -> TransientOptions {
        let o = &self.opts;
        assert!(
            o.tstop.is_finite() && o.tstop > 0.0 && o.dt.is_finite() && o.dt > 0.0,
            "transient options: tstop and dt must be positive and finite"
        );
        self.opts
    }
}

/// Counters describing the work a transient run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransientStats {
    /// Accepted time steps.
    pub steps: usize,
    /// Total Newton iterations across all steps.
    pub newton_iterations: usize,
    /// Steps rejected by LTE control.
    pub rejected_steps: usize,
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    states: Vec<Vector>,
    probe: Vec<f64>,
    probe_index: Option<usize>,
    final_state: Vector,
    final_sensitivities: Vec<(Param, Vector)>,
    stats: TransientStats,
}

impl TransientResult {
    /// Assembles a final-only result from parts — for the batched lockstep
    /// engine, which builds the same fields outside [`run_core`].
    pub(crate) fn from_parts(
        times: Vec<f64>,
        final_state: Vector,
        final_sensitivities: Vec<(Param, Vector)>,
        stats: TransientStats,
    ) -> Self {
        TransientResult {
            times,
            states: Vec::new(),
            probe: Vec::new(),
            probe_index: None,
            final_state,
            final_sensitivities,
            stats,
        }
    }

    /// Accepted time points (includes `t = 0`).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Full state history (empty unless [`RecordMode::Full`]).
    pub fn states(&self) -> &[Vector] {
        &self.states
    }

    /// The state at `tstop`.
    pub fn final_state(&self) -> &Vector {
        &self.final_state
    }

    /// Final sensitivity `∂x/∂p (tstop)` for a propagated parameter.
    pub fn final_sensitivity(&self, param: Param) -> Option<&Vector> {
        self.final_sensitivities
            .iter()
            .find(|(p, _)| *p == param)
            .map(|(_, v)| v)
    }

    /// Work counters.
    pub fn stats(&self) -> &TransientStats {
        &self.stats
    }

    /// The trajectory of one unknown.
    ///
    /// Works in [`RecordMode::Full`] (any index) and [`RecordMode::Probe`]
    /// (the probed index); returns `None` otherwise.
    pub fn trajectory(&self, unknown: usize) -> Option<Vec<f64>> {
        self.series(unknown).map(|s| s.into_owned())
    }

    /// Borrowing access to a trajectory: the probe series is returned
    /// without copying; full-record series are extracted column-wise.
    fn series(&self, unknown: usize) -> Option<std::borrow::Cow<'_, [f64]>> {
        if let Some(p) = self.probe_index {
            if p == unknown {
                return Some(std::borrow::Cow::Borrowed(&self.probe));
            }
        }
        if !self.states.is_empty() {
            return Some(std::borrow::Cow::Owned(
                self.states.iter().map(|x| x[unknown]).collect(),
            ));
        }
        None
    }

    /// Linearly interpolates one unknown's value at time `t`.
    ///
    /// Returns `None` if the trajectory is unavailable or `t` is outside the
    /// simulated range.
    pub fn value_at(&self, unknown: usize, t: f64) -> Option<f64> {
        let traj = self.series(unknown)?;
        let times = &self.times;
        if times.is_empty() || t < times[0] || t > *times.last()? {
            return None;
        }
        let idx = times.partition_point(|&ti| ti < t);
        if idx == 0 {
            return Some(traj[0]);
        }
        let (t0, t1) = (times[idx - 1], times[idx.min(times.len() - 1)]);
        let (v0, v1) = (traj[idx - 1], traj[idx.min(traj.len() - 1)]);
        if t1 == t0 {
            return Some(v1);
        }
        Some(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// First time after `t_after` at which the unknown crosses `level` in
    /// the given direction, found by linear interpolation.
    pub fn crossing_time(
        &self,
        unknown: usize,
        level: f64,
        t_after: f64,
        direction: CrossingDirection,
    ) -> Option<f64> {
        let traj = self.series(unknown)?;
        for i in 1..self.times.len() {
            if self.times[i] <= t_after {
                continue;
            }
            let (v0, v1) = (traj[i - 1], traj[i]);
            let rising = v0 < level && v1 >= level;
            let falling = v0 > level && v1 <= level;
            let hit = match direction {
                CrossingDirection::Rising => rising,
                CrossingDirection::Falling => falling,
                CrossingDirection::Any => rising || falling,
            };
            if hit {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let frac = if v1 == v0 {
                    0.0
                } else {
                    (level - v0) / (v1 - v0)
                };
                return Some(t0 + frac * (t1 - t0));
            }
        }
        None
    }
}

/// Direction selector for [`TransientResult::crossing_time`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingDirection {
    /// Upward crossing.
    Rising,
    /// Downward crossing.
    Falling,
    /// Either direction.
    Any,
}

/// A configured transient analysis, ready to run for any skew values.
#[derive(Debug)]
pub struct TransientAnalysis<'a> {
    circuit: &'a Circuit,
    opts: TransientOptions,
}

impl<'a> TransientAnalysis<'a> {
    /// Binds options to a circuit.
    pub fn new(circuit: &'a Circuit, opts: TransientOptions) -> Self {
        TransientAnalysis { circuit, opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &TransientOptions {
        &self.opts
    }

    /// Runs the transient for the given skew parameters.
    ///
    /// Allocates a fresh [`TransientScratch`] for the run; callers that
    /// perform many runs on the same circuit (characterization sweeps)
    /// should hold one scratch per thread and use
    /// [`TransientAnalysis::run_with_scratch`] instead.
    ///
    /// # Errors
    ///
    /// Propagates DC, Newton, and step-control failures.
    pub fn run(&self, params: &Params) -> Result<TransientResult> {
        let mut scratch = TransientScratch::new(self.circuit.unknown_count());
        self.run_with_scratch(params, &mut scratch)
    }

    /// Runs the transient reusing a caller-owned workspace.
    ///
    /// After the scratch buffers are warm (one prior step anywhere in the
    /// scratch's lifetime), the stepping loop performs no matrix
    /// allocation: Newton residual/Jacobian/LU, the per-step stamps, and
    /// every sensitivity temporary live in `scratch`. The scratch is
    /// resized automatically if the circuit dimension changed.
    ///
    /// # Errors
    ///
    /// Propagates DC, Newton, and step-control failures.
    pub fn run_with_scratch(
        &self,
        params: &Params,
        scratch: &mut TransientScratch,
    ) -> Result<TransientResult> {
        // One span + one counter flush per *run* (not per step): the
        // stepping loop itself stays untouched by telemetry. The flush
        // happens on success AND failure so counters reconcile with the
        // work actually performed by aborted runs. The profiler frame
        // follows the same shape: run_core's lap accumulators flush
        // beneath it before it closes.
        let _span = shc_obs::span(shc_obs::SpanKind::Transient);
        let _frame = shc_prof::enter(shc_prof::Phase::Transient);
        shc_obs::count(shc_obs::Metric::TransientRuns, 1);
        let mut stats = TransientStats::default();
        let result = match self.injected_run_fault() {
            Some(e) => Err(e),
            None => self.run_core(params, scratch, &mut stats),
        };
        shc_prof::add_work(stats.steps as u64);
        if shc_obs::enabled() {
            shc_obs::observe(shc_obs::Metric::TransientSteps, stats.steps as u64);
            shc_obs::observe(
                shc_obs::Metric::NewtonIterations,
                stats.newton_iterations as u64,
            );
            shc_obs::observe(shc_obs::Metric::LteRejections, stats.rejected_steps as u64);
        }
        result
    }

    /// Deterministic fault hook for the whole-run site: maps an injected
    /// fault onto the error each real failure mode would produce.
    fn injected_run_fault(&self) -> Option<SpiceError> {
        let kind = shc_fault::check(shc_fault::Site::Transient)?;
        shc_obs::count(shc_obs::Metric::FaultsInjected, 1);
        Some(match kind {
            shc_fault::FaultKind::SingularMatrix => {
                SpiceError::Linalg(shc_linalg::LinalgError::Singular {
                    pivot: 0,
                    value: 0.0,
                })
            }
            shc_fault::FaultKind::NanResidual => SpiceError::NumericalBlowup { time: 0.0 },
            shc_fault::FaultKind::LteStall => SpiceError::TimestepTooSmall {
                time: 0.0,
                dt: self.opts.dt_min,
                rejected_steps: 0,
            },
            shc_fault::FaultKind::NonConvergence => SpiceError::NewtonDiverged {
                context: "transient run (injected fault)",
                iterations: 0,
                residual: f64::INFINITY,
            },
        })
    }

    /// The stepping loop proper; accumulates work counters into `stats`
    /// so [`TransientAnalysis::run_with_scratch`] can flush them to
    /// telemetry on both the success and the failure path.
    fn run_core(
        &self,
        params: &Params,
        scratch: &mut TransientScratch,
        stats: &mut TransientStats,
    ) -> Result<TransientResult> {
        let circuit = self.circuit;
        let opts = &self.opts;
        let n = circuit.unknown_count();
        scratch.ensure(n, opts.sensitivities.len());
        scratch.configure_solver(circuit, params, opts.solver)?;

        let x0 = match &opts.initial {
            InitialCondition::DcOperatingPoint => dcop::solve_dc(circuit, params, &opts.dc)?.x,
            InitialCondition::Given(x) => {
                if x.len() != n {
                    return Err(SpiceError::BadCircuit {
                        reason: format!(
                            "initial condition has {} entries, circuit has {n} unknowns",
                            x.len()
                        ),
                    });
                }
                x.clone()
            }
        };

        let mut times = vec![0.0];
        let mut states = Vec::new();
        let mut probe = Vec::new();
        let probe_index = match opts.record {
            RecordMode::Probe(i) => Some(i),
            _ => None,
        };
        match opts.record {
            RecordMode::Full => states.push(x0.clone()),
            RecordMode::Probe(i) => probe.push(x0[i]),
            RecordMode::FinalOnly => {}
        }

        // Sensitivities start at zero: x(0) is held fixed across skews
        // (the data pulse is at its rest level at t = 0).
        let mut sens: Vec<(Param, Vector)> = opts
            .sensitivities
            .iter()
            .map(|&p| (p, Vector::zeros(n)))
            .collect();

        // Borrow every workspace buffer up front as disjoint fields so the
        // Newton closure (which mutates `nr_stamps`) can coexist with the
        // shared borrows of the history stamps.
        let TransientScratch {
            newton: nw,
            nr_stamps,
            stamps_prev,
            stamps_new,
            stamps_hist,
            sens_jac,
            sens_lu,
            sens_sparse,
            sens_rhs,
            sens_tmp,
            cg_tmp,
            dfdp_tmp,
            zero_x,
            lte_pred,
            lte_err,
            hist_x,
            hist_sens,
            jac_pattern,
        } = scratch;

        // Sparse fast path: with the solver installed, every stamp clear
        // and Jacobian combine below touches only the probed pattern
        // positions — O(nnz) per Newton iteration instead of O(n²).
        let pattern: Option<&[(usize, usize)]> =
            nw.sparse_solver().is_some().then_some(&jac_pattern[..]);

        // Profiling accumulators, shared by `&` (all-`Cell` state) between
        // this loop, the assembly closure, and the Newton solver. With no
        // profiler installed both are inert: every call below reduces to a
        // branch on a struct flag, no clock read, no thread-local access.
        // The guard flushes them into the open `Transient` frame on every
        // exit path, including fault-injected aborts.
        let lap_step = shc_prof::Laps::step();
        let lap_iter = shc_prof::Laps::iter();
        let _prof_flush = ProfFlush {
            step: &lap_step,
            iter: &lap_iter,
            sparse: pattern.is_some(),
        };
        let device_work = circuit.device_count() as u64;

        // Previous-step quantities for the recursions.
        let mut x_prev = x0;
        let mut t_prev = 0.0;
        circuit.assemble_into(stamps_prev, &x_prev, 0.0, params, 1.0);
        let mut dfdp_prev: Vec<Vector> = opts
            .sensitivities
            .iter()
            .map(|&p| circuit.assemble_dfdp(0.0, params, p))
            .collect();
        // Time of the two-steps-ago state. While `Some`, that state lives
        // in the workspace history buffers: `hist_x` (the LTE predictor),
        // `stamps_hist` (Gear-2's q and C), and `hist_sens` (the old
        // sensitivities).
        let mut hist_t: Option<f64> = None;

        let mut dt = opts.dt.min(opts.tstop);

        while t_prev < opts.tstop - TSTOP_ENDPOINT_SLACK * opts.tstop.max(1.0) {
            let t_new = (t_prev + dt).min(opts.tstop);
            let dt_eff = t_new - t_prev;

            // Variable-step BDF2 coefficients for r = h1/h0:
            // c0·q_i − c1·q_{i−1} + c2·q_{i−2} + h1·f_i = 0,
            // c0 = (1+2r)/(1+r), c1 = 1+r, c2 = r²/(1+r).
            let gear_coeffs = hist_t.map(|t2| {
                let r_ = dt_eff / (t_prev - t2);
                (
                    (1.0 + 2.0 * r_) / (1.0 + r_),
                    1.0 + r_,
                    r_ * r_ / (1.0 + r_),
                )
            });

            // Newton solve of the discretized step equation. Residual and
            // Jacobian are built directly in the workspace buffers; no
            // allocation happens per iteration.
            let integ = opts.integrator;
            let mut assemble = |x: &Vector, r: &mut Vector, j: &mut Matrix| {
                // Re-arm the lap cursor so time between iterations is
                // never charged to the device loop.
                lap_iter.end_region(newton::lap::ITER_SELF);
                match pattern {
                    Some(p) => circuit.assemble_sparse_into(nr_stamps, x, t_new, params, 1.0, p),
                    None => circuit.assemble_into(nr_stamps, x, t_new, params, 1.0),
                }
                lap_iter.end_region(newton::lap::DEV);
                lap_iter.bump(newton::lap::DEV, 1, device_work);
                let s = &*nr_stamps;
                let (c_scale, a) = match integ {
                    Integrator::BackwardEuler => {
                        r.copy_from(&s.q);
                        r.axpy(-1.0, &stamps_prev.q);
                        r.axpy(dt_eff, &s.f);
                        (None, dt_eff)
                    }
                    Integrator::Trapezoidal => {
                        let half = 0.5 * dt_eff;
                        r.copy_from(&s.q);
                        r.axpy(-1.0, &stamps_prev.q);
                        r.axpy(half, &s.f);
                        r.axpy(half, &stamps_prev.f);
                        (None, half)
                    }
                    Integrator::Gear2 => match gear_coeffs {
                        Some((c0, c1, c2)) => {
                            r.copy_from(&s.q);
                            r.scale_mut(c0);
                            r.axpy(-c1, &stamps_prev.q);
                            r.axpy(c2, &stamps_hist.q);
                            r.axpy(dt_eff, &s.f);
                            (Some(c0), dt_eff)
                        }
                        None => {
                            // First step: Backward Euler.
                            r.copy_from(&s.q);
                            r.axpy(-1.0, &stamps_prev.q);
                            r.axpy(dt_eff, &s.f);
                            (None, dt_eff)
                        }
                    },
                };
                combine_step_jacobian_into(j, &s.c, &s.g, c_scale, a, pattern)?;
                lap_iter.end_region(newton::lap::STAMP);
                lap_iter.bump(newton::lap::STAMP, 1, n as u64);
                Ok(())
            };
            let solve_result = match newton::solve_in_place_lapped(
                nw,
                &x_prev,
                &opts.newton,
                Some(&lap_iter),
                &mut assemble,
            ) {
                // At the dt floor there is no smaller step to cut to, so a
                // divergence used to kill the whole run; try the damped
                // jittered-retry policy before giving up.
                Err(e @ SpiceError::NewtonDiverged { .. })
                    if dt_eff <= opts.dt_min * DT_FLOOR_SLACK =>
                {
                    newton::retry_in_place(
                        nw,
                        &x_prev,
                        &opts.newton,
                        NEWTON_FLOOR_RETRIES,
                        e,
                        &mut assemble,
                    )
                }
                // Under fault injection, retry at the same dt first: a fresh
                // solve draws a fresh fault decision, so this absorbs the
                // injected failure without perturbing the accepted step
                // sequence (see `NEWTON_FAULT_RETRIES`). Covers injected
                // LU faults surfacing through the solve as well; failures
                // that survive the retries fall through to the step-cut
                // policy below.
                Err(e) if shc_fault::enabled() && newton::retryable(&e) => newton::retry_in_place(
                    nw,
                    &x_prev,
                    &opts.newton,
                    NEWTON_FAULT_RETRIES,
                    e,
                    &mut assemble,
                ),
                other => other,
            };
            lap_step.end_region(LAP_NEWTON);

            let iterations = match solve_result {
                Ok(iters) => iters,
                Err(SpiceError::NewtonDiverged { .. }) if dt_eff > opts.dt_min * DT_FLOOR_SLACK => {
                    dt = (dt_eff / 4.0).max(opts.dt_min);
                    stats.rejected_steps += 1;
                    lap_step.bump(LAP_NEWTON, 1, 0);
                    continue;
                }
                Err(e) => return Err(e),
            };
            stats.newton_iterations += iterations;
            lap_step.bump(LAP_NEWTON, 1, iterations as u64);
            let x_new = nw.x();
            if !x_new.is_finite() {
                return Err(SpiceError::NumericalBlowup { time: t_new });
            }

            // LTE control (adaptive only, needs two history points).
            if opts.adaptive {
                if let Some(t2) = hist_t {
                    let dt_old = t_prev - t2;
                    if dt_old > 0.0 {
                        // pred = x_prev + (x_prev − x_hist)·(Δt_new/Δt_old)
                        lte_err.copy_from(&x_prev);
                        lte_err.axpy(-1.0, hist_x);
                        lte_pred.copy_from(&x_prev);
                        lte_pred.axpy(dt_eff / dt_old, lte_err);
                        lte_err.copy_from(x_new);
                        lte_err.axpy(-1.0, lte_pred);
                        let norm = lte_err.weighted_norm(x_new, opts.lte_reltol, opts.lte_abstol);
                        if norm > LTE_ACCEPT_NORM {
                            if dt_eff > opts.dt_min * DT_FLOOR_SLACK {
                                dt = (dt_eff * 0.5).max(opts.dt_min);
                                stats.rejected_steps += 1;
                                lap_step.end_region(LAP_LTE);
                                lap_step.bump(LAP_LTE, 1, 0);
                                continue;
                            }
                            // The LTE is still out of tolerance at the step
                            // floor: the integration has stalled. Abort with
                            // a typed diagnostic instead of silently
                            // accepting an inaccurate step.
                            stats.rejected_steps += 1;
                            return Err(SpiceError::TimestepTooSmall {
                                time: t_prev,
                                dt: dt_eff,
                                rejected_steps: stats.rejected_steps,
                            });
                        }
                        if norm < LTE_GROW_NORM {
                            dt = (dt_eff * 1.5).min(opts.dt_max);
                        }
                    }
                }
                lap_step.end_region(LAP_LTE);
                lap_step.bump(LAP_LTE, 1, 0);
            }

            // Accepted: re-stamp at the converged point for exact C_i, G_i,
            // q_i, f_i and the sensitivity solves.
            match pattern {
                Some(p) => circuit.assemble_sparse_into(stamps_new, x_new, t_new, params, 1.0, p),
                None => circuit.assemble_into(stamps_new, x_new, t_new, params, 1.0),
            }
            if !sens.is_empty() {
                let gear_sens_coeffs = if matches!(opts.integrator, Integrator::Gear2) {
                    gear_coeffs
                } else {
                    None
                };
                let (c_scale, a) = match (opts.integrator, &gear_sens_coeffs) {
                    (Integrator::BackwardEuler, _) => (None, dt_eff),
                    (Integrator::Trapezoidal, _) => (None, 0.5 * dt_eff),
                    (Integrator::Gear2, Some((c0, _, _))) => (Some(*c0), dt_eff),
                    (Integrator::Gear2, None) => (None, dt_eff), // first step: BE
                };
                combine_step_jacobian_into(
                    sens_jac,
                    &stamps_new.c,
                    &stamps_new.g,
                    c_scale,
                    a,
                    pattern,
                )?;
                // The sensitivity solves reuse whichever backend the
                // Newton path runs on, factoring the sensitivity Jacobian
                // once per accepted step and back-substituting per
                // parameter.
                enum SensSolver<'s> {
                    Dense(&'s mut LuFactor),
                    Sparse(&'s mut SparseJacSolver),
                }
                let mut sens_solver = if let Some(src) = nw.sparse_solver() {
                    let sp = match sens_sparse.as_mut() {
                        Some(sp) => sp,
                        // Cold, once per scratch lifetime: the clone
                        // shares the Newton solver's symbolic analysis.
                        None => sens_sparse.insert(src.clone()),
                    };
                    with_lu_fault_retries(|| sp.factor_from(sens_jac))?;
                    SensSolver::Sparse(sp)
                } else {
                    let lu = match sens_lu.as_mut() {
                        Some(lu) => {
                            with_lu_fault_retries(|| lu.refactor(sens_jac))?;
                            lu
                        }
                        None => sens_lu.insert(with_lu_fault_retries(|| LuFactor::new(sens_jac))?),
                    };
                    SensSolver::Dense(lu)
                };
                for (k, (param, m)) in sens.iter_mut().enumerate() {
                    circuit.assemble_dfdp_into(dfdp_tmp, zero_x, t_new, params, *param);
                    match (opts.integrator, &gear_sens_coeffs) {
                        (Integrator::BackwardEuler, _) | (Integrator::Gear2, None) => {
                            stamps_prev.c.mul_vec_into(m, sens_rhs);
                            sens_rhs.axpy(-dt_eff, dfdp_tmp);
                        }
                        (Integrator::Trapezoidal, _) => {
                            let half = 0.5 * dt_eff;
                            stamps_prev.c.mul_vec_into(m, sens_rhs);
                            stamps_prev.g.mul_vec_into(m, cg_tmp);
                            sens_rhs.axpy(-half, cg_tmp);
                            sens_rhs.axpy(-half, dfdp_tmp);
                            sens_rhs.axpy(-half, &dfdp_prev[k]);
                        }
                        (Integrator::Gear2, Some((_, c1, c2))) => {
                            stamps_prev.c.mul_vec_into(m, sens_rhs);
                            sens_rhs.scale_mut(*c1);
                            stamps_hist.c.mul_vec_into(&hist_sens[k], cg_tmp);
                            sens_rhs.axpy(-*c2, cg_tmp);
                            sens_rhs.axpy(-dt_eff, dfdp_tmp);
                        }
                    }
                    match &mut sens_solver {
                        SensSolver::Dense(lu) => {
                            with_lu_fault_retries(|| lu.solve_into(sens_rhs, sens_tmp))?;
                        }
                        SensSolver::Sparse(sp) => {
                            with_lu_fault_retries(|| sp.solve_into(sens_rhs, sens_tmp))?;
                        }
                    }
                    // Rotate: the pre-update m becomes the two-ago history.
                    mem::swap(&mut hist_sens[k], m);
                    m.copy_from(sens_tmp);
                    mem::swap(&mut dfdp_prev[k], dfdp_tmp);
                }
            }
            lap_step.end_region(LAP_SENS);
            lap_step.bump(LAP_SENS, 1, sens.len() as u64);

            stats.steps += 1;
            times.push(t_new);
            match opts.record {
                RecordMode::Full => states.push(x_new.clone()),
                RecordMode::Probe(i) => probe.push(x_new[i]),
                RecordMode::FinalOnly => {}
            }

            // History rotation, allocation-free: the previous step's state
            // and stamps become the two-ago buffers, and the freshly
            // stamped step becomes the previous one. The displaced two-ago
            // buffers are recycled as the next step's assembly targets.
            hist_t = Some(t_prev);
            mem::swap(hist_x, &mut x_prev);
            x_prev.copy_from(x_new);
            mem::swap(stamps_hist, stamps_prev);
            mem::swap(stamps_prev, stamps_new);
            t_prev = t_new;

            // In fixed-step mode a Newton-failure cut must not persist:
            // recover toward the configured step after each accepted step.
            if !opts.adaptive && dt < opts.dt {
                dt = (dt * 2.0).min(opts.dt);
            }

            if opts.adaptive && dt < opts.dt_min {
                return Err(SpiceError::TimestepTooSmall {
                    time: t_prev,
                    dt,
                    rejected_steps: stats.rejected_steps,
                });
            }
            lap_step.end_region(LAP_STEP_SELF);
        }

        Ok(TransientResult {
            times,
            states,
            probe,
            probe_index,
            final_state: x_prev,
            final_sensitivities: sens,
            stats: *stats,
        })
    }
}

/// Writes the step Jacobian `c_scale·C + a·G` into `j` (`c_scale` is
/// `None` for the integrators whose charge term is unscaled): densely, or
/// — when the sparse path supplies the probed pattern — only at the
/// pattern positions, leaving the structurally-zero remainder untouched.
/// The dense branch preserves the exact copy/scale/axpy arithmetic order
/// so the dense path stays bitwise identical to its golden history.
// lint: hot-fn
fn combine_step_jacobian_into(
    j: &mut Matrix,
    c: &Matrix,
    g: &Matrix,
    c_scale: Option<f64>,
    a: f64,
    pattern: Option<&[(usize, usize)]>,
) -> Result<()> {
    match pattern {
        Some(entries) => {
            let s = c_scale.unwrap_or(1.0);
            for &(row, col) in entries {
                j[(row, col)] = s * c[(row, col)] + a * g[(row, col)];
            }
        }
        None => {
            j.copy_from(c)?;
            if let Some(s) = c_scale {
                j.scale_mut(s);
            }
            j.axpy(a, g)?;
        }
    }
    Ok(())
}

/// Reusable per-run workspace for [`TransientAnalysis::run_with_scratch`].
///
/// A characterization sweep performs thousands of transient runs over a
/// fixed-dimension circuit; this workspace owns every per-step buffer —
/// the Newton iterate/residual/Jacobian/LU factors, the assembly stamps
/// for the current, previous, and two-steps-ago time points, the
/// sensitivity solve temporaries, and the LTE predictor scratch — so the
/// stepping loop performs no matrix allocation once the buffers are warm.
/// Not `Sync`: create one per thread when running sweeps in parallel.
#[derive(Debug)]
pub struct TransientScratch {
    newton: newton::NewtonWorkspace,
    nr_stamps: Stamps,
    stamps_prev: Stamps,
    stamps_new: Stamps,
    stamps_hist: Stamps,
    sens_jac: Matrix,
    sens_lu: Option<LuFactor>,
    /// Sparse-path sensitivity solver; created (cold) by cloning the
    /// Newton solver so both share one symbolic analysis.
    sens_sparse: Option<SparseJacSolver>,
    sens_rhs: Vector,
    sens_tmp: Vector,
    cg_tmp: Vector,
    dfdp_tmp: Vector,
    zero_x: Vector,
    lte_pred: Vector,
    lte_err: Vector,
    hist_x: Vector,
    hist_sens: Vec<Vector>,
    /// Copy of the sparse solver's Jacobian pattern (empty on the dense
    /// path), held outside the Newton workspace so the assembly closure
    /// can address the stamp matrices sparsely while the workspace is
    /// mutably borrowed by the solve.
    jac_pattern: Vec<(usize, usize)>,
}

impl TransientScratch {
    /// Creates a workspace for circuits with `n` MNA unknowns.
    pub fn new(n: usize) -> Self {
        TransientScratch {
            newton: newton::NewtonWorkspace::new(n),
            nr_stamps: Stamps::new(n),
            stamps_prev: Stamps::new(n),
            stamps_new: Stamps::new(n),
            stamps_hist: Stamps::new(n),
            sens_jac: Matrix::zeros(n, n),
            sens_lu: None,
            sens_sparse: None,
            sens_rhs: Vector::zeros(n),
            sens_tmp: Vector::zeros(n),
            cg_tmp: Vector::zeros(n),
            dfdp_tmp: Vector::zeros(n),
            zero_x: Vector::zeros(n),
            lte_pred: Vector::zeros(n),
            lte_err: Vector::zeros(n),
            hist_x: Vector::zeros(n),
            hist_sens: Vec::new(),
            jac_pattern: Vec::new(),
        }
    }

    /// The MNA dimension this workspace is currently sized for.
    pub fn dim(&self) -> usize {
        self.zero_x.len()
    }

    /// Resizes (re-allocating) only when the circuit dimension or
    /// sensitivity count changed since the last run.
    fn ensure(&mut self, n: usize, n_sens: usize) {
        if self.dim() != n {
            *self = TransientScratch::new(n);
        }
        if self.hist_sens.len() != n_sens {
            self.hist_sens = (0..n_sens).map(|_| Vector::zeros(n)).collect();
        }
    }

    /// Installs or validates the sparse solve path for one run.
    ///
    /// The guard is one pattern probe per run (an assembly at `x = 0`,
    /// no allocation once the probe buffer is warm); the symbolic
    /// analysis carried by an already-installed solver is reused whenever
    /// the circuit still probes to the same pattern, so repeated runs
    /// over one topology analyze exactly once.
    fn configure_solver(
        &mut self,
        circuit: &Circuit,
        params: &Params,
        choice: SolverChoice,
    ) -> Result<()> {
        if choice.wants_sparse(circuit.unknown_count()) {
            let reuse = match self.newton.sparse_solver_mut() {
                Some(sp) => sp.matches_pattern(circuit, &mut self.nr_stamps, &self.zero_x, params),
                None => false,
            };
            if !reuse {
                self.newton
                    .set_sparse_solver(Some(SparseJacSolver::new(circuit, params)?));
                self.sens_sparse = None;
            }
            // The hot loop addresses the stamp and Jacobian matrices only
            // at the pattern positions (O(nnz) per iteration); copy the
            // pattern out of the solver so the assembly closure can use it
            // while the Newton workspace is mutably borrowed, and give
            // every assembly buffer one full O(n²) clear per run to
            // establish the zero-outside-pattern invariant (a previous
            // dense run over a different same-size circuit may have left
            // stale off-pattern entries).
            self.jac_pattern.clear();
            if let Some(sp) = self.newton.sparse_solver() {
                self.jac_pattern.extend_from_slice(sp.pattern());
            }
            self.nr_stamps.clear();
            self.stamps_prev.clear();
            self.stamps_new.clear();
            self.stamps_hist.clear();
            self.sens_jac.fill_zero();
        } else {
            self.newton.set_sparse_solver(None);
            self.sens_sparse = None;
            self.jac_pattern.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::waveform::{DataPulse, RampShape, Waveform};
    use crate::Circuit;

    fn rc_circuit() -> (Circuit, usize) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-9));
        let out = c.unknown_of(vout).unwrap();
        (c, out)
    }

    #[test]
    fn rc_charging_matches_analytic_be() {
        let (c, out) = rc_circuit();
        // Start from v_out = 0 explicitly (DC would give the charged state).
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[c.unknown_of(c.find_node("in").unwrap()).unwrap()] = 1.0;
        let opts = TransientOptions::builder(2e-6)
            .dt(2e-9)
            .initial(InitialCondition::Given(x0))
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        // tau = 1us; at t = 1us, v = 1 - e^{-1} ≈ 0.6321.
        let v = res.value_at(out, 1e-6).unwrap();
        assert!((v - 0.6321).abs() < 5e-3, "v(tau) = {v}");
        let v_end = res.final_state()[out];
        assert!((v_end - (1.0 - (-2.0f64).exp())).abs() < 5e-3);
    }

    #[test]
    fn gear2_matches_analytic_rc_decay() {
        let (c, out) = rc_circuit();
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[0] = 1.0;
        let opts = TransientOptions::builder(1e-6)
            .dt(2e-8)
            .integrator(Integrator::Gear2)
            .initial(InitialCondition::Given(x0))
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        let err = (res.final_state()[out] - exact).abs();
        // Second order: visibly better than BE at the same step.
        assert!(err < 2e-3, "gear2 error {err}");
    }

    #[test]
    fn gear2_is_more_accurate_than_be() {
        let (c, out) = rc_circuit();
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[0] = 1.0;
        let exact = 1.0 - (-1.0f64).exp();
        let mut errs = Vec::new();
        for method in [Integrator::BackwardEuler, Integrator::Gear2] {
            let opts = TransientOptions::builder(1e-6)
                .dt(2e-8)
                .integrator(method)
                .initial(InitialCondition::Given(x0.clone()))
                .build();
            let res = TransientAnalysis::new(&c, opts)
                .run(&Params::default())
                .unwrap();
            errs.push((res.final_state()[out] - exact).abs());
        }
        assert!(
            errs[1] < errs[0] / 3.0,
            "gear2 err {} should beat BE err {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be() {
        let (c, out) = rc_circuit();
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[0] = 1.0;
        let exact = 1.0 - (-1.0f64).exp();
        let mut errs = Vec::new();
        for method in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
            let opts = TransientOptions::builder(1e-6)
                .dt(2e-8)
                .integrator(method)
                .initial(InitialCondition::Given(x0.clone()))
                .build();
            let res = TransientAnalysis::new(&c, opts)
                .run(&Params::default())
                .unwrap();
            errs.push((res.final_state()[out] - exact).abs());
        }
        assert!(
            errs[1] < errs[0] / 5.0,
            "trap err {} should beat BE err {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn dc_initial_condition_starts_settled() {
        let (c, out) = rc_circuit();
        let opts = TransientOptions::builder(1e-7).dt(1e-9).build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        // Already charged at t=0 from the DC solution: stays at 1V.
        assert!((res.final_state()[out] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn adaptive_takes_fewer_steps_on_smooth_problem() {
        let (c, _) = rc_circuit();
        let opts_fixed = TransientOptions::builder(2e-6).dt(1e-9).build();
        let fixed = TransientAnalysis::new(&c, opts_fixed)
            .run(&Params::default())
            .unwrap();
        let opts_adaptive = TransientOptions::builder(2e-6)
            .dt(1e-9)
            .adaptive(1e-11, 1e-7)
            .build();
        let adaptive = TransientAnalysis::new(&c, opts_adaptive)
            .run(&Params::default())
            .unwrap();
        assert!(adaptive.stats().steps < fixed.stats().steps / 2);
    }

    /// RC driven by the data pulse: sensitivity of the final state w.r.t.
    /// τs/τh must match a finite-difference estimate.
    #[test]
    fn forward_sensitivity_matches_finite_difference() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        let pulse = DataPulse {
            v_rest: 0.0,
            v_active: 1.0,
            t_edge: 5e-7,
            rise: 1e-7,
            fall: 1e-7,
            shape: RampShape::Smoothstep,
        };
        c.add(VoltageSource::new(
            "Vd",
            vin,
            Circuit::GROUND,
            Waveform::Data(pulse),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-10));
        let out = c.unknown_of(vout).unwrap();

        for method in [
            Integrator::BackwardEuler,
            Integrator::Trapezoidal,
            Integrator::Gear2,
        ] {
            let make_opts = || {
                TransientOptions::builder(8e-7)
                    .dt(1e-9)
                    .integrator(method)
                    .sensitivities(&Param::ALL)
                    .record(RecordMode::FinalOnly)
                    .build()
            };
            let base = Params::new(1e-7, 1e-7);
            let res = TransientAnalysis::new(&c, make_opts()).run(&base).unwrap();
            for param in Param::ALL {
                let analytic = res.final_sensitivity(param).unwrap()[out];
                let h = 1e-12;
                let plus = TransientAnalysis::new(&c, make_opts())
                    .run(&base.with(param, base.get(param) + h))
                    .unwrap()
                    .final_state()[out];
                let minus = TransientAnalysis::new(&c, make_opts())
                    .run(&base.with(param, base.get(param) - h))
                    .unwrap()
                    .final_state()[out];
                let fd = (plus - minus) / (2.0 * h);
                assert!(
                    (analytic - fd).abs() <= 2e-3 * fd.abs().max(1e3),
                    "{method:?} {param:?}: analytic {analytic:.6e}, fd {fd:.6e}"
                );
            }
        }
    }

    /// Acceptance guard for the hot-loop optimization: once the scratch is
    /// warm, a full transient run — Newton iterations, sensitivity solves,
    /// LU refactorizations, history rotation — must allocate zero matrices,
    /// for every integrator.
    #[test]
    fn warm_stepping_loop_allocates_no_matrices() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        let pulse = DataPulse {
            v_rest: 0.0,
            v_active: 1.0,
            t_edge: 2e-7,
            rise: 1e-7,
            fall: 1e-7,
            shape: RampShape::Smoothstep,
        };
        c.add(VoltageSource::new(
            "Vd",
            vin,
            Circuit::GROUND,
            Waveform::Data(pulse),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-10));

        for method in [
            Integrator::BackwardEuler,
            Integrator::Trapezoidal,
            Integrator::Gear2,
        ] {
            let opts = TransientOptions::builder(6e-7)
                .dt(1e-9)
                .integrator(method)
                .sensitivities(&Param::ALL)
                .record(RecordMode::FinalOnly)
                .initial(InitialCondition::Given(Vector::zeros(c.unknown_count())))
                .build();
            let analysis = TransientAnalysis::new(&c, opts);
            let params = Params::new(1e-7, 1e-7);
            let mut scratch = TransientScratch::new(c.unknown_count());
            let warm = analysis.run_with_scratch(&params, &mut scratch).unwrap();
            assert!(warm.stats().steps > 100, "test wants a real stepping loop");

            let before = shc_linalg::matrix_allocations();
            let res = analysis.run_with_scratch(&params, &mut scratch).unwrap();
            let allocated = shc_linalg::matrix_allocations() - before;
            assert_eq!(
                allocated,
                0,
                "{method:?}: {} steps allocated {allocated} matrices",
                res.stats().steps
            );
        }
    }

    /// Builds an RC delay chain behind the parameterized data pulse so
    /// sensitivity propagation has something real to track.
    fn rc_chain_with_pulse(stages: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut prev = c.node("in");
        let pulse = DataPulse {
            v_rest: 0.0,
            v_active: 1.0,
            t_edge: 2e-7,
            rise: 1e-7,
            fall: 1e-7,
            shape: RampShape::Smoothstep,
        };
        c.add(VoltageSource::new(
            "Vd",
            prev,
            Circuit::GROUND,
            Waveform::Data(pulse),
        ));
        for s in 0..stages {
            let node = c.node(&format!("n{s}"));
            c.add(Resistor::new(&format!("R{s}"), prev, node, 1e3));
            c.add(Capacitor::new(
                &format!("C{s}"),
                node,
                Circuit::GROUND,
                1e-11,
            ));
            prev = node;
        }
        c
    }

    /// The sparse path must reproduce the dense trajectory (state AND
    /// sensitivities) to solver tolerance on the same circuit, and the
    /// warm sparse stepping loop must stay matrix-allocation-free —
    /// including the per-run pattern re-probe and the shared-symbolic
    /// sensitivity solver.
    #[test]
    fn sparse_transient_matches_dense_and_keeps_warm_loop_allocation_free() {
        let c = rc_chain_with_pulse(30);
        let n = c.unknown_count();
        let params = Params::new(1e-7, 1e-7);
        let run = |choice: crate::SolverChoice, scratch: &mut TransientScratch| {
            let opts = TransientOptions::builder(6e-7)
                .dt(2e-9)
                .sensitivities(&Param::ALL)
                .record(RecordMode::FinalOnly)
                .initial(InitialCondition::Given(Vector::zeros(n)))
                .solver(choice)
                .build();
            TransientAnalysis::new(&c, opts)
                .run_with_scratch(&params, scratch)
                .unwrap()
        };

        let mut scratch = TransientScratch::new(n);
        let dense = run(crate::SolverChoice::Dense, &mut scratch);
        let sparse = run(crate::SolverChoice::Sparse, &mut scratch);
        assert_eq!(dense.stats().steps, sparse.stats().steps);
        let diff = dense.final_state().sub(sparse.final_state()).norm_inf();
        assert!(diff < 1e-9, "sparse vs dense final state: {diff:e}");
        for p in Param::ALL {
            let md = dense.final_sensitivity(p).unwrap();
            let ms = sparse.final_sensitivity(p).unwrap();
            let sdiff = md.sub(ms).norm_inf();
            assert!(sdiff < 1e-6 * md.norm_inf().max(1.0), "{p:?}: {sdiff:e}");
        }

        // The sparse scratch is warm now: a repeat run (pattern re-probe,
        // Newton refactors, sensitivity solves) must allocate nothing.
        let before = shc_linalg::matrix_allocations();
        let warm = run(crate::SolverChoice::Sparse, &mut scratch);
        let allocated = shc_linalg::matrix_allocations() - before;
        assert!(warm.stats().steps > 100, "test wants a real stepping loop");
        assert_eq!(
            allocated, 0,
            "warm sparse run allocated {allocated} matrix/sparse buffers"
        );
    }

    /// The sparse work counters must reconcile with the run shape: one
    /// analysis per topology, one fresh factor, refactors on every later
    /// Newton iteration, and a solve per iteration plus two per accepted
    /// step for the sensitivities.
    #[test]
    fn sparse_transient_work_counters_reconcile() {
        let c = rc_chain_with_pulse(20);
        let n = c.unknown_count();
        let params = Params::new(1e-7, 1e-7);
        let opts = TransientOptions::builder(4e-7)
            .dt(4e-9)
            .sensitivities(&Param::ALL)
            .record(RecordMode::FinalOnly)
            .initial(InitialCondition::Given(Vector::zeros(n)))
            .solver(crate::SolverChoice::Sparse)
            .build();
        let collector = shc_obs::Collector::new();
        let stats = {
            let _guard = shc_obs::install_scoped(&collector);
            *TransientAnalysis::new(&c, opts)
                .run(&params)
                .unwrap()
                .stats()
        };
        let snap = collector.snapshot();
        assert_eq!(snap.counter(shc_obs::Metric::SparseAnalyses), 1);
        let factors = snap.counter(shc_obs::Metric::SparseFactors);
        let refactors = snap.counter(shc_obs::Metric::SparseRefactors);
        let solves = snap.counter(shc_obs::Metric::SparseSolves);
        // The Newton path factors once per iteration (the first via
        // `SparseLu::new`, later ones as refactors); the sensitivity
        // solver — a clone carrying warm factors — refactors once per
        // accepted step.
        assert!(factors >= 1, "factors = {factors}");
        assert_eq!(
            factors + refactors,
            stats.newton_iterations as u64 + stats.steps as u64,
            "factor work must match newton + sensitivity factorizations"
        );
        assert_eq!(
            solves,
            stats.newton_iterations as u64 + 2 * stats.steps as u64,
            "solve count must match newton iterations + 2 sens solves/step"
        );
    }

    /// Telemetry must be free where it matters: with a collector installed
    /// the warm stepping loop still allocates zero matrices, produces a
    /// bitwise-identical final state, and the collector's per-run flush
    /// sees the true step counts.
    #[test]
    fn telemetry_keeps_warm_loop_allocation_free_and_bitwise_identical() {
        let (c, _) = rc_circuit();
        // Pin the initial condition so the (allocating) DC operating-point
        // solve stays out of the measured loop, as in the test above.
        let opts = TransientOptions::builder(2e-6)
            .dt(2e-9)
            .integrator(Integrator::Gear2)
            .initial(InitialCondition::Given(Vector::zeros(c.unknown_count())))
            .build();
        let analysis = TransientAnalysis::new(&c, opts);
        let params = Params::default();
        let mut scratch = TransientScratch::new(c.unknown_count());
        let quiet = analysis.run_with_scratch(&params, &mut scratch).unwrap();
        let quiet_state = quiet.final_state().clone();
        let quiet_stats = *quiet.stats();

        let collector = shc_obs::Collector::new();
        let _guard = shc_obs::install_scoped(&collector);
        let before = shc_linalg::matrix_allocations();
        let observed = analysis.run_with_scratch(&params, &mut scratch).unwrap();
        let allocated = shc_linalg::matrix_allocations() - before;

        assert_eq!(allocated, 0, "telemetry allocated {allocated} matrices");
        assert_eq!(observed.final_state().as_slice(), quiet_state.as_slice());
        assert_eq!(*observed.stats(), quiet_stats);
        let snap = collector.snapshot();
        assert_eq!(snap.counter(shc_obs::Metric::TransientRuns), 1);
        assert_eq!(
            snap.counter(shc_obs::Metric::TransientSteps),
            quiet_stats.steps as u64
        );
        assert_eq!(
            snap.counter(shc_obs::Metric::NewtonIterations),
            quiet_stats.newton_iterations as u64
        );
        assert_eq!(snap.counter(shc_obs::Metric::MatrixAllocations), 0);
    }

    /// A PWL discontinuity the LTE tolerance cannot absorb even at the
    /// step floor: the adaptive stepper must abort with a typed
    /// diagnostic carrying the rejection count, and the telemetry flushed
    /// on the failure path must reconcile with the work actually done.
    #[test]
    fn lte_stall_at_dt_floor_aborts_with_populated_diagnostics() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1.0e-6, 0.0), (1.0e-6 + 1e-12, 5.0)]),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-9));
        let mut opts = TransientOptions::builder(2e-6)
            .dt(2e-9)
            .adaptive(1e-9, 1e-8)
            .build();
        opts.lte_reltol = 1e-9;
        opts.lte_abstol = 1e-9;

        let collector = shc_obs::Collector::new();
        let err = {
            let _guard = shc_obs::install_scoped(&collector);
            TransientAnalysis::new(&c, opts)
                .run(&Params::default())
                .unwrap_err()
        };
        match err {
            SpiceError::TimestepTooSmall {
                time,
                dt,
                rejected_steps,
            } => {
                assert!(rejected_steps >= 1, "rejections {rejected_steps}");
                assert!(dt <= 1e-9 * (1.0 + 1e-9), "dt {dt}");
                assert!(time > 0.5e-6, "stalled at t = {time}");
                let snap = collector.snapshot();
                assert_eq!(snap.counter(shc_obs::Metric::TransientRuns), 1);
                assert_eq!(
                    snap.counter(shc_obs::Metric::LteRejections),
                    rejected_steps as u64,
                    "every rejection must be flushed despite the abort"
                );
                assert!(snap.counter(shc_obs::Metric::TransientSteps) > 0);
            }
            other => panic!("expected TimestepTooSmall, got {other}"),
        }
    }

    /// `run` and `run_with_scratch` must be observably identical.
    #[test]
    fn scratch_reuse_is_bitwise_identical_to_fresh_runs() {
        let (c, out) = rc_circuit();
        let make_opts = || {
            TransientOptions::builder(2e-6)
                .dt(2e-9)
                .adaptive(1e-10, 5e-8)
                .integrator(Integrator::Gear2)
                .build()
        };
        let fresh = TransientAnalysis::new(&c, make_opts())
            .run(&Params::default())
            .unwrap();
        let mut scratch = TransientScratch::new(c.unknown_count());
        let analysis = TransientAnalysis::new(&c, make_opts());
        for _ in 0..2 {
            let reused = analysis
                .run_with_scratch(&Params::default(), &mut scratch)
                .unwrap();
            assert_eq!(reused.times(), fresh.times());
            assert_eq!(
                reused.final_state().as_slice(),
                fresh.final_state().as_slice()
            );
            assert_eq!(reused.series(out), fresh.series(out));
        }
    }

    #[test]
    fn crossing_time_and_interpolation() {
        let (c, out) = rc_circuit();
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[0] = 1.0;
        let opts = TransientOptions::builder(5e-6)
            .dt(5e-9)
            .initial(InitialCondition::Given(x0))
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        // v crosses 0.5 at t = tau·ln2 ≈ 0.693 µs.
        let t50 = res
            .crossing_time(out, 0.5, 0.0, CrossingDirection::Rising)
            .unwrap();
        assert!((t50 - 0.693e-6).abs() < 1e-8, "t50 = {t50:e}");
        assert!(res
            .crossing_time(out, 0.5, 4e-6, CrossingDirection::Rising)
            .is_none());
        assert!(res
            .crossing_time(out, 0.5, 0.0, CrossingDirection::Falling)
            .is_none());
        assert!(res.value_at(out, -1.0).is_none());
        assert!(res.value_at(out, 9e-6).is_none());
    }

    #[test]
    fn probe_mode_records_single_trajectory() {
        let (c, out) = rc_circuit();
        let opts = TransientOptions::builder(1e-7)
            .dt(1e-9)
            .record(RecordMode::Probe(out))
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        assert!(res.states().is_empty());
        assert!(res.trajectory(out).is_some());
        assert!(res.trajectory(out + 1).is_none());
        assert_eq!(res.trajectory(out).unwrap().len(), res.times().len());
    }

    #[test]
    fn final_only_mode_keeps_nothing_but_final() {
        let (c, out) = rc_circuit();
        let opts = TransientOptions::builder(1e-7)
            .dt(1e-9)
            .record(RecordMode::FinalOnly)
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        assert!(res.states().is_empty());
        assert!(res.trajectory(out).is_none());
        assert_eq!(res.final_state().len(), c.unknown_count());
    }

    #[test]
    fn bad_initial_condition_length_rejected() {
        let (c, _) = rc_circuit();
        let opts = TransientOptions::builder(1e-7)
            .dt(1e-9)
            .initial(InitialCondition::Given(Vector::zeros(1)))
            .build();
        let err = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap_err();
        assert!(matches!(err, SpiceError::BadCircuit { .. }));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_bad_tstop() {
        let _ = TransientOptions::builder(-1.0).build();
    }
}
