//! # shc-spice
//!
//! A from-scratch SPICE-class analog circuit simulator, built as the
//! substrate for interdependent setup/hold characterization (DAC 2007,
//! Srivastava & Roychowdhury).
//!
//! The simulator solves circuits formulated as the vector
//! differential-algebraic equation of the paper's eq. (1):
//!
//! ```text
//! d/dt q(x) + f(x) + b(t) = 0
//! ```
//!
//! where `x` stacks node voltages and voltage-source branch currents
//! (modified nodal analysis). It provides:
//!
//! - a netlist builder ([`Circuit`]) with resistors, capacitors, voltage and
//!   current sources, and a C¹-smoothed Shichman-Hodges (level-1) MOSFET;
//! - DC operating-point analysis with gmin and source stepping
//!   ([`dcop`]);
//! - transient analysis with Backward-Euler and Trapezoidal integration,
//!   fixed or LTE-adaptive time steps ([`transient`]);
//! - **forward sensitivity propagation** `∂x/∂τs`, `∂x/∂τh` for parameters
//!   entering through source waveforms — the paper's eqs. (9)–(13) — with
//!   the step Jacobian factored once and reused for the sensitivity solves;
//! - the parameterized data waveform `u_d(t, τs, τh)` of the paper's Fig. 2,
//!   with analytic `∂u_d/∂τs` and `∂u_d/∂τh` ([`waveform::DataPulse`]).
//!
//! # Example: RC step response
//!
//! ```rust
//! use shc_spice::{Circuit, Resistor, Capacitor, VoltageSource, Waveform};
//! use shc_spice::transient::{TransientAnalysis, TransientOptions};
//! use shc_spice::waveform::Params;
//!
//! # fn main() -> Result<(), shc_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add(VoltageSource::new("V1", vin, Circuit::GROUND, Waveform::dc(1.0)));
//! ckt.add(Resistor::new("R1", vin, vout, 1e3));
//! ckt.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-9));
//!
//! let opts = TransientOptions::builder(5e-6).dt(1e-8).build();
//! let result = TransientAnalysis::new(&ckt, opts).run(&Params::default())?;
//! let v_end = result.final_state()[ckt.unknown_of(vout).expect("not ground")];
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 5 time constants
//! # Ok(())
//! # }
//! ```

pub mod adjoint;
pub mod batch;
pub mod circuit;
pub mod dcop;
pub mod devices;
mod error;
pub mod measure;
pub mod netlist;
pub mod newton;
pub mod solver;
pub mod stamp;
pub mod transient;
pub mod waveform;

pub use batch::BatchPolicy;
pub use circuit::{Circuit, Node};
pub use devices::{
    Capacitor, CurrentSource, Diode, Inductor, MosParams, MosPolarity, Mosfet, Resistor, Vccs,
    Vcvs, VoltageSource,
};
pub use error::SpiceError;
pub use solver::SolverChoice;
pub use waveform::{Param, Params, RampShape, Waveform};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, SpiceError>;
