//! Netlist representation and MNA unknown bookkeeping.

use std::collections::HashMap;
use std::fmt;

use shc_linalg::{Matrix, Vector};

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper, Stamps};
use crate::waveform::{Param, Params};
use crate::{Result, SpiceError};

/// A circuit node handle.
///
/// Node `0` is ground and carries no KCL equation; all other nodes map to
/// one MNA unknown each. Obtain nodes from [`Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Whether this node is the ground reference.
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }

    /// The MNA unknown (equation) index of this node, or `None` for ground.
    pub fn unknown(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A circuit netlist: named nodes plus a list of devices.
///
/// Unknown layout: node voltages first (node id − 1), then voltage-source
/// branch currents in insertion order.
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Resistor};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
/// assert_eq!(ckt.unknown_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, Node>,
    devices: Vec<Box<dyn Device>>,
    n_branches: usize,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut name_to_node = HashMap::new();
        name_to_node.insert("0".to_string(), Node(0));
        Circuit {
            node_names: vec!["0".to_string()],
            name_to_node,
            devices: Vec::new(),
            n_branches: 0,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    ///
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> Node {
        if let Some(&n) = self.name_to_node.get(name) {
            return n;
        }
        let n = Node(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), n);
        n
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        self.name_to_node.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_names[node.0]
    }

    /// Adds a device to the netlist, allocating branch unknowns if the
    /// device needs them (e.g. voltage sources).
    pub fn add<D: Device + 'static>(&mut self, mut device: D) -> &mut Self {
        let branches = device.branch_count();
        if branches > 0 {
            device.set_branch_start(self.n_branches);
            self.n_branches += branches;
        }
        self.devices.push(Box::new(device));
        self
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Number of branch-current unknowns.
    pub fn branch_count(&self) -> usize {
        self.n_branches
    }

    /// Total number of MNA unknowns.
    pub fn unknown_count(&self) -> usize {
        self.node_count() + self.n_branches
    }

    /// The MNA unknown index of a node voltage, or `None` for ground.
    pub fn unknown_of(&self, node: Node) -> Option<usize> {
        node.unknown()
    }

    /// The MNA unknown index of branch `b` (0-based, in insertion order).
    pub fn branch_unknown(&self, b: usize) -> usize {
        self.node_count() + b
    }

    /// Iterates over the devices in insertion order.
    pub fn devices(&self) -> impl Iterator<Item = &dyn Device> {
        self.devices.iter().map(|d| d.as_ref())
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Validates the netlist: non-empty, and every unknown has at least one
    /// stamp touching it (rough floating-node detection via the G/C pattern
    /// at a nominal bias).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadCircuit`] if the netlist is empty or a node
    /// is completely disconnected.
    pub fn validate(&self) -> Result<()> {
        if self.devices.is_empty() {
            return Err(SpiceError::BadCircuit {
                reason: "empty netlist".to_string(),
            });
        }
        let n = self.unknown_count();
        let x = Vector::zeros(n);
        let stamps = self.assemble(&x, 0.0, &Params::default(), 1.0);
        for i in 0..n {
            let touched = (0..n).any(|j| stamps.g[(i, j)] != 0.0 || stamps.c[(i, j)] != 0.0);
            if !touched {
                return Err(SpiceError::BadCircuit {
                    reason: format!("unknown {i} has no device connection"),
                });
            }
        }
        Ok(())
    }

    /// Assembles the MNA quantities at state `x`, time `t`:
    /// charge vector `q(x)`, current residual `f(x, t)` (devices plus
    /// sources), and their Jacobians `C = ∂q/∂x`, `G = ∂f/∂x`.
    ///
    /// `source_scale` multiplies all independent sources (used by DC
    /// source-stepping homotopy); pass `1.0` for normal analyses.
    ///
    /// effects: alloc, assert
    pub fn assemble(&self, x: &Vector, t: f64, params: &Params, source_scale: f64) -> Stamps {
        let n = self.unknown_count();
        let mut stamps = Stamps::new(n);
        self.assemble_into(&mut stamps, x, t, params, source_scale);
        stamps
    }

    /// Like [`Circuit::assemble`] but reuses an existing [`Stamps`]
    /// workspace (zeroed first) to avoid allocation in inner loops.
    ///
    /// # Panics
    ///
    /// Panics if the workspace dimension does not match the circuit.
    ///
    /// effects: assert
    // lint: hot-fn
    pub fn assemble_into(
        &self,
        stamps: &mut Stamps,
        x: &Vector,
        t: f64,
        params: &Params,
        source_scale: f64,
    ) {
        assert_eq!(
            stamps.dim(),
            self.unknown_count(),
            "stamps workspace has wrong dimension"
        );
        stamps.clear();
        let ctx = EvalContext {
            x,
            t,
            params,
            source_scale,
            node_offset: self.node_count(),
        };
        let mut stamper = Stamper::new(stamps);
        for device in &self.devices {
            device.stamp(&mut stamper, &ctx);
        }
    }

    /// Like [`Circuit::assemble_into`] but clears the Jacobian workspaces
    /// via [`Stamps::clear_pattern`] — `O(nnz)` instead of `O(n²)` — so the
    /// sparse-direct Newton path pays no dense bookkeeping per iteration.
    ///
    /// `pattern` must cover this circuit's [`Circuit::jacobian_pattern`],
    /// and `stamps` must not hold nonzeros outside that pattern (give it a
    /// full [`Stamps::clear`] first when its history is unknown).
    ///
    /// # Panics
    ///
    /// Panics if the workspace dimension does not match the circuit.
    ///
    /// effects: assert
    // lint: hot-fn
    pub fn assemble_sparse_into(
        &self,
        stamps: &mut Stamps,
        x: &Vector,
        t: f64,
        params: &Params,
        source_scale: f64,
        pattern: &[(usize, usize)],
    ) {
        assert_eq!(
            stamps.dim(),
            self.unknown_count(),
            "stamps workspace has wrong dimension"
        );
        stamps.clear_pattern(pattern);
        let ctx = EvalContext {
            x,
            t,
            params,
            source_scale,
            node_offset: self.node_count(),
        };
        let mut stamper = Stamper::new(stamps);
        for device in &self.devices {
            device.stamp(&mut stamper, &ctx);
        }
    }

    /// Records the sparsity pattern of the step Jacobian `C·a + G`.
    ///
    /// Device stamping is pattern-preserving — the set of `(eq, var)`
    /// positions touched depends only on the topology — so a single probe
    /// assembly at `x = 0`, `t = 0` captures the structure for every
    /// evaluation point. Every diagonal position is included as well
    /// (integrators and the DC `gmin` shunt stamp the diagonal, and sparse
    /// LU pivoting prefers a structurally present diagonal). The result is
    /// sorted by `(row, col)` and duplicate-free, which matches the storage
    /// order of [`shc_linalg::CsrMatrix::from_triplets`].
    pub fn jacobian_pattern(&self, params: &Params) -> Vec<(usize, usize)> {
        let n = self.unknown_count();
        let mut stamps = Stamps::new(n);
        let x = Vector::zeros(n);
        let mut entries = Vec::new();
        self.assemble_pattern_into(&mut stamps, &x, params, &mut entries);
        entries
    }

    /// Like [`Circuit::jacobian_pattern`] but writes into caller-provided
    /// buffers so per-run pattern re-probes stay allocation-free (beyond
    /// `entries` growth). `x_zero` must be an all-zero vector of the
    /// unknown count; `stamps` is clobbered as scratch.
    ///
    /// # Panics
    ///
    /// Panics if a buffer dimension does not match the circuit.
    pub fn assemble_pattern_into(
        &self,
        stamps: &mut Stamps,
        x_zero: &Vector,
        params: &Params,
        entries: &mut Vec<(usize, usize)>,
    ) {
        assert_eq!(
            stamps.dim(),
            self.unknown_count(),
            "stamps workspace has wrong dimension"
        );
        assert_eq!(
            x_zero.len(),
            self.unknown_count(),
            "x workspace has wrong dimension"
        );
        stamps.clear();
        entries.clear();
        let ctx = EvalContext {
            x: x_zero,
            t: 0.0,
            params,
            source_scale: 1.0,
            node_offset: self.node_count(),
        };
        let mut stamper = Stamper::with_pattern(stamps, entries);
        for device in &self.devices {
            device.stamp(&mut stamper, &ctx);
        }
        for i in 0..self.unknown_count() {
            entries.push((i, i));
        }
        entries.sort_unstable();
        entries.dedup();
    }

    /// Assembles the parameter derivative of the residual,
    /// `∂f/∂param = b_d · z(t)` in the paper's notation (eqs. (9), (12)).
    pub fn assemble_dfdp(&self, t: f64, params: &Params, param: Param) -> Vector {
        let mut dfdp = Vector::zeros(self.unknown_count());
        let x = Vector::zeros(self.unknown_count());
        self.assemble_dfdp_into(&mut dfdp, &x, t, params, param);
        dfdp
    }

    /// Like [`Circuit::assemble_dfdp`] but writes into caller-provided
    /// buffers (zeroing `dfdp` first) to avoid allocation in inner loops.
    /// `x_zero` must be an all-zero vector of the unknown count; it only
    /// feeds the evaluation context, whose state is unused by source
    /// derivatives.
    ///
    /// # Panics
    ///
    /// Panics if a buffer dimension does not match the circuit.
    pub fn assemble_dfdp_into(
        &self,
        dfdp: &mut Vector,
        x_zero: &Vector,
        t: f64,
        params: &Params,
        param: Param,
    ) {
        assert_eq!(
            dfdp.len(),
            self.unknown_count(),
            "dfdp workspace has wrong dimension"
        );
        assert_eq!(
            x_zero.len(),
            self.unknown_count(),
            "x workspace has wrong dimension"
        );
        dfdp.fill_zero();
        let ctx = EvalContext {
            x: x_zero,
            t,
            params,
            source_scale: 1.0,
            node_offset: self.node_count(),
        };
        for device in &self.devices {
            device.stamp_param_derivative(dfdp, &ctx, param);
        }
    }

    /// Builds the combined Jacobian `C·a + G` used by implicit integrators
    /// (`a = 1/Δt` for BE after scaling, etc.).
    ///
    /// # Errors
    ///
    /// [`crate::SpiceError::Linalg`] when `c` and `g` differ in shape —
    /// i.e. the stamps come from two different circuits.
    pub fn combine_jacobian(c: &Matrix, g: &Matrix, a: f64) -> crate::Result<Matrix> {
        let mut j = c.scale(a);
        j.axpy(1.0, g)?;
        Ok(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    #[test]
    fn ground_has_no_unknown() {
        assert!(Circuit::GROUND.is_ground());
        assert_eq!(Circuit::GROUND.unknown(), None);
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut c = Circuit::new();
        let a1 = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a1, a2);
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.find_node("a"), Some(a1));
        assert_eq!(c.find_node("zz"), None);
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node_name(a1), "a");
    }

    #[test]
    fn unknown_layout_nodes_then_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Resistor::new("R1", a, b, 1e3));
        c.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.branch_count(), 1);
        assert_eq!(c.unknown_count(), 3);
        assert_eq!(c.unknown_of(a), Some(0));
        assert_eq!(c.unknown_of(b), Some(1));
        assert_eq!(c.branch_unknown(0), 2);
        assert_eq!(c.device_count(), 3);
    }

    #[test]
    fn validate_rejects_empty_and_floating() {
        let c = Circuit::new();
        assert!(matches!(c.validate(), Err(SpiceError::BadCircuit { .. })));

        let mut c = Circuit::new();
        let a = c.node("a");
        let _floating = c.node("float");
        c.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
        assert!(matches!(c.validate(), Err(SpiceError::BadCircuit { .. })));
    }

    #[test]
    fn assemble_voltage_divider_residual() {
        // V1 = 2V into R1=R2=1k divider; at the exact solution the residual
        // must vanish.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(2.0),
        ));
        c.add(Resistor::new("R1", a, b, 1e3));
        c.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
        // Solution: v_a = 2, v_b = 1, i_v = -(current out of + terminal) = -1mA.
        let x = Vector::from_slice(&[2.0, 1.0, -1e-3]);
        let stamps = c.assemble(&x, 0.0, &Params::default(), 1.0);
        assert!(stamps.f.norm_inf() < 1e-12, "residual {}", stamps.f);
    }

    #[test]
    fn assemble_into_reuses_workspace() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
        c.add(Capacitor::new("C1", a, Circuit::GROUND, 1e-12));
        let mut ws = Stamps::new(c.unknown_count());
        let x = Vector::from_slice(&[1.0]);
        c.assemble_into(&mut ws, &x, 0.0, &Params::default(), 1.0);
        assert!((ws.f[0] - 1e-3).abs() < 1e-15);
        assert!((ws.q[0] - 1e-12).abs() < 1e-24);
        // Second assembly must not accumulate.
        c.assemble_into(&mut ws, &x, 0.0, &Params::default(), 1.0);
        assert!((ws.f[0] - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn combine_jacobian_scales_c() {
        let c = Matrix::identity(2);
        let g = Matrix::identity(2).scale(3.0);
        let j = Circuit::combine_jacobian(&c, &g, 10.0).unwrap();
        assert_eq!(j[(0, 0)], 13.0);
    }
}
