//! Damped Newton-Raphson driver shared by DC and transient analyses.

use shc_linalg::{LuFactor, Matrix, Vector};

use crate::{Result, SpiceError};

/// Convergence and robustness settings for Newton-Raphson.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Relative tolerance on the solution update.
    pub reltol: f64,
    /// Absolute tolerance on the solution update (volts/amps).
    pub abstol: f64,
    /// Maximum iterations before declaring divergence.
    pub max_iters: usize,
    /// Per-iteration cap on any single unknown's update magnitude
    /// (voltage limiting); `f64::INFINITY` disables damping.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            max_iters: 60,
            max_step: 0.5,
        }
    }
}

/// Outcome of a converged Newton solve.
#[derive(Debug)]
pub struct NewtonSolution {
    /// The converged state.
    pub x: Vector,
    /// Iterations used.
    pub iterations: usize,
    /// LU factors of the last Jacobian — reusable for sensitivity solves
    /// without re-factoring (the efficiency trick of the paper's eq. (11)).
    pub jacobian_lu: LuFactor,
}

/// Solves `F(x) = 0` with damped Newton-Raphson.
///
/// `assemble` must return the residual `F(x)` and Jacobian `∂F/∂x` at the
/// trial point. Convergence is declared when the weighted update norm
/// `max_i |Δx_i| / (reltol·|x_i| + abstol)` drops to `≤ 1`.
///
/// # Errors
///
/// - [`SpiceError::NewtonDiverged`] after `max_iters` iterations;
/// - [`SpiceError::NumericalBlowup`] if a non-finite value appears;
/// - propagated linear-solver failures.
pub fn solve<F>(x0: &Vector, opts: &NewtonOptions, mut assemble: F) -> Result<NewtonSolution>
where
    F: FnMut(&Vector) -> Result<(Vector, Matrix)>,
{
    let mut x = x0.clone();
    let mut last_norm = f64::INFINITY;

    for iter in 1..=opts.max_iters {
        let (residual, jacobian) = assemble(&x)?;
        if !residual.is_finite() || !jacobian.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        let lu = jacobian.lu()?;
        let mut delta = lu.solve(&residual)?;
        // Newton step is x ← x − J⁻¹F.
        for d in delta.iter_mut() {
            *d = -*d;
            if d.abs() > opts.max_step {
                *d = d.signum() * opts.max_step;
            }
        }
        let norm = delta.weighted_norm(&x, opts.reltol, opts.abstol);
        x = x.add(&delta);
        if !x.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        last_norm = norm;
        if norm <= 1.0 {
            return Ok(NewtonSolution {
                x,
                iterations: iter,
                jacobian_lu: lu,
            });
        }
    }

    Err(SpiceError::NewtonDiverged {
        context: "newton solve",
        iterations: opts.max_iters,
        residual: last_norm,
    })
}

/// Reusable buffers for [`solve_in_place`].
///
/// A transient analysis performs one Newton solve per time step with a
/// fixed system dimension; allocating the iterate, update, residual,
/// Jacobian, and LU factors once per *run* instead of once per *iteration*
/// removes every per-step heap allocation from the Newton path.
#[derive(Debug)]
pub struct NewtonWorkspace {
    x: Vector,
    delta: Vector,
    residual: Vector,
    jacobian: Matrix,
    lu: Option<LuFactor>,
}

impl NewtonWorkspace {
    /// Creates a workspace for systems of dimension `n`.
    pub fn new(n: usize) -> Self {
        NewtonWorkspace {
            x: Vector::zeros(n),
            delta: Vector::zeros(n),
            residual: Vector::zeros(n),
            jacobian: Matrix::zeros(n, n),
            lu: None,
        }
    }

    /// System dimension this workspace was sized for.
    pub fn dim(&self) -> usize {
        self.x.len()
    }

    /// The iterate; after a successful [`solve_in_place`] this is the
    /// converged state.
    pub fn x(&self) -> &Vector {
        &self.x
    }

    /// LU factors of the most recently factored Jacobian, if any —
    /// reusable for sensitivity solves without re-factoring.
    pub fn jacobian_lu(&self) -> Option<&LuFactor> {
        self.lu.as_ref()
    }
}

/// Allocation-free variant of [`solve`] operating on a [`NewtonWorkspace`].
///
/// `assemble` writes the residual `F(x)` and Jacobian `∂F/∂x` into the
/// provided buffers (which arrive zeroed only on the first call — overwrite,
/// don't accumulate). On success the converged state is in `ws.x()` and the
/// iteration count is returned. Apart from the first call (which populates
/// the LU buffers), no heap allocation occurs inside the iteration loop.
///
/// # Errors
///
/// Same conditions as [`solve`].
///
/// # Panics
///
/// Panics if `x0.len() != ws.dim()`.
pub fn solve_in_place<F>(
    ws: &mut NewtonWorkspace,
    x0: &Vector,
    opts: &NewtonOptions,
    mut assemble: F,
) -> Result<usize>
where
    F: FnMut(&Vector, &mut Vector, &mut Matrix) -> Result<()>,
{
    ws.x.copy_from(x0);
    let mut last_norm = f64::INFINITY;

    // Every iteration works in workspace buffers sized at construction;
    // the only allocation is the one-time LU factor below.
    // lint: hot-loop
    for iter in 1..=opts.max_iters {
        assemble(&ws.x, &mut ws.residual, &mut ws.jacobian)?;
        if !ws.residual.is_finite() || !ws.jacobian.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        let lu = match ws.lu.as_mut() {
            Some(lu) => {
                lu.refactor(&ws.jacobian)?;
                lu
            }
            // lint: allow(hot-loop-alloc, reason = "cold path: the factor is built on the workspace's first solve and refactored in place after")
            None => ws.lu.insert(LuFactor::new(&ws.jacobian)?),
        };
        lu.solve_into(&ws.residual, &mut ws.delta)?;
        // Newton step is x ← x − J⁻¹F.
        for d in ws.delta.iter_mut() {
            *d = -*d;
            if d.abs() > opts.max_step {
                *d = d.signum() * opts.max_step;
            }
        }
        let norm = ws.delta.weighted_norm(&ws.x, opts.reltol, opts.abstol);
        ws.x.axpy(1.0, &ws.delta);
        if !ws.x.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        last_norm = norm;
        if norm <= 1.0 {
            return Ok(iter);
        }
    }
    // lint: end-hot-loop

    Err(SpiceError::NewtonDiverged {
        context: "newton solve",
        iterations: opts.max_iters,
        residual: last_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_quadratic() {
        // F(x) = x² − 4 = 0 from x0 = 3 → x = 2.
        let x0 = Vector::from_slice(&[3.0]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] - 4.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!(sol.iterations <= 10);
    }

    #[test]
    fn solves_2d_nonlinear_system() {
        // x² + y² = 5, x·y = 2 → (2, 1) from a nearby start.
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] + x[1] * x[1] - 5.0, x[0] * x[1] - 2.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[x[1], x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn damping_caps_update_magnitude() {
        // A huge first step would overshoot; damping keeps |Δ| ≤ max_step.
        let x0 = Vector::from_slice(&[100.0]);
        let opts = NewtonOptions {
            max_step: 1.0,
            max_iters: 300,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0]]);
            let j = Matrix::identity(1);
            Ok((f, j))
        })
        .unwrap();
        assert!(sol.x[0].abs() < 1e-6);
        // Pure linear problem with unit slope and damping 1.0 needs ~100 steps.
        assert!(sol.iterations >= 99);
    }

    #[test]
    fn reports_divergence() {
        // F(x) = 1 (no root): Newton cannot converge because J is tiny.
        let x0 = Vector::from_slice(&[0.0]);
        let opts = NewtonOptions {
            max_iters: 5,
            ..NewtonOptions::default()
        };
        let err = solve(&x0, &opts, |_x| {
            Ok((
                Vector::from_slice(&[1.0]),
                Matrix::from_rows(&[&[1e-3]]).unwrap(),
            ))
        })
        .unwrap_err();
        assert!(matches!(err, SpiceError::NewtonDiverged { .. }));
    }

    #[test]
    fn detects_nan_blowup() {
        let x0 = Vector::from_slice(&[1.0]);
        let err = solve(&x0, &NewtonOptions::default(), |_x| {
            Ok((Vector::from_slice(&[f64::NAN]), Matrix::identity(1)))
        })
        .unwrap_err();
        assert!(matches!(err, SpiceError::NumericalBlowup { .. }));
    }

    #[test]
    fn in_place_solve_matches_allocating_solve_without_iteration_allocs() {
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let reference = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] + x[1] * x[1] - 5.0, x[0] * x[1] - 2.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[x[1], x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();

        let mut ws = NewtonWorkspace::new(2);
        let fill = |x: &Vector, f: &mut Vector, j: &mut Matrix| {
            f.as_mut_slice()[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
            f.as_mut_slice()[1] = x[0] * x[1] - 2.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 2.0 * x[1];
            j[(1, 0)] = x[1];
            j[(1, 1)] = x[0];
            Ok(())
        };
        // First solve may allocate (LU buffers are created lazily).
        let iters = solve_in_place(&mut ws, &x0, &opts, fill).unwrap();
        assert_eq!(iters, reference.iterations);
        assert_eq!(ws.x().as_slice(), reference.x.as_slice());

        // A second solve with warm buffers must not allocate a single matrix.
        let before = shc_linalg::matrix_allocations();
        solve_in_place(&mut ws, &x0, &opts, fill).unwrap();
        assert_eq!(shc_linalg::matrix_allocations(), before);
    }

    #[test]
    fn jacobian_lu_is_reusable() {
        let x0 = Vector::from_slice(&[3.0]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] - 1.0]);
            let j = Matrix::from_rows(&[&[1.0]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        let y = sol.jacobian_lu.solve(&Vector::from_slice(&[5.0])).unwrap();
        assert_eq!(y[0], 5.0);
    }
}
