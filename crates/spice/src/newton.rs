//! Damped Newton-Raphson driver shared by DC and transient analyses.

use shc_linalg::{LuFactor, Matrix, Vector};

use crate::solver::SparseJacSolver;
use crate::{Result, SpiceError};

/// Deterministic fault hook for the Newton site: maps an injected fault
/// onto this layer's error vocabulary. One thread-local read when no
/// `shc-fault` plan is installed.
pub(crate) fn injected_fault() -> Option<SpiceError> {
    let kind = shc_fault::check(shc_fault::Site::Newton)?;
    shc_obs::count(shc_obs::Metric::FaultsInjected, 1);
    Some(match kind {
        shc_fault::FaultKind::NanResidual => SpiceError::NumericalBlowup { time: f64::NAN },
        _ => SpiceError::NewtonDiverged {
            context: "newton solve (injected fault)",
            iterations: 0,
            residual: f64::INFINITY,
        },
    })
}

/// Lap slots of the per-iteration `shc_prof::Laps` accumulator threaded
/// through [`solve_in_place_lapped`] and the transient assembly closure.
/// The chain is contiguous: each boundary charges the time since the
/// previous one, so one clock read per region suffices.
pub mod lap {
    /// Device evaluation + stamping (`assemble_into`), ended by the
    /// assembly closure after the device loop.
    pub const DEV: usize = 0;
    /// Residual formation and companion-model combination, ended by the
    /// assembly closure on exit.
    pub const STAMP: usize = 1;
    /// Jacobian factorization (dense refactor or sparse factor).
    pub const FACTOR: usize = 2;
    /// Forward/back substitution.
    pub const SOLVE: usize = 3;
    /// Discard slot: re-arms the cursor at closure entry so damping,
    /// norms, and everything between solves is never charged to
    /// [`DEV`]. Not flushed — Newton self-time is computed as the
    /// per-step total minus the four regions above.
    pub const ITER_SELF: usize = 4;
}

/// Convergence and robustness settings for Newton-Raphson.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Relative tolerance on the solution update.
    pub reltol: f64,
    /// Absolute tolerance on the solution update (volts/amps).
    pub abstol: f64,
    /// Maximum iterations before declaring divergence.
    pub max_iters: usize,
    /// Per-iteration cap on any single unknown's update magnitude
    /// (voltage limiting); `f64::INFINITY` disables damping.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            max_iters: 60,
            max_step: 0.5,
        }
    }
}

/// Outcome of a converged Newton solve.
#[derive(Debug)]
pub struct NewtonSolution {
    /// The converged state.
    pub x: Vector,
    /// Iterations used.
    pub iterations: usize,
    /// LU factors of the last Jacobian — reusable for sensitivity solves
    /// without re-factoring (the efficiency trick of the paper's eq. (11)).
    pub jacobian_lu: LuFactor,
}

/// Solves `F(x) = 0` with damped Newton-Raphson.
///
/// `assemble` must return the residual `F(x)` and Jacobian `∂F/∂x` at the
/// trial point. Convergence is declared when the weighted update norm
/// `max_i |Δx_i| / (reltol·|x_i| + abstol)` drops to `≤ 1`.
///
/// # Errors
///
/// - [`SpiceError::NewtonDiverged`] after `max_iters` iterations;
/// - [`SpiceError::NumericalBlowup`] if a non-finite value appears;
/// - propagated linear-solver failures.
pub fn solve<F>(x0: &Vector, opts: &NewtonOptions, mut assemble: F) -> Result<NewtonSolution>
where
    F: FnMut(&Vector) -> Result<(Vector, Matrix)>,
{
    if let Some(e) = injected_fault() {
        return Err(e);
    }
    let mut x = x0.clone();
    let mut last_norm = f64::INFINITY;

    for iter in 1..=opts.max_iters {
        let (residual, jacobian) = assemble(&x)?;
        if !residual.is_finite() || !jacobian.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        let lu = jacobian.lu()?;
        let mut delta = lu.solve(&residual)?;
        // Newton step is x ← x − J⁻¹F.
        for d in delta.iter_mut() {
            *d = -*d;
            if d.abs() > opts.max_step {
                *d = d.signum() * opts.max_step;
            }
        }
        let norm = delta.weighted_norm(&x, opts.reltol, opts.abstol);
        x = x.add(&delta);
        if !x.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        last_norm = norm;
        if norm <= 1.0 {
            return Ok(NewtonSolution {
                x,
                iterations: iter,
                jacobian_lu: lu,
            });
        }
    }

    Err(SpiceError::NewtonDiverged {
        context: "newton solve",
        iterations: opts.max_iters,
        residual: last_norm,
    })
}

/// Reusable buffers for [`solve_in_place`].
///
/// A transient analysis performs one Newton solve per time step with a
/// fixed system dimension; allocating the iterate, update, residual,
/// Jacobian, and LU factors once per *run* instead of once per *iteration*
/// removes every per-step heap allocation from the Newton path.
#[derive(Debug)]
pub struct NewtonWorkspace {
    x: Vector,
    delta: Vector,
    residual: Vector,
    jacobian: Matrix,
    lu: Option<LuFactor>,
    /// When installed, linear solves go through the sparse-direct path
    /// instead of the dense `lu` (see [`crate::solver::SolverChoice`]).
    sparse: Option<SparseJacSolver>,
}

impl NewtonWorkspace {
    /// Creates a workspace for systems of dimension `n` (dense solves).
    pub fn new(n: usize) -> Self {
        NewtonWorkspace {
            x: Vector::zeros(n),
            delta: Vector::zeros(n),
            residual: Vector::zeros(n),
            jacobian: Matrix::zeros(n, n),
            lu: None,
            sparse: None,
        }
    }

    /// System dimension this workspace was sized for.
    pub fn dim(&self) -> usize {
        self.x.len()
    }

    /// The iterate; after a successful [`solve_in_place`] this is the
    /// converged state.
    pub fn x(&self) -> &Vector {
        &self.x
    }

    /// LU factors of the most recently factored Jacobian, if any —
    /// reusable for sensitivity solves without re-factoring. `None`
    /// whenever the sparse path is active (use
    /// [`NewtonWorkspace::sparse_solver_mut`] there).
    pub fn jacobian_lu(&self) -> Option<&LuFactor> {
        self.lu.as_ref()
    }

    /// Installs (or removes) the sparse solve path. Passing `Some`
    /// drops any dense factors; passing `None` restores dense solves.
    pub fn set_sparse_solver(&mut self, solver: Option<SparseJacSolver>) {
        if solver.is_some() {
            self.lu = None;
        }
        self.sparse = solver;
    }

    /// The installed sparse solver, if any.
    pub fn sparse_solver(&self) -> Option<&SparseJacSolver> {
        self.sparse.as_ref()
    }

    /// Mutable access to the installed sparse solver, if any.
    pub fn sparse_solver_mut(&mut self) -> Option<&mut SparseJacSolver> {
        self.sparse.as_mut()
    }
}

/// Allocation-free variant of [`solve`] operating on a [`NewtonWorkspace`].
///
/// `assemble` writes the residual `F(x)` and Jacobian `∂F/∂x` into the
/// provided buffers (which arrive zeroed only on the first call — overwrite,
/// don't accumulate). On success the converged state is in `ws.x()` and the
/// iteration count is returned. Apart from the first call (which populates
/// the LU buffers), no heap allocation occurs inside the iteration loop.
///
/// # Errors
///
/// Same conditions as [`solve`].
///
/// # Panics
///
/// Panics if `x0.len() != ws.dim()`.
pub fn solve_in_place<F>(
    ws: &mut NewtonWorkspace,
    x0: &Vector,
    opts: &NewtonOptions,
    assemble: F,
) -> Result<usize>
where
    F: FnMut(&Vector, &mut Vector, &mut Matrix) -> Result<()>,
{
    solve_in_place_lapped(ws, x0, opts, None, assemble)
}

/// [`solve_in_place`] with an optional per-iteration profiling
/// accumulator.
///
/// With `laps` set, the factor and solve of every iteration close lap
/// regions ([`lap::FACTOR`], [`lap::SOLVE`]); the assembly closure is
/// expected to close [`lap::DEV`]/[`lap::STAMP`] itself. The accumulator
/// only reads clocks — iterates, tolerances, and results are bitwise
/// identical with or without it, and with profiling off every lap call
/// is a branch on a struct flag.
///
/// # Errors
///
/// Same conditions as [`solve`].
///
/// # Panics
///
/// Panics if `x0.len() != ws.dim()`.
pub fn solve_in_place_lapped<F>(
    ws: &mut NewtonWorkspace,
    x0: &Vector,
    opts: &NewtonOptions,
    laps: Option<&shc_prof::Laps>,
    mut assemble: F,
) -> Result<usize>
where
    F: FnMut(&Vector, &mut Vector, &mut Matrix) -> Result<()>,
{
    if let Some(e) = injected_fault() {
        return Err(e);
    }
    ws.x.copy_from(x0);
    let mut last_norm = f64::INFINITY;
    // Work units for the linear-algebra lap slots: factor work follows
    // the backend (pattern nonzeros sparse, dimension dense).
    let solve_work = ws.dim() as u64;
    let factor_work = ws
        .sparse
        .as_ref()
        .map_or(solve_work, |sp| sp.pattern().len() as u64);

    // Every iteration works in workspace buffers sized at construction;
    // the only allocation is the one-time LU factor below.
    // lint: hot-loop
    for iter in 1..=opts.max_iters {
        // lint: allow(hot-path-certify, reason = "closure parameter: name resolution cannot see through `F` and blames `Circuit::assemble`; the closure body's real effects are charged to the caller that defines it")
        assemble(&ws.x, &mut ws.residual, &mut ws.jacobian)?;
        if !ws.residual.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        if let Some(sp) = ws.sparse.as_mut() {
            // Sparse-direct path: gather + allocation-free refactor (the
            // first call performs the one-time analysis inside the solver).
            // Jacobian blow-up is detected on the gathered O(nnz) values
            // inside `factor_from`; the O(n²) dense scan is skipped.
            sp.factor_from(&ws.jacobian)?;
            if let Some(l) = laps {
                l.end_region(lap::FACTOR);
                l.bump(lap::FACTOR, 1, factor_work);
            }
            sp.solve_into(&ws.residual, &mut ws.delta)?;
        } else if !ws.jacobian.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        } else {
            let lu = match ws.lu.as_mut() {
                Some(lu) => {
                    lu.refactor(&ws.jacobian)?;
                    lu
                }
                // lint: allow(hot-loop-alloc, reason = "cold path: the factor is built on the workspace's first solve and refactored in place after")
                None => ws.lu.insert(LuFactor::new(&ws.jacobian)?), // lint: allow(hot-path-certify, reason = "cold path: the factor is built once on the first solve; every later iteration takes the refactor arm")
            };
            if let Some(l) = laps {
                l.end_region(lap::FACTOR);
                l.bump(lap::FACTOR, 1, factor_work);
            }
            lu.solve_into(&ws.residual, &mut ws.delta)?;
        }
        if let Some(l) = laps {
            l.end_region(lap::SOLVE);
            l.bump(lap::SOLVE, 1, solve_work);
        }
        // Newton step is x ← x − J⁻¹F.
        for d in ws.delta.iter_mut() {
            *d = -*d;
            if d.abs() > opts.max_step {
                *d = d.signum() * opts.max_step;
            }
        }
        let norm = ws.delta.weighted_norm(&ws.x, opts.reltol, opts.abstol);
        ws.x.axpy(1.0, &ws.delta);
        if !ws.x.is_finite() {
            return Err(SpiceError::NumericalBlowup { time: f64::NAN });
        }
        last_norm = norm;
        if norm <= 1.0 {
            return Ok(iter);
        }
    }
    // lint: end-hot-loop

    Err(SpiceError::NewtonDiverged {
        context: "newton solve",
        iterations: opts.max_iters,
        residual: last_norm,
    })
}

/// Whether a Newton failure is worth retrying from a perturbed start.
pub(crate) fn retryable(e: &SpiceError) -> bool {
    matches!(
        e,
        SpiceError::NewtonDiverged { .. }
            | SpiceError::NumericalBlowup { .. }
            | SpiceError::Linalg(shc_linalg::LinalgError::Singular { .. })
    )
}

/// Deterministic start-point jitter for Newton retries: attempt `k`
/// perturbs every unknown of `base` by a relative offset in `±2⁻ᵏ·10⁻⁴`
/// (plus a femto-scale absolute floor so exact zeros move too), enough to
/// leave a stalled basin without changing the converged root.
pub(crate) fn jitter_into(out: &mut Vector, base: &Vector, attempt: u32) {
    jitter_slice(out.as_mut_slice(), base.as_slice(), attempt);
}

/// Slice form of [`jitter_into`], shared with the batched engine so
/// lockstep retries perturb from the identical deterministic stream.
pub(crate) fn jitter_slice(out: &mut [f64], base: &[f64], attempt: u32) {
    let scale = 1e-4 * 0.5f64.powi(attempt as i32 - 1);
    for (i, v) in out.iter_mut().enumerate() {
        // SplitMix64 finalizer over (attempt, unknown index).
        let mut z = (u64::from(attempt) << 32 | i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let eps = (2.0 * unit - 1.0) * scale;
        *v = base[i] * (1.0 + eps) + eps * 1e-15;
    }
}

/// [`solve_in_place`] plus a bounded damped-retry recovery policy.
///
/// The first attempt is *exactly* `solve_in_place` — same iterates, same
/// result — so this wrapper is bitwise-transparent whenever Newton
/// converges. On a retryable failure (divergence, blow-up, singular
/// Jacobian) it re-solves up to `retries` more times, each from a
/// deterministically jittered copy of `x0` with the voltage-limiting step
/// cap halved (stronger damping), and reports a rescue to telemetry. The
/// last failure is returned when every retry is exhausted.
///
/// # Errors
///
/// Same conditions as [`solve_in_place`].
///
/// # Panics
///
/// Panics if `x0.len() != ws.dim()`.
pub fn solve_in_place_recovering<F>(
    ws: &mut NewtonWorkspace,
    x0: &Vector,
    opts: &NewtonOptions,
    retries: usize,
    mut assemble: F,
) -> Result<usize>
where
    F: FnMut(&Vector, &mut Vector, &mut Matrix) -> Result<()>,
{
    match solve_in_place(ws, x0, opts, &mut assemble) {
        Ok(iters) => Ok(iters),
        Err(e) if retries > 0 && retryable(&e) => {
            retry_in_place(ws, x0, opts, retries, e, assemble)
        }
        Err(e) => Err(e),
    }
}

/// The retry half of [`solve_in_place_recovering`], for callers that have
/// already run (and seen fail) the plain first attempt: up to `retries`
/// damped solves from jittered starts. Returns the rescued iteration count
/// or the last failure (`first` when nothing improved on it).
pub(crate) fn retry_in_place<F>(
    ws: &mut NewtonWorkspace,
    x0: &Vector,
    opts: &NewtonOptions,
    retries: usize,
    first: SpiceError,
    mut assemble: F,
) -> Result<usize>
where
    F: FnMut(&Vector, &mut Vector, &mut Matrix) -> Result<()>,
{
    let mut last = first;
    if !retryable(&last) {
        return Err(last);
    }
    let mut start = x0.clone();
    for attempt in 1..=retries as u32 {
        let damped = NewtonOptions {
            max_step: opts.max_step * 0.5f64.powi(attempt as i32),
            ..*opts
        };
        jitter_into(&mut start, x0, attempt);
        match solve_in_place(ws, &start, &damped, &mut assemble) {
            Ok(iters) => {
                shc_obs::count(shc_obs::Metric::NewtonRecoveries, 1);
                return Ok(iters);
            }
            Err(e) if retryable(&e) => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_quadratic() {
        // F(x) = x² − 4 = 0 from x0 = 3 → x = 2.
        let x0 = Vector::from_slice(&[3.0]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] - 4.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!(sol.iterations <= 10);
    }

    #[test]
    fn solves_2d_nonlinear_system() {
        // x² + y² = 5, x·y = 2 → (2, 1) from a nearby start.
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] + x[1] * x[1] - 5.0, x[0] * x[1] - 2.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[x[1], x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn sparse_workspace_matches_dense_workspace_on_circuit_solve() {
        use crate::devices::{Resistor, VoltageSource};
        use crate::solver::SparseJacSolver;
        use crate::waveform::{Params, Waveform};

        // A resistive ladder behind a voltage source (MNA: the branch row
        // has a zero diagonal, so this also exercises sparse pivoting).
        let mut c = crate::Circuit::new();
        let mut prev = c.node("in");
        c.add(VoltageSource::new(
            "V1",
            prev,
            crate::Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        for s in 0..20 {
            let node = c.node(&format!("n{s}"));
            c.add(Resistor::new(&format!("R{s}"), prev, node, 1e3));
            prev = node;
        }
        c.add(Resistor::new("Rload", prev, crate::Circuit::GROUND, 1e3));
        let params = Params::default();
        let n = c.unknown_count();
        let x0 = Vector::zeros(n);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let assemble = |x: &Vector, f: &mut Vector, j: &mut Matrix| -> Result<()> {
            let stamps = c.assemble(x, 0.0, &params, 1.0);
            f.copy_from(&stamps.f);
            j.copy_from(&stamps.g).unwrap();
            Ok(())
        };

        let mut dense_ws = NewtonWorkspace::new(n);
        solve_in_place(&mut dense_ws, &x0, &opts, assemble).unwrap();

        let mut sparse_ws = NewtonWorkspace::new(n);
        sparse_ws.set_sparse_solver(Some(SparseJacSolver::new(&c, &params).unwrap()));
        assert!(sparse_ws.sparse_solver().is_some());
        assert!(sparse_ws.jacobian_lu().is_none());
        solve_in_place(&mut sparse_ws, &x0, &opts, assemble).unwrap();

        let diff = sparse_ws.x().sub(dense_ws.x()).norm_inf();
        assert!(diff < 1e-10, "sparse vs dense newton diverged: {diff:e}");
        // The ladder divides 1 V evenly: node s sits at (20 − s)/21 V.
        assert!((sparse_ws.x()[1] - 20.0 / 21.0).abs() < 1e-9);
    }

    #[test]
    fn damping_caps_update_magnitude() {
        // A huge first step would overshoot; damping keeps |Δ| ≤ max_step.
        let x0 = Vector::from_slice(&[100.0]);
        let opts = NewtonOptions {
            max_step: 1.0,
            max_iters: 300,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0]]);
            let j = Matrix::identity(1);
            Ok((f, j))
        })
        .unwrap();
        assert!(sol.x[0].abs() < 1e-6);
        // Pure linear problem with unit slope and damping 1.0 needs ~100 steps.
        assert!(sol.iterations >= 99);
    }

    #[test]
    fn reports_divergence() {
        // F(x) = 1 (no root): Newton cannot converge because J is tiny.
        let x0 = Vector::from_slice(&[0.0]);
        let opts = NewtonOptions {
            max_iters: 5,
            ..NewtonOptions::default()
        };
        let err = solve(&x0, &opts, |_x| {
            Ok((
                Vector::from_slice(&[1.0]),
                Matrix::from_rows(&[&[1e-3]]).unwrap(),
            ))
        })
        .unwrap_err();
        assert!(matches!(err, SpiceError::NewtonDiverged { .. }));
    }

    #[test]
    fn detects_nan_blowup() {
        let x0 = Vector::from_slice(&[1.0]);
        let err = solve(&x0, &NewtonOptions::default(), |_x| {
            Ok((Vector::from_slice(&[f64::NAN]), Matrix::identity(1)))
        })
        .unwrap_err();
        assert!(matches!(err, SpiceError::NumericalBlowup { .. }));
    }

    #[test]
    fn in_place_solve_matches_allocating_solve_without_iteration_allocs() {
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let reference = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] * x[0] + x[1] * x[1] - 5.0, x[0] * x[1] - 2.0]);
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[x[1], x[0]]]).unwrap();
            Ok((f, j))
        })
        .unwrap();

        let mut ws = NewtonWorkspace::new(2);
        let fill = |x: &Vector, f: &mut Vector, j: &mut Matrix| {
            f.as_mut_slice()[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
            f.as_mut_slice()[1] = x[0] * x[1] - 2.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 2.0 * x[1];
            j[(1, 0)] = x[1];
            j[(1, 1)] = x[0];
            Ok(())
        };
        // First solve may allocate (LU buffers are created lazily).
        let iters = solve_in_place(&mut ws, &x0, &opts, fill).unwrap();
        assert_eq!(iters, reference.iterations);
        assert_eq!(ws.x().as_slice(), reference.x.as_slice());

        // A second solve with warm buffers must not allocate a single matrix.
        let before = shc_linalg::matrix_allocations();
        solve_in_place(&mut ws, &x0, &opts, fill).unwrap();
        assert_eq!(shc_linalg::matrix_allocations(), before);
    }

    fn fill_2d(x: &Vector, f: &mut Vector, j: &mut Matrix) -> Result<()> {
        f.as_mut_slice()[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
        f.as_mut_slice()[1] = x[0] * x[1] - 2.0;
        j[(0, 0)] = 2.0 * x[0];
        j[(0, 1)] = 2.0 * x[1];
        j[(1, 0)] = x[1];
        j[(1, 1)] = x[0];
        Ok(())
    }

    #[test]
    fn recovering_solve_is_transparent_when_newton_converges() {
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let mut ws = NewtonWorkspace::new(2);
        let iters = solve_in_place(&mut ws, &x0, &opts, fill_2d).unwrap();
        let plain = ws.x().as_slice().to_vec();
        let mut ws2 = NewtonWorkspace::new(2);
        let iters2 = solve_in_place_recovering(&mut ws2, &x0, &opts, 3, fill_2d).unwrap();
        assert_eq!(iters, iters2);
        assert_eq!(ws2.x().as_slice(), plain.as_slice());
    }

    #[test]
    fn injected_fault_fails_plain_solve_and_recovering_solve_rescues_it() {
        use shc_fault::{FaultKind, FaultPlan, Injector, Site};

        let plan_with = |seed: u64| FaultPlan {
            probability: 0.5,
            site: Some(Site::Newton),
            kind: FaultKind::NonConvergence,
            seed,
        };
        // Find a seed whose Newton fault stream starts (fire, pass): the
        // first solve is killed, the retry draws a fresh index and runs.
        let seed = (0..256u64)
            .find(|&s| {
                let inj = Injector::new(plan_with(s));
                let _g = shc_fault::install_scoped(&inj);
                shc_fault::check(Site::Newton).is_some() && shc_fault::check(Site::Newton).is_none()
            })
            .expect("some seed fires then passes");

        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };

        // Plain solve: the injected fault surfaces as NewtonDiverged.
        let inj = Injector::new(plan_with(seed));
        let guard = shc_fault::install_scoped(&inj);
        let mut ws = NewtonWorkspace::new(2);
        let err = solve_in_place(&mut ws, &x0, &opts, fill_2d).unwrap_err();
        assert!(matches!(err, SpiceError::NewtonDiverged { .. }), "{err:?}");
        drop(guard);

        // Recovering solve under the same plan: retry rescues, telemetry
        // records both the injection and the recovery.
        let collector = shc_obs::Collector::new();
        let _obs = shc_obs::install_scoped(&collector);
        let inj = Injector::new(plan_with(seed));
        let _g = shc_fault::install_scoped(&inj);
        let mut ws = NewtonWorkspace::new(2);
        solve_in_place_recovering(&mut ws, &x0, &opts, 2, fill_2d).unwrap();
        assert!((ws.x()[0] - 2.0).abs() < 1e-6);
        assert!((ws.x()[1] - 1.0).abs() < 1e-6);
        assert_eq!(inj.injected(), 1);
        assert_eq!(collector.counter(shc_obs::Metric::FaultsInjected), 1);
        assert_eq!(collector.counter(shc_obs::Metric::NewtonRecoveries), 1);
    }

    #[test]
    fn recovering_solve_exhausts_retries_and_reports_last_failure() {
        use shc_fault::{FaultKind, FaultPlan, Injector, Site};
        let inj = Injector::new(FaultPlan {
            probability: 1.0,
            site: Some(Site::Newton),
            kind: FaultKind::NonConvergence,
            seed: 0,
        });
        let _g = shc_fault::install_scoped(&inj);
        let x0 = Vector::from_slice(&[2.5, 0.5]);
        let mut ws = NewtonWorkspace::new(2);
        let err = solve_in_place_recovering(&mut ws, &x0, &NewtonOptions::default(), 3, fill_2d)
            .unwrap_err();
        assert!(matches!(err, SpiceError::NewtonDiverged { .. }));
        assert_eq!(inj.injected(), 4, "initial attempt + 3 retries");
    }

    #[test]
    fn jacobian_lu_is_reusable() {
        let x0 = Vector::from_slice(&[3.0]);
        let opts = NewtonOptions {
            max_step: f64::INFINITY,
            ..NewtonOptions::default()
        };
        let sol = solve(&x0, &opts, |x| {
            let f = Vector::from_slice(&[x[0] - 1.0]);
            let j = Matrix::from_rows(&[&[1.0]]).unwrap();
            Ok((f, j))
        })
        .unwrap();
        let y = sol.jacobian_lu.solve(&Vector::from_slice(&[5.0])).unwrap();
        assert_eq!(y[0], 5.0);
    }
}
