//! Source waveforms, including the setup/hold-parameterized data pulse.
//!
//! The characterization algorithm varies two scalar parameters — the setup
//! skew `τs` and the hold skew `τh` (paper Fig. 2) — that enter the circuit
//! *only* through the data-source waveform `u_d(t, τs, τh)`. Every waveform
//! therefore evaluates against a [`Params`] value, and exposes the analytic
//! partial derivatives `∂u/∂τs` and `∂u/∂τh` (the paper's `z_s`, `z_h`)
//! needed by forward sensitivity analysis (paper eqs. (7)–(13)).

use serde::{Deserialize, Serialize};

/// The two skew parameters of the characterization problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Param {
    /// Setup skew `τs`: delay from the data transition to the active clock
    /// edge (both measured at their 50% crossings).
    Setup,
    /// Hold skew `τh`: delay from the active clock edge to the data's return
    /// transition.
    Hold,
}

impl Param {
    /// Both parameters, in canonical order `[Setup, Hold]`.
    pub const ALL: [Param; 2] = [Param::Setup, Param::Hold];
}

/// Current values of the skew parameters, in seconds.
///
/// A transient run is a pure function of the circuit and a `Params` value,
/// so sweeping skews never mutates the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Params {
    /// Setup skew `τs` in seconds.
    /// unit: s
    pub tau_s: f64,
    /// Hold skew `τh` in seconds.
    /// unit: s
    pub tau_h: f64,
}

impl Params {
    /// Creates a parameter pair.
    pub fn new(tau_s: f64, tau_h: f64) -> Self {
        Params { tau_s, tau_h }
    }

    /// Reads the value of one parameter.
    pub fn get(&self, p: Param) -> f64 {
        match p {
            Param::Setup => self.tau_s,
            Param::Hold => self.tau_h,
        }
    }

    /// Returns a copy with one parameter replaced.
    #[must_use]
    pub fn with(&self, p: Param, value: f64) -> Self {
        let mut out = *self;
        match p {
            Param::Setup => out.tau_s = value,
            Param::Hold => out.tau_h = value,
        }
        out
    }
}

/// Shape of a signal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RampShape {
    /// Linear ramp — C⁰ only; its skew derivative is piecewise constant.
    Linear,
    /// Cubic smoothstep `3u² − 2u³` — C¹, the default, so that `h(τs, τh)`
    /// is differentiable for Newton's method.
    #[default]
    Smoothstep,
}

impl RampShape {
    /// Normalized 0→1 transition value at normalized position `u`
    /// (clamped outside `[0, 1]`).
    pub fn value(self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            RampShape::Linear => u,
            RampShape::Smoothstep => u * u * (3.0 - 2.0 * u),
        }
    }

    /// Derivative of [`RampShape::value`] with respect to `u`
    /// (zero outside `[0, 1]`).
    pub fn derivative(self, u: f64) -> f64 {
        if !(0.0..=1.0).contains(&u) {
            return 0.0;
        }
        match self {
            RampShape::Linear => 1.0,
            RampShape::Smoothstep => 6.0 * u * (1.0 - u),
        }
    }
}

/// A 0→1 edge centered at `center` with transition width `width`.
///
/// Returns `(value, d_value/d_center)`.
fn edge(shape: RampShape, t: f64, center: f64, width: f64) -> (f64, f64) {
    let u = (t - center) / width + 0.5;
    let v = shape.value(u);
    let dv_dcenter = -shape.derivative(u) / width;
    (v, dv_dcenter)
}

/// The setup/hold-parameterized data waveform `u_d(t, τs, τh)` of the
/// paper's Fig. 2.
///
/// The signal starts at `v_rest`, transitions to `v_active` with its 50%
/// crossing at `t_edge − τs` (the *leading* edge, `τs` before the active
/// clock edge), and returns to `v_rest` with its 50% crossing at
/// `t_edge + τh` (the *trailing* edge, `τh` after the clock edge).
///
/// For capturing a logic 1, `v_rest = 0` and `v_active = Vdd`; for the
/// falling-data case used for the C²MOS register in the paper's Sec. IV-B,
/// `v_rest = Vdd` and `v_active = 0`.
///
/// # Example
///
/// ```rust
/// use shc_spice::waveform::{DataPulse, Params, RampShape};
///
/// let d = DataPulse {
///     v_rest: 0.0,
///     v_active: 2.5,
///     t_edge: 11e-9,
///     rise: 0.1e-9,
///     fall: 0.1e-9,
///     shape: RampShape::Smoothstep,
/// };
/// let p = Params::new(200e-12, 150e-12);
/// // Well inside the pulse the data is at the active level.
/// assert!((d.value(11e-9, &p) - 2.5).abs() < 1e-12);
/// // Long before the leading edge it rests.
/// assert!(d.value(0.0, &p).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPulse {
    /// Level before and after the pulse.
    pub v_rest: f64,
    /// Level during the pulse (the value being latched).
    pub v_active: f64,
    /// Time of the 50% crossing of the active clock edge, in seconds.
    pub t_edge: f64,
    /// Transition time of the leading edge, in seconds.
    pub rise: f64,
    /// Transition time of the trailing edge, in seconds.
    pub fall: f64,
    /// Edge shape (default [`RampShape::Smoothstep`]).
    pub shape: RampShape,
}

impl DataPulse {
    /// Waveform value at time `t` for skews `params`.
    ///
    /// If the skews are so negative that the trailing edge would precede
    /// the leading one (`τs + τh` below minus the transition times), the
    /// pulse degenerates and the signal simply rests — it never inverts.
    pub fn value(&self, t: f64, params: &Params) -> f64 {
        let lead_center = self.t_edge - params.tau_s;
        let trail_center = self.t_edge + params.tau_h;
        let (up, _) = edge(self.shape, t, lead_center, self.rise);
        let (down, _) = edge(self.shape, t, trail_center, self.fall);
        let excursion = (up - down).max(0.0);
        self.v_rest + (self.v_active - self.v_rest) * excursion
    }

    /// A time `t*` such that two parameterizations of this pulse are
    /// *identical functions* — values and skew derivatives — on `[0, t*)`.
    ///
    /// Two lanes of a sweep differ only through their skew parameters:
    /// the leading edges first differ where the *later* leading ramp
    /// begins (`t_edge − max τs − rise/2`), the trailing edges where the
    /// *earlier* trailing ramp begins (`t_edge + min τh − fall/2`).
    /// Before the earlier of those times both pulses evaluate the same
    /// edge expressions on bitwise-equal inputs, so values and the `z_s`/
    /// `z_h` derivatives agree to the bit. Bitwise-equal skews (including
    /// equal NaN bits) never constrain the bound; differing non-finite
    /// skews yield `0.0` (no provable agreement).
    pub fn agree_until(&self, pa: &Params, pb: &Params) -> f64 {
        let edge_bound = |a: f64, b: f64, center: f64, width: f64| -> f64 {
            if a.to_bits() == b.to_bits() {
                f64::INFINITY
            } else if a.is_finite() && b.is_finite() {
                let bound = center - width / 2.0;
                // Non-finite shape fields poison the bound arithmetic —
                // and `f64::min` would silently drop a NaN against the
                // other edge's bound — so claim nothing here.
                if bound.is_nan() {
                    0.0
                } else {
                    bound
                }
            } else {
                0.0
            }
        };
        let lead = edge_bound(
            pa.tau_s,
            pb.tau_s,
            self.t_edge - pa.tau_s.max(pb.tau_s),
            self.rise,
        );
        let trail = edge_bound(
            pa.tau_h,
            pb.tau_h,
            self.t_edge + pa.tau_h.min(pb.tau_h),
            self.fall,
        );
        lead.min(trail)
    }

    /// Analytic partial derivative `∂u_d/∂param` at time `t` — the paper's
    /// `z_s(t, τs, τh)` (for [`Param::Setup`]) and `z_h` (for
    /// [`Param::Hold`]).
    pub fn derivative(&self, t: f64, params: &Params, param: Param) -> f64 {
        // Degenerate (inverted) pulses are clamped to the rest level in
        // [`DataPulse::value`]; their skew derivative is zero there.
        {
            let lead_center = self.t_edge - params.tau_s;
            let trail_center = self.t_edge + params.tau_h;
            let (up, _) = edge(self.shape, t, lead_center, self.rise);
            let (down, _) = edge(self.shape, t, trail_center, self.fall);
            if up - down <= 0.0 {
                return 0.0;
            }
        }
        let swing = self.v_active - self.v_rest;
        match param {
            Param::Setup => {
                // Leading-edge center is t_edge − τs: d center/d τs = −1.
                let lead_center = self.t_edge - params.tau_s;
                let (_, dv_dc) = edge(self.shape, t, lead_center, self.rise);
                -(swing * dv_dc)
            }
            Param::Hold => {
                // Trailing-edge center is t_edge + τh: d center/d τh = +1.
                // The trailing edge enters with a minus sign.
                let trail_center = self.t_edge + params.tau_h;
                let (_, dv_dc) = edge(self.shape, t, trail_center, self.fall);
                -swing * dv_dc
            }
        }
    }
}

/// A periodic SPICE-style pulse source (used for the clock `u_c(t)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pulse {
    /// Initial (low) value.
    pub v0: f64,
    /// Pulsed (high) value.
    pub v1: f64,
    /// Delay before the first rising transition begins, in seconds.
    pub delay: f64,
    /// Rise time, in seconds.
    pub rise: f64,
    /// Fall time, in seconds.
    pub fall: f64,
    /// Pulse width (time at `v1` between ramps), in seconds.
    pub width: f64,
    /// Period; `0.0` or non-finite means non-repeating.
    pub period: f64,
    /// Edge shape.
    pub shape: RampShape,
}

impl Pulse {
    /// Waveform value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        let mut tl = t - self.delay;
        if tl < 0.0 {
            return self.v0;
        }
        if self.period > 0.0 && self.period.is_finite() {
            tl %= self.period;
        }
        if tl < self.rise {
            let u = tl / self.rise;
            self.v0 + (self.v1 - self.v0) * self.shape.value(u)
        } else if tl < self.rise + self.width {
            self.v1
        } else if tl < self.rise + self.width + self.fall {
            let u = (tl - self.rise - self.width) / self.fall;
            self.v1 + (self.v0 - self.v1) * self.shape.value(u)
        } else {
            self.v0
        }
    }

    /// Time of the 50% crossing of the `k`-th rising edge (k = 0, 1, …).
    pub fn rising_edge_midpoint(&self, k: usize) -> f64 {
        self.delay + self.rise / 2.0 + k as f64 * self.period.max(0.0)
    }
}

/// A source waveform.
///
/// Most variants are independent of the skew parameters; only
/// [`Waveform::Data`] carries the τs/τh dependence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic pulse (clock).
    Pulse(Pulse),
    /// Piecewise-linear waveform given as sorted `(time, value)` pairs;
    /// clamps to the first/last value outside the range.
    Pwl(Vec<(f64, f64)>),
    /// The setup/hold-parameterized data pulse.
    Data(DataPulse),
}

impl Waveform {
    /// Convenience constructor for a DC source.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// Waveform value at time `t` for skews `params`.
    pub fn value(&self, t: f64, params: &Params) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.value(t),
            Waveform::Pwl(points) => pwl_value(points, t),
            Waveform::Data(d) => d.value(t, params),
        }
    }

    /// Partial derivative `∂u/∂param`; zero for skew-independent waveforms.
    pub fn derivative(&self, t: f64, params: &Params, param: Param) -> f64 {
        match self {
            Waveform::Data(d) => d.derivative(t, params, param),
            _ => 0.0,
        }
    }

    /// Whether this waveform depends on the skew parameters.
    pub fn depends_on_params(&self) -> bool {
        matches!(self, Waveform::Data(_))
    }

    /// A time `t*` such that `self.value(t, pa)` / `.derivative(t, pa, ·)`
    /// and `other.value(t, pb)` / `.derivative(t, pb, ·)` are bitwise
    /// identical for every `t < t*` — the *agreement horizon* the lockstep
    /// batched engine uses to run provably identical lane prefixes once.
    ///
    /// The bound is conservative: skew-independent variants agree forever
    /// when their representations match bitwise and are claimed disjoint
    /// (`0.0`) otherwise; only [`Waveform::Data`] gets the analytic
    /// edge-position bound of [`DataPulse::agree_until`]. Mismatched
    /// variants (and any future variant) claim nothing.
    pub fn agree_until(&self, pa: &Params, other: &Waveform, pb: &Params) -> f64 {
        let bits_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        };
        match (self, other) {
            (Waveform::Dc(a), Waveform::Dc(b)) if a.to_bits() == b.to_bits() => f64::INFINITY,
            (Waveform::Pulse(a), Waveform::Pulse(b)) => {
                let fa = [a.v0, a.v1, a.delay, a.rise, a.fall, a.width, a.period];
                let fb = [b.v0, b.v1, b.delay, b.rise, b.fall, b.width, b.period];
                if a.shape == b.shape && bits_eq(&fa, &fb) {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
            (Waveform::Pwl(a), Waveform::Pwl(b)) => {
                let flat = |p: &[(f64, f64)]| -> Vec<f64> {
                    p.iter().flat_map(|&(t, v)| [t, v]).collect()
                };
                if bits_eq(&flat(a), &flat(b)) {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
            (Waveform::Data(a), Waveform::Data(b)) => {
                let fa = [a.v_rest, a.v_active, a.t_edge, a.rise, a.fall];
                let fb = [b.v_rest, b.v_active, b.t_edge, b.rise, b.fall];
                if a.shape == b.shape && bits_eq(&fa, &fb) {
                    a.agree_until(pa, pb)
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }
}

fn pwl_value(points: &[(f64, f64)], t: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if t <= points[0].0 {
        return points[0].1;
    }
    if t >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    for w in points.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        if t >= t0 && t <= t1 {
            if t1 == t0 {
                return v1;
            }
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
    }
    points[points.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1e-15;

    fn fd_derivative(d: &DataPulse, t: f64, p: &Params, param: Param) -> f64 {
        let h = 1e-15;
        let plus = d.value(t, &p.with(param, p.get(param) + h));
        let minus = d.value(t, &p.with(param, p.get(param) - h));
        (plus - minus) / (2.0 * h)
    }

    fn sample_pulse() -> DataPulse {
        DataPulse {
            v_rest: 0.0,
            v_active: 2.5,
            t_edge: 11e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            shape: RampShape::Smoothstep,
        }
    }

    #[test]
    fn ramp_shapes_hit_endpoints_and_midpoint() {
        for shape in [RampShape::Linear, RampShape::Smoothstep] {
            assert_eq!(shape.value(-0.5), 0.0);
            assert_eq!(shape.value(0.0), 0.0);
            assert_eq!(shape.value(1.0), 1.0);
            assert_eq!(shape.value(1.5), 1.0);
            assert!((shape.value(0.5) - 0.5).abs() < 1e-15);
            assert_eq!(shape.derivative(-0.1), 0.0);
            assert_eq!(shape.derivative(1.1), 0.0);
        }
    }

    #[test]
    fn smoothstep_derivative_matches_finite_difference() {
        let s = RampShape::Smoothstep;
        for &u in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let fd = (s.value(u + 1e-7) - s.value(u - 1e-7)) / 2e-7;
            assert!((s.derivative(u) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn data_pulse_levels() {
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        // Before the leading edge window.
        assert_eq!(d.value(10.0e-9, &p), 0.0);
        // At the 50% point of the leading edge.
        let lead = d.t_edge - p.tau_s;
        assert!((d.value(lead, &p) - 1.25).abs() < 1e-9);
        // Inside the pulse.
        assert!((d.value(11e-9, &p) - 2.5).abs() < 1e-12);
        // At the 50% point of the trailing edge.
        let trail = d.t_edge + p.tau_h;
        assert!((d.value(trail, &p) - 1.25).abs() < 1e-9);
        // After the pulse.
        assert_eq!(d.value(12e-9, &p), 0.0);
    }

    #[test]
    fn falling_data_pulse_levels() {
        // C²MOS case: data rests high and pulses low.
        let d = DataPulse {
            v_rest: 2.5,
            v_active: 0.0,
            ..sample_pulse()
        };
        let p = Params::new(300e-12, 200e-12);
        assert_eq!(d.value(0.0, &p), 2.5);
        assert!((d.value(11e-9, &p)).abs() < 1e-12);
        assert_eq!(d.value(13e-9, &p), 2.5);
    }

    #[test]
    fn setup_derivative_matches_finite_difference() {
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        // Sample through the leading edge window.
        let lead = d.t_edge - p.tau_s;
        for &t in &[lead - 0.04e-9, lead, lead + 0.04e-9, 11e-9, 5e-9] {
            let analytic = d.derivative(t, &p, Param::Setup);
            let fd = fd_derivative(&d, t, &p, Param::Setup);
            assert!(
                (analytic - fd).abs() <= 1e-4 * fd.abs().max(1.0),
                "t={t:.3e}: analytic {analytic:.6e}, fd {fd:.6e}"
            );
        }
    }

    #[test]
    fn hold_derivative_matches_finite_difference() {
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        let trail = d.t_edge + p.tau_h;
        for &t in &[trail - 0.04e-9, trail, trail + 0.04e-9, 11e-9] {
            let analytic = d.derivative(t, &p, Param::Hold);
            let fd = fd_derivative(&d, t, &p, Param::Hold);
            assert!(
                (analytic - fd).abs() <= 1e-4 * fd.abs().max(1.0),
                "t={t:.3e}: analytic {analytic:.6e}, fd {fd:.6e}"
            );
        }
    }

    #[test]
    fn derivative_signs_during_edges() {
        // For a rising data pulse (v_active > v_rest): increasing τs moves
        // the leading edge earlier, so mid-leading-edge the value increases.
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        let lead = d.t_edge - p.tau_s;
        assert!(d.derivative(lead, &p, Param::Setup) > 0.0);
        // Increasing τh keeps the pulse high longer: positive mid-trailing-edge.
        let trail = d.t_edge + p.tau_h;
        assert!(d.derivative(trail, &p, Param::Hold) > 0.0);
        // Outside the edge windows both derivatives vanish.
        assert_eq!(d.derivative(5e-9, &p, Param::Setup), 0.0);
        assert_eq!(d.derivative(5e-9, &p, Param::Hold), 0.0);
    }

    #[test]
    fn pulse_clock_matches_paper_timing() {
        // The paper's clock: period 10ns, delay 1ns, rise/fall 0.1ns, 0→2.5V.
        let clk = Pulse {
            v0: 0.0,
            v1: 2.5,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 4.9e-9,
            period: 10e-9,
            shape: RampShape::Smoothstep,
        };
        assert_eq!(clk.value(0.0), 0.0);
        assert_eq!(clk.value(0.9e-9), 0.0);
        assert!((clk.value(1.05e-9) - 1.25).abs() < 1e-9); // mid rising edge
        assert_eq!(clk.value(3e-9), 2.5);
        // Second period: active edge at 11ns.
        assert!((clk.value(11.05e-9) - 1.25).abs() < 1e-9);
        assert!((clk.rising_edge_midpoint(1) - 11.05e-9).abs() < DT);
    }

    #[test]
    fn pulse_nonrepeating_when_period_zero() {
        let p = Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 1e-9,
            period: 0.0,
            shape: RampShape::Linear,
        };
        assert_eq!(p.value(100e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]);
        let params = Params::default();
        assert_eq!(w.value(-1.0, &params), 0.0);
        assert_eq!(w.value(0.5, &params), 1.0);
        assert_eq!(w.value(1.5, &params), 2.0);
        assert_eq!(w.value(9.0, &params), 2.0);
        assert_eq!(w.derivative(0.5, &params, Param::Setup), 0.0);
    }

    #[test]
    fn params_accessors() {
        let p = Params::new(1.0, 2.0);
        assert_eq!(p.get(Param::Setup), 1.0);
        assert_eq!(p.get(Param::Hold), 2.0);
        let q = p.with(Param::Hold, 5.0);
        assert_eq!(q.tau_h, 5.0);
        assert_eq!(q.tau_s, 1.0);
    }

    #[test]
    fn only_data_waveform_depends_on_params() {
        assert!(!Waveform::dc(1.0).depends_on_params());
        assert!(Waveform::Data(sample_pulse()).depends_on_params());
    }

    #[test]
    fn data_pulse_agreement_is_unbounded_for_identical_skews() {
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        assert_eq!(d.agree_until(&p, &p), f64::INFINITY);
    }

    #[test]
    fn data_pulse_agreement_bounds_match_the_differing_edge() {
        let d = sample_pulse();
        let pa = Params::new(300e-12, 200e-12);
        // Differing τs only: bound at the start of the *later* leading
        // ramp, t_edge − max τs − rise/2.
        let pb = Params::new(250e-12, 200e-12);
        let lead = d.t_edge - 300e-12 - d.rise / 2.0;
        assert_eq!(d.agree_until(&pa, &pb), lead);
        // Differing τh only: bound at the start of the *earlier*
        // trailing ramp, t_edge + min τh − fall/2.
        let pc = Params::new(300e-12, 260e-12);
        let trail = d.t_edge + 200e-12 - d.fall / 2.0;
        assert_eq!(d.agree_until(&pa, &pc), trail);
        // Both differ: the earlier of the two bounds wins.
        let pd = Params::new(250e-12, 260e-12);
        assert_eq!(d.agree_until(&pa, &pd), lead.min(trail));
    }

    #[test]
    fn data_pulse_agreement_is_bitwise_before_the_bound() {
        let d = sample_pulse();
        let pa = Params::new(300e-12, 200e-12);
        let pb = Params::new(150e-12, 350e-12);
        let t_star = d.agree_until(&pa, &pb);
        assert!(t_star.is_finite() && t_star > 0.0);
        // Sample strictly below the bound: values and both skew
        // derivatives must agree to the bit.
        for k in 0..100 {
            let t = t_star * (k as f64) / 100.0;
            assert_eq!(d.value(t, &pa).to_bits(), d.value(t, &pb).to_bits());
            for param in [Param::Setup, Param::Hold] {
                assert_eq!(
                    d.derivative(t, &pa, param).to_bits(),
                    d.derivative(t, &pb, param).to_bits()
                );
            }
        }
        // And the pulses do eventually diverge (the bound is not vacuous).
        let probe = d.t_edge - 150e-12;
        assert_ne!(d.value(probe, &pa).to_bits(), d.value(probe, &pb).to_bits());
    }

    #[test]
    fn data_pulse_agreement_claims_nothing_for_non_finite_inputs() {
        let d = sample_pulse();
        let p = Params::new(300e-12, 200e-12);
        assert_eq!(d.agree_until(&p, &Params::new(f64::NAN, 200e-12)), 0.0);
        assert_eq!(d.agree_until(&p, &Params::new(300e-12, f64::INFINITY)), 0.0);
        // Identical NaN bits are still bitwise-identical computations.
        let pn = Params::new(f64::NAN, 200e-12);
        assert_eq!(d.agree_until(&pn, &pn), f64::INFINITY);
        // A NaN shape field poisons the bound: claim nothing.
        let mut dn = sample_pulse();
        dn.t_edge = f64::NAN;
        assert_eq!(dn.agree_until(&p, &Params::new(250e-12, 200e-12)), 0.0);
    }

    #[test]
    fn waveform_agreement_requires_matching_variant_and_fields() {
        let pa = Params::new(300e-12, 200e-12);
        let pb = Params::new(250e-12, 200e-12);

        // Skew-independent variants: forever iff bitwise-equal.
        let dc = Waveform::dc(2.5);
        assert_eq!(dc.agree_until(&pa, &dc, &pb), f64::INFINITY);
        assert_eq!(dc.agree_until(&pa, &Waveform::dc(2.4), &pb), 0.0);

        let pwl = Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 2.5)]);
        assert_eq!(pwl.agree_until(&pa, &pwl.clone(), &pb), f64::INFINITY);
        let pwl2 = Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 2.4)]);
        assert_eq!(pwl.agree_until(&pa, &pwl2, &pb), 0.0);

        // Data pulses defer to the analytic bound when the shape fields
        // match, and claim nothing when they differ.
        let d = Waveform::Data(sample_pulse());
        let expect = sample_pulse().agree_until(&pa, &pb);
        assert_eq!(d.agree_until(&pa, &d, &pb), expect);
        let mut other = sample_pulse();
        other.v_active = 2.4;
        assert_eq!(d.agree_until(&pa, &Waveform::Data(other), &pb), 0.0);

        // Mismatched variants claim nothing.
        assert_eq!(d.agree_until(&pa, &dc, &pb), 0.0);
    }
}
