//! The lockstep stepping engine.
//!
//! [`run_lockstep`] advances `B` same-topology transients through shared
//! *element-major* structure-of-arrays buffers (`buf[element·B + lane]`):
//! one block per state/residual role, one per Jacobian role, and one
//! [`SoaLu`] for the shared-pattern factorizations. Control flow is
//! *round-based*: every active lane attempts one time step per round, and
//! the Newton solve inside a round runs stage-by-stage across lanes
//! (assemble all → combine all → factor all → solve/update all).
//!
//! Every numeric stage follows **compute-all, masked-commit**: the SoA
//! kernels run unconditionally over all `B` lanes — that is what lets
//! them vectorize across lanes — while retired/converged lanes' results
//! are either discarded (never read) or excluded by a select-style commit
//! mask. Fault draws and telemetry counts loop over *active* lanes only,
//! in lane order, before each numeric stage, preserving the scalar
//! per-lane draw cadence.
//!
//! Per lane, the engine replicates the scalar
//! [`crate::transient`] Backward-Euler fixed-step path *operation for
//! operation* — same residual/Jacobian arithmetic order, same damped
//! Newton update, same floor/fault retry policy, same step-cut and
//! recovery rules, same sensitivity recursion — so lane results are
//! bitwise identical to scalar runs. A lane that fails terminally
//! *retires*: it keeps its typed [`SpiceError`] and the remaining lanes
//! continue unaffected. A batch whose lanes are structurally mismatched
//! (same dimension, different topology) is split into per-lane singleton
//! batches — an element-major layout with one lane is exactly the scalar
//! layout, so per-lane results are unchanged.

// lint: soa-module
use shc_linalg::{lane_dispatch, multiversioned, BatchLu, SoaLu, Vector};

use crate::batch::compile::{CompiledCircuit, SoaCircuit};
use crate::circuit::Circuit;
use crate::dcop;
use crate::newton::{self, NewtonOptions};
use crate::transient::{
    with_lu_fault_retries, TransientOptions, TransientResult, TransientStats, DT_FLOOR_SLACK,
    NEWTON_FAULT_RETRIES, NEWTON_FLOOR_RETRIES, TSTOP_ENDPOINT_SLACK,
};
use crate::waveform::Params;
use crate::{Result, SpiceError};

/// Per-step lap slots, mirroring the scalar transient's private chain so
/// the profile tree shows identical phase structure for batched runs.
const LAP_NEWTON: usize = 0;
const LAP_LTE: usize = 1;
const LAP_SENS: usize = 2;
const LAP_STEP_SELF: usize = 3;

/// Flushes the batch's lap accumulators into the open
/// `shc_prof::Phase::Transient` frame on every exit path — the batched
/// counterpart of the scalar transient's flush guard (dense arm only; the
/// batched envelope excludes sparse solves).
struct BatchProfFlush<'l> {
    step: &'l shc_prof::Laps,
    iter: &'l shc_prof::Laps,
}

impl Drop for BatchProfFlush<'_> {
    fn drop(&mut self) {
        if !(self.step.active() || self.iter.active()) {
            return;
        }
        use crate::newton::lap;
        use shc_prof::{record, Phase, Sample};
        let dev = self.iter.sample(lap::DEV);
        let stamp = self.iter.sample(lap::STAMP);
        let factor = self.iter.sample(lap::FACTOR);
        let solve = self.iter.sample(lap::SOLVE);
        record(&[Phase::NewtonOverhead, Phase::DeviceEval], dev);
        record(&[Phase::NewtonOverhead, Phase::Stamp], stamp);
        record(&[Phase::NewtonOverhead, Phase::LuRefactor], factor);
        record(&[Phase::NewtonOverhead, Phase::LuSolve], solve);
        let newton = self.step.sample(LAP_NEWTON);
        let children = dev.ticks + stamp.ticks + factor.ticks + solve.ticks;
        record(
            &[Phase::NewtonOverhead],
            Sample {
                ticks: newton.ticks.saturating_sub(children),
                ..newton
            },
        );
        record(&[Phase::LteControl], self.step.sample(LAP_LTE));
        record(&[Phase::SensSolve], self.step.sample(LAP_SENS));
    }
}

/// One simulation of a lockstep batch: a circuit (same unknown count as
/// every other lane), its parameter point, and its stop time (overriding
/// the shared options' `tstop`).
#[derive(Debug, Clone, Copy)]
pub struct BatchLane<'a> {
    /// The lane's circuit; all lanes must share one unknown count, and in
    /// practice one topology (each lane is compiled independently, so
    /// only the dimension is structurally required to match).
    pub circuit: &'a Circuit,
    /// Skew parameters for this lane.
    pub params: Params,
    /// Stop time for this lane (lanes may stop at different times; a lane
    /// that reaches its endpoint simply stops stepping).
    pub tstop: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneStatus {
    Active,
    Done,
    Failed,
}

/// Per-lane bookkeeping: integration clock, statistics, and the transient
/// per-round / per-Newton-solve scratch state.
#[derive(Debug)]
struct LaneState {
    params: Params,
    tstop: f64,
    t_prev: f64,
    dt: f64,
    status: LaneStatus,
    stats: TransientStats,
    times: Vec<f64>,
    err: Option<SpiceError>,
    /// This round's step attempt.
    stepping: bool,
    t_new: f64,
    dt_eff: f64,
    /// Newton-solve state (valid while a solve over this lane runs).
    nw_active: bool,
    nw_iters: usize,
    nw_err: Option<SpiceError>,
    nw_last_norm: f64,
}

/// Canonical element-major offset: element `i`'s slot for lane `l` in a
/// batch of `b` lanes. Cold paths index through this accessor so the
/// layout convention is spelled once; hot kernels use `chunks_exact`
/// row windows instead and never index.
#[inline(always)]
fn soa_idx(i: usize, l: usize, b: usize) -> usize {
    debug_assert!(l < b);
    i * b + l
}

/// Strided per-lane finiteness check on an element-major block — used on
/// the cold accept path where only one lane is inspected.
#[inline]
fn lane_all_finite(v: &[f64], l: usize, n: usize, b: usize) -> bool {
    (0..n).all(|i| v[soa_idx(i, l, b)].is_finite())
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Fused Backward-Euler residual and step Jacobian over all lanes:
    /// `r = q − q_prev + dt·f` and `J = C + dt·G`, element-major, in the
    /// scalar path's per-element evaluation order.
    fn fuse_kernel(
        residual: &mut [f64],
        jac: &mut [f64],
        q: &[f64],
        f: &[f64],
        c: &[f64],
        g: &[f64],
        q_prev: &[f64],
        dt: &[f64],
        n: usize,
        b: usize,
    ) {
        lane_dispatch!(b, fuse_impl(residual, jac, q, f, c, g, q_prev, dt, n));
    }
}

// lint: soa-kernel
/// [`fuse_kernel`]'s body, called with a literal lane count for the
/// common widths (see [`lane_dispatch!`]) under each feature level.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fuse_impl(
    residual: &mut [f64],
    jac: &mut [f64],
    q: &[f64],
    f: &[f64],
    c: &[f64],
    g: &[f64],
    q_prev: &[f64],
    dt: &[f64],
    n: usize,
    b: usize,
) {
    debug_assert_eq!(residual.len(), n * b);
    debug_assert_eq!(jac.len(), n * n * b);
    // Chunked zips, not indexed accesses: row windows of length `b`
    // with no bounds checks are what lets the lane loop vectorize.
    for (((rw, qw), fw), qpw) in residual
        .chunks_exact_mut(b)
        .zip(q.chunks_exact(b))
        .zip(f.chunks_exact(b))
        .zip(q_prev.chunks_exact(b))
    {
        for ((((r, qv), fv), qpv), d) in rw
            .iter_mut()
            .zip(qw.iter())
            .zip(fw.iter())
            .zip(qpw.iter())
            .zip(dt.iter())
        {
            *r = *qv - *qpv + *d * *fv;
        }
    }
    for ((jw, cw), gw) in jac
        .chunks_exact_mut(b)
        .zip(c.chunks_exact(b))
        .zip(g.chunks_exact(b))
    {
        for (((j, cv), gv), d) in jw.iter_mut().zip(cw.iter()).zip(gw.iter()).zip(dt.iter()) {
            *j = *cv + *d * *gv;
        }
    }
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Per-lane finiteness probe over `rows` element-major rows of `v`:
    /// `out[l]` accumulates `v − v`, which is `+0.0` for every finite
    /// element (including `±0.0`) and NaN as soon as any element is `±∞`
    /// or NaN — so `out[l] != 0.0` is exactly "lane `l` has a non-finite
    /// element". A verdict-only check: it produces no numeric state, so
    /// it need not replicate the scalar `is_finite` loop's shape.
    fn badness_kernel(out: &mut [f64], v: &[f64], rows: usize, b: usize) {
        lane_dispatch!(b, badness_impl(out, v, rows));
    }
}

// lint: soa-kernel
/// [`badness_kernel`]'s body, called with a literal lane count for the
/// common widths (see [`lane_dispatch!`]) under each feature level.
#[inline(always)]
fn badness_impl(out: &mut [f64], v: &[f64], rows: usize, b: usize) {
    debug_assert_eq!(v.len(), rows * b);
    for o in out.iter_mut() {
        *o = 0.0;
    }
    for row in v.chunks_exact(b) {
        for (o, x) in out.iter_mut().zip(row.iter()) {
            // `x - x` is 0.0 for finite x and NaN for NaN/±Inf: the
            // accumulator stays 0.0 exactly when every element is finite.
            #[allow(clippy::eq_op)]
            {
                *o += *x - *x;
            }
        }
    }
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Newton direction post-processing for all lanes: negate (the solve
    /// produces `+J⁻¹F`; the update is `x ← x − J⁻¹F`) and clamp each
    /// component to `±max_step` — the scalar loop's exact operation
    /// order, elementwise, so running it on retired lanes' garbage is
    /// harmless.
    fn negate_clamp_kernel(delta: &mut [f64], max_step: f64) {
        for d in delta.iter_mut() {
            *d = -*d;
            if d.abs() > max_step {
                *d = d.signum() * max_step;
            }
        }
    }
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Per-lane weighted max-norms: `out[l] = max_i |d_i| / (reltol·|x_i|
    /// + abstol)`, folded in row order with `f64::max` from `0.0` —
    /// `Vector::weighted_norm` per lane, bit for bit.
    fn weighted_norm_kernel(
        out: &mut [f64],
        delta: &[f64],
        x: &[f64],
        reltol: f64,
        abstol: f64,
        n: usize,
        b: usize,
    ) {
        lane_dispatch!(b, weighted_norm_impl(out, delta, x, reltol, abstol, n));
    }
}

// lint: soa-kernel
/// [`weighted_norm_kernel`]'s body, called with a literal lane count for
/// the common widths (see [`lane_dispatch!`]) under each feature level.
#[inline(always)]
fn weighted_norm_impl(
    out: &mut [f64],
    delta: &[f64],
    x: &[f64],
    reltol: f64,
    abstol: f64,
    n: usize,
    b: usize,
) {
    debug_assert_eq!(delta.len(), n * b);
    for o in out.iter_mut() {
        *o = 0.0;
    }
    for (dw, xw) in delta.chunks_exact(b).zip(x.chunks_exact(b)) {
        for ((o, d), xv) in out.iter_mut().zip(dw.iter()).zip(xw.iter()) {
            let v = d.abs() / (reltol * xv.abs() + abstol);
            *o = (*o).max(v);
        }
    }
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Masked Newton update: `x += delta` on active lanes only, spelled
    /// as a select so inactive lanes keep their bits exactly (an
    /// unconditional `+= 0.0` would flip a stored `-0.0`).
    fn update_kernel(x: &mut [f64], delta: &[f64], active: &[bool], n: usize, b: usize) {
        lane_dispatch!(b, update_impl(x, delta, active, n));
    }
}

// lint: soa-kernel
/// [`update_kernel`]'s body, called with a literal lane count for the
/// common widths (see [`lane_dispatch!`]) under each feature level.
#[inline(always)]
fn update_impl(x: &mut [f64], delta: &[f64], active: &[bool], n: usize, b: usize) {
    debug_assert_eq!(delta.len(), n * b);
    // `x` may carry the assembly spill row past `n·b`; the zip against
    // `delta`'s `n` rows leaves it untouched (it must stay `+0.0`).
    for (xw, dw) in x.chunks_exact_mut(b).zip(delta.chunks_exact(b)) {
        for ((xv, dv), a) in xw.iter_mut().zip(dw.iter()).zip(active.iter()) {
            let nx = *xv + *dv;
            *xv = if *a { nx } else { *xv };
        }
    }
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// Masked end-of-step history rotation: `q_prev ← q`, `x_prev ← x`
    /// for lanes that accepted a step (selects — non-stepping lanes keep
    /// their history bits).
    fn rotate_kernel(
        q_prev: &mut [f64],
        x_prev: &mut [f64],
        q: &[f64],
        x: &[f64],
        stepped: &[bool],
        n: usize,
        b: usize,
    ) {
        lane_dispatch!(b, rotate_impl(q_prev, x_prev, q, x, stepped, n));
    }
}

// lint: soa-kernel
/// [`rotate_kernel`]'s body, called with a literal lane count for the
/// common widths (see [`lane_dispatch!`]) under each feature level.
#[inline(always)]
fn rotate_impl(
    q_prev: &mut [f64],
    x_prev: &mut [f64],
    q: &[f64],
    x: &[f64],
    stepped: &[bool],
    n: usize,
    b: usize,
) {
    debug_assert_eq!(q_prev.len(), n * b);
    for (((qpw, xpw), qw), xw) in q_prev
        .chunks_exact_mut(b)
        .zip(x_prev.chunks_exact_mut(b))
        .zip(q.chunks_exact(b))
        .zip(x.chunks_exact(b))
    {
        for ((((qp, xp), qv), xv), s) in qpw
            .iter_mut()
            .zip(xpw.iter_mut())
            .zip(qw.iter())
            .zip(xw.iter())
            .zip(stepped.iter())
        {
            *qp = if *s { *qv } else { *qp };
            *xp = if *s { *xv } else { *xp };
        }
    }
}

/// Row-major `out = a·b` — the exact `Matrix::mul_vec_into` loop.
#[inline]
fn mul_vec(a: &[f64], b: &[f64], n: usize, out: &mut [f64]) {
    for i in 0..n {
        let mut acc = 0.0;
        let row = &a[i * n..(i + 1) * n];
        for (aij, bj) in row.iter().zip(b.iter()) {
            acc += aij * bj;
        }
        out[i] = acc;
    }
}

/// Per-lane replica of the scalar transient's whole-run fault hook
/// (`Site::Transient`), drawn once per lane during batch setup so a
/// lane-count sweep sees the same per-run draw cadence as scalar runs.
fn injected_run_fault(opts: &TransientOptions) -> Option<SpiceError> {
    let kind = shc_fault::check(shc_fault::Site::Transient)?;
    shc_obs::count(shc_obs::Metric::FaultsInjected, 1);
    Some(match kind {
        shc_fault::FaultKind::SingularMatrix => {
            SpiceError::Linalg(shc_linalg::LinalgError::Singular {
                pivot: 0,
                value: 0.0,
            })
        }
        shc_fault::FaultKind::NanResidual => SpiceError::NumericalBlowup { time: 0.0 },
        shc_fault::FaultKind::LteStall => SpiceError::TimestepTooSmall {
            time: 0.0,
            dt: opts.dt_min,
            rejected_steps: 0,
        },
        shc_fault::FaultKind::NonConvergence => SpiceError::NewtonDiverged {
            context: "transient run (injected fault)",
            iterations: 0,
            residual: f64::INFINITY,
        },
    })
}

/// Runs every lane to its stop time in lockstep.
///
/// Returns one `Result` per lane, in lane order: `Ok` with a final-only
/// [`TransientResult`] bitwise identical to the scalar path, or the typed
/// error the scalar run would have produced. The outer `Result` reports
/// *structural* problems (mixed dimensions, an unsupported configuration,
/// an uncompilable lane circuit) before any simulation starts.
///
/// Telemetry: one `Transient` span/phase frame and one `TransientRuns`
/// count of `lanes.len()` covers the whole batch; per-lane steps, Newton
/// iterations, and rejections are observed individually at the end so
/// distribution metrics match `lanes.len()` scalar runs.
///
/// # Errors
///
/// [`SpiceError::BadCircuit`] when the batch is structurally invalid or
/// outside the batched envelope (callers should gate on
/// [`crate::batch::supported`] / [`crate::batch::BatchPolicy`]).
pub fn run_lockstep(
    lanes: &[BatchLane<'_>],
    opts: &TransientOptions,
) -> Result<Vec<Result<TransientResult>>> {
    if lanes.is_empty() {
        return Ok(Vec::new());
    }
    let n = lanes[0].circuit.unknown_count();
    for (l, lane) in lanes.iter().enumerate() {
        if lane.circuit.unknown_count() != n {
            return Err(SpiceError::BadCircuit {
                reason: format!(
                    "lockstep batch requires one dimension: lane 0 has {n} unknowns, lane {l} has {}",
                    lane.circuit.unknown_count()
                ),
            });
        }
        if !(lane.tstop.is_finite() && lane.tstop > 0.0) {
            return Err(SpiceError::BadCircuit {
                reason: format!("lane {l} has non-positive stop time {}", lane.tstop),
            });
        }
        if !crate::batch::supported(lane.circuit, opts) {
            return Err(SpiceError::BadCircuit {
                reason: format!(
                    "lane {l} is outside the batched envelope (needs Backward Euler, fixed \
                     steps, final-only recording, DC start, dense solves, and batchable devices)"
                ),
            });
        }
    }
    let compiled: Vec<CompiledCircuit> = lanes
        .iter()
        .map(|lane| {
            CompiledCircuit::compile(lane.circuit).expect("supported() verified compilability")
        })
        .collect();
    let Some(soa) = SoaCircuit::merge(&compiled) else {
        // Structurally mismatched lanes (same dimension, different
        // topology): split into per-lane singleton batches. A single lane
        // always merges with itself, and one-lane element-major layout is
        // exactly the scalar layout, so per-lane results are bitwise
        // unchanged; only the lockstep sharing (and the one-span-per-batch
        // telemetry grouping) is lost.
        let mut results = Vec::with_capacity(lanes.len());
        for lane in lanes {
            results.extend(run_lockstep(std::slice::from_ref(lane), opts)?);
        }
        return Ok(results);
    };

    // One span + frame + run count per batch; the lap accumulators flush
    // beneath the frame on every exit path, mirroring the scalar run.
    let _span = shc_obs::span(shc_obs::SpanKind::Transient);
    let _frame = shc_prof::enter(shc_prof::Phase::Transient);
    shc_obs::count(shc_obs::Metric::TransientRuns, lanes.len() as u64);
    let lap_step = shc_prof::Laps::step();
    let lap_iter = shc_prof::Laps::iter();
    let _prof_flush = BatchProfFlush {
        step: &lap_step,
        iter: &lap_iter,
    };

    // Shared-prefix trunk: characterization sweeps vary only source
    // timing, so every lane's inputs — device values, waveforms, and skew
    // derivatives — are often provably bitwise identical up to an
    // *agreement horizon* (the earliest time any two lanes' waveforms
    // stop being the same function). On that prefix all lanes perform the
    // identical computation; running it once on a single-lane engine and
    // broadcasting the state is therefore bitwise-exact and skips
    // `b − 1` redundant DC solves and prefix transients. Fault-injection
    // campaigns skip the trunk: sharing would collapse the documented
    // per-lane draw cadence. Lanes with different stop times keep their
    // own step schedules, so they forgo the trunk too.
    let horizon = if lanes.len() >= 2
        && !shc_fault::enabled()
        && lanes
            .iter()
            .all(|lane| lane.tstop.to_bits() == lanes[0].tstop.to_bits())
    {
        let params_v: Vec<Params> = lanes.iter().map(|lane| lane.params).collect();
        soa.agreement_horizon(&params_v)
    } else {
        0.0
    };

    let mut engine = Engine::new(lanes, soa, opts);
    if horizon > 0.0 {
        let trunk_soa =
            SoaCircuit::merge(&compiled[..1]).expect("a single lane always merges with itself");
        let mut trunk = Engine::new(&lanes[..1], trunk_soa, opts);
        trunk.t_limit = horizon;
        trunk.init(&lanes[..1]);
        trunk.run(&lap_step, &lap_iter);
        engine.adopt_trunk(trunk);
    } else {
        engine.init(lanes);
    }
    engine.run(&lap_step, &lap_iter);
    engine.flush_observations();
    Ok(engine.into_results())
}

/// The SoA state of one batch. All numeric buffers are flat `Vec<f64>`
/// in *element-major* blocks (`element·b + lane`), allocated once in
/// [`Engine::new`]; the stepping rounds are allocation-free apart from
/// the amortized per-step `times` push.
///
/// Buffer geometry (`b` lanes, `n` unknowns): plain blocks are `n·b`
/// (vectors) / `n²·b` (matrices); the blocks fed to
/// [`SoaCircuit::assemble_all`] carry one extra *spill* row/cell
/// absorbing ground stamps — `x`, `q`, `f` are `(n+1)·b` and `c`, `g`
/// are `(n²+1)·b`. `x`'s spill row is the ground potential and must stay
/// all `+0.0`; no kernel writes it. The sensitivity history `c_prev` is
/// *lane-major* (the recursion consumes one lane at a time).
struct Engine<'e> {
    n: usize,
    n_sens: usize,
    b: usize,
    /// Hard stepping ceiling: a lane only attempts a step whose endpoint
    /// is strictly below this. The shared-prefix trunk runs with the
    /// batch's agreement horizon here; a full run uses `+∞`. Pausing at
    /// the ceiling never alters the arithmetic of the steps taken.
    t_limit: f64,
    opts: &'e TransientOptions,
    soa: SoaCircuit,
    lanes: Vec<LaneState>,
    // Element-major n·b blocks.
    /// soa: element-major, state
    x_prev: Vec<f64>,
    /// soa: element-major, scratch
    delta: Vec<f64>,
    /// soa: element-major, scratch
    residual: Vec<f64>,
    /// soa: element-major, state
    q_prev: Vec<f64>,
    // Element-major (n+1)·b blocks (assembly spill row).
    /// soa: element-major, state
    x: Vec<f64>,
    /// soa: element-major, scratch
    q: Vec<f64>,
    /// soa: element-major, scratch
    f: Vec<f64>,
    // Element-major matrix blocks, (n²+1)·b (assembly spill cell). The
    // step Jacobian `C + dt·G` has no block of its own: it is fused
    // straight into the [`SoaLu`] factor buffer.
    /// soa: element-major, scratch
    c: Vec<f64>,
    /// soa: element-major, scratch
    g: Vec<f64>,
    /// Previous accepted step's `C` per lane, lane-major (sensitivity
    /// recursion only; de-interleaved from `c` on step acceptance).
    /// soa: lane-major, state
    c_prev: Vec<f64>,
    lu: SoaLu,
    sens_lu: BatchLu,
    /// Sensitivity states, `lanes·n_sens` stacked n-vectors, lane-major.
    /// soa: lane-major, state
    m: Vec<f64>,
    // Per-lane scratch (length b): assembly times, effective steps, the
    // compute-all commit mask, solver error slots, finiteness probes, and
    // weighted norms.
    params_v: Vec<Params>,
    t_v: Vec<f64>,
    dt_v: Vec<f64>,
    active: Vec<bool>,
    errs: Vec<Option<shc_linalg::LinalgError>>,
    bad: Vec<f64>,
    norms: Vec<f64>,
    // Single-lane scratch (retry starts and sensitivity temporaries are
    // consumed within one lane's turn, so one buffer serves all lanes).
    start: Vec<f64>,
    dfdp: Vec<f64>,
    sens_rhs: Vec<f64>,
    sens_tmp: Vec<f64>,
    jac_s: Vec<f64>,
}

impl<'e> Engine<'e> {
    fn new(lanes: &[BatchLane<'_>], soa: SoaCircuit, opts: &'e TransientOptions) -> Engine<'e> {
        let n = soa.dim();
        let n_sens = opts.sensitivities.len();
        let b = lanes.len();
        let lane_states = lanes
            .iter()
            .map(|lane| {
                let dt = opts.dt.min(lane.tstop);
                let cap = (lane.tstop / dt).ceil() as usize + 2;
                LaneState {
                    params: lane.params,
                    tstop: lane.tstop,
                    t_prev: 0.0,
                    dt,
                    status: LaneStatus::Active,
                    stats: TransientStats::default(),
                    times: Vec::with_capacity(cap),
                    err: None,
                    stepping: false,
                    t_new: 0.0,
                    dt_eff: 0.0,
                    nw_active: false,
                    nw_iters: 0,
                    nw_err: None,
                    nw_last_norm: f64::INFINITY,
                }
            })
            .collect();
        Engine {
            n,
            n_sens,
            b,
            t_limit: f64::INFINITY,
            opts,
            soa,
            lanes: lane_states,
            x_prev: vec![0.0; n * b],
            delta: vec![0.0; n * b],
            residual: vec![0.0; n * b],
            q_prev: vec![0.0; n * b],
            x: vec![0.0; (n + 1) * b],
            q: vec![0.0; (n + 1) * b],
            f: vec![0.0; (n + 1) * b],
            c: vec![0.0; (n * n + 1) * b],
            g: vec![0.0; (n * n + 1) * b],
            c_prev: vec![0.0; if n_sens > 0 { b * n * n } else { 0 }],
            lu: SoaLu::new(b, n),
            sens_lu: BatchLu::new(if n_sens > 0 { b } else { 0 }, n),
            m: vec![0.0; b * n_sens * n],
            params_v: lanes.iter().map(|lane| lane.params).collect(),
            t_v: vec![0.0; b],
            dt_v: vec![0.0; b],
            active: vec![false; b],
            errs: vec![None; b],
            bad: vec![0.0; b],
            norms: vec![0.0; b],
            start: vec![0.0; n],
            dfdp: vec![0.0; n],
            sens_rhs: vec![0.0; n],
            sens_tmp: vec![0.0; n],
            jac_s: vec![0.0; n * n],
        }
    }

    fn fail(&mut self, l: usize, e: SpiceError) {
        let lane = &mut self.lanes[l];
        lane.status = LaneStatus::Failed;
        lane.err = Some(e);
        lane.stepping = false;
    }

    /// Per-lane setup — run-site fault draws and scalar DC operating
    /// points in lane order (preserving the scalar per-run draw cadence)
    /// — then one SoA assembly for the `t = 0` history stamps (`q_prev`,
    /// `c_prev`). Assembly draws nothing, so batching it after the
    /// per-lane loop leaves the cadence untouched.
    fn init(&mut self, input: &[BatchLane<'_>]) {
        let n = self.n;
        let b = self.b;
        for (l, lane_in) in input.iter().enumerate().take(self.lanes.len()) {
            if let Some(e) = injected_run_fault(self.opts) {
                self.fail(l, e);
                continue;
            }
            let x0 = match dcop::solve_dc(lane_in.circuit, &self.lanes[l].params, &self.opts.dc) {
                Ok(dc) => dc.x,
                Err(e) => {
                    self.fail(l, e);
                    continue;
                }
            };
            for (i, v) in x0.as_slice().iter().enumerate() {
                self.x_prev[soa_idx(i, l, b)] = *v;
            }
        }
        {
            let Engine {
                soa,
                x,
                x_prev,
                t_v,
                params_v,
                q,
                f,
                c,
                g,
                ..
            } = self;
            x[..n * b].copy_from_slice(x_prev);
            t_v.fill(0.0);
            soa.assemble_all(x, t_v, params_v, q, f, c, g);
        }
        self.q_prev.copy_from_slice(&self.q[..n * b]);
        for l in 0..self.lanes.len() {
            if self.lanes[l].status != LaneStatus::Active {
                continue;
            }
            if self.n_sens > 0 {
                let m0 = l * n * n;
                for idx in 0..n * n {
                    self.c_prev[m0 + idx] = self.c[idx * b + l];
                }
            }
            self.lanes[l].times.push(0.0);
        }
    }

    // lint: trunk-fence
    /// Adopts a finished single-lane *trunk* engine's state into every
    /// lane of this batch, replacing [`Engine::init`].
    ///
    /// The trunk ran lane 0's simulation over the prefix on which every
    /// lane's inputs are provably bitwise identical (the agreement
    /// horizon), so each lane's state after that prefix *is* the trunk's
    /// state: histories, sensitivities, statistics, and accepted times
    /// are broadcast verbatim. A trunk that finished (`Done`) or retired
    /// (`Failed`) determines every lane's outcome the same way, because
    /// each lane's scalar run would have performed the identical
    /// computation.
    fn adopt_trunk(&mut self, trunk: Engine<'_>) {
        debug_assert_eq!(trunk.b, 1);
        debug_assert_eq!(trunk.n, self.n);
        let (n, b) = (self.n, self.b);
        for i in 0..n {
            let (xv, qv) = (trunk.x_prev[i], trunk.q_prev[i]);
            for l in 0..b {
                self.x_prev[soa_idx(i, l, b)] = xv;
                self.q_prev[soa_idx(i, l, b)] = qv;
            }
        }
        if self.n_sens > 0 {
            let (sn, nn) = (self.n_sens * n, n * n);
            for l in 0..b {
                self.m[l * sn..(l + 1) * sn].copy_from_slice(&trunk.m);
                self.c_prev[l * nn..(l + 1) * nn].copy_from_slice(&trunk.c_prev);
            }
        }
        let src = &trunk.lanes[0];
        for lane in self.lanes.iter_mut() {
            lane.t_prev = src.t_prev;
            lane.dt = src.dt;
            lane.status = src.status;
            lane.stats = src.stats;
            lane.times = src.times.clone();
            lane.err = src.err.clone();
        }
    }

    /// Arms lane `l` for a Newton solve: entry fault draw, then the
    /// iterate is seeded from `x_prev` (first attempt) or the jittered
    /// `start` buffer (retries).
    fn newton_start(&mut self, l: usize, from_start: bool) {
        {
            let lane = &mut self.lanes[l];
            lane.nw_iters = 0;
            lane.nw_err = None;
            lane.nw_last_norm = f64::INFINITY;
            if let Some(e) = newton::injected_fault() {
                lane.nw_active = false;
                lane.nw_err = Some(e);
                return;
            }
            lane.nw_active = true;
        }
        let (n, b) = (self.n, self.b);
        if from_start {
            for i in 0..n {
                self.x[soa_idx(i, l, b)] = self.start[i];
            }
        } else {
            for i in 0..n {
                self.x[soa_idx(i, l, b)] = self.x_prev[soa_idx(i, l, b)];
            }
        }
    }

    /// The staged lockstep Newton iteration over every `nw_active` lane:
    /// assemble all → residual/Jacobian all → factor all → solve/update
    /// all, per iteration, with lanes leaving the commit mask as they
    /// converge or error. Every numeric stage is a compute-all SoA kernel
    /// over all `b` lanes; outcomes land in each lane's
    /// `nw_iters`/`nw_err`.
    // lint: hot-fn
    fn newton_iterate(&mut self, lap_iter: &shc_prof::Laps, nopts: &NewtonOptions) {
        let n = self.n;
        let b = self.b;
        // Per-round kernel constants; entries of non-stepping lanes are
        // stale and feed only discarded computations.
        for (l, lane) in self.lanes.iter().enumerate() {
            self.t_v[l] = lane.t_new;
            self.dt_v[l] = lane.dt_eff;
        }
        // lint: hot-loop
        for iter in 1..=nopts.max_iters {
            let active_count = self.lanes.iter().filter(|l| l.nw_active).count() as u64;
            if active_count == 0 {
                break;
            }

            // Stage 1: one SoA device evaluation + stamping pass over all
            // lanes (inactive lanes' results are never committed).
            lap_iter.end_region(newton::lap::ITER_SELF);
            {
                let Engine {
                    soa,
                    x,
                    t_v,
                    params_v,
                    q,
                    f,
                    c,
                    g,
                    ..
                } = self;
                soa.assemble_all(x, t_v, params_v, q, f, c, g);
            }
            lap_iter.end_region(newton::lap::DEV);
            lap_iter.bump(
                newton::lap::DEV,
                active_count,
                active_count * self.soa.device_count() as u64,
            );

            // Stage 2: Backward-Euler residual and step Jacobian. Fused
            // per element but in the scalar copy/axpy evaluation order, so
            // every value rounds identically. The Jacobian is written
            // straight into the factor buffer, skipping a staging block.
            {
                let Engine {
                    residual,
                    lu,
                    q,
                    f,
                    c,
                    g,
                    q_prev,
                    dt_v,
                    ..
                } = self;
                fuse_kernel(
                    residual,
                    lu.matrix_mut(),
                    &q[..n * b],
                    &f[..n * b],
                    &c[..n * n * b],
                    &g[..n * n * b],
                    q_prev,
                    dt_v,
                    n,
                    b,
                );
            }
            lap_iter.end_region(newton::lap::STAMP);
            lap_iter.bump(newton::lap::STAMP, active_count, active_count * n as u64);

            // Stage 3: finiteness verdicts (residual first, Jacobian
            // second, as in the scalar dense path — lanes that fail skip
            // the factorization and its fault draw), then one SoA
            // factorization with draws over the surviving active lanes.
            let mut factored = 0u64;
            {
                let Engine {
                    lanes,
                    residual,
                    lu,
                    active,
                    errs,
                    bad,
                    ..
                } = self;
                badness_kernel(bad, residual, n, b);
                for (l, lane) in lanes.iter_mut().enumerate() {
                    // lint: allow(float-eq, reason = "exact +0.0 is the badness probe's 'all finite' verdict")
                    if lane.nw_active && bad[l] != 0.0 {
                        lane.nw_active = false;
                        lane.nw_err = Some(SpiceError::NumericalBlowup { time: f64::NAN });
                    }
                }
                badness_kernel(bad, lu.matrix(), n * n, b);
                for (l, lane) in lanes.iter_mut().enumerate() {
                    // lint: allow(float-eq, reason = "exact +0.0 is the badness probe's 'all finite' verdict")
                    if lane.nw_active && bad[l] != 0.0 {
                        lane.nw_active = false;
                        lane.nw_err = Some(SpiceError::NumericalBlowup { time: f64::NAN });
                    }
                }
                for (l, lane) in lanes.iter().enumerate() {
                    active[l] = lane.nw_active;
                    errs[l] = None;
                }
                lu.factor_all_in_place(active, errs);
                for (l, lane) in lanes.iter_mut().enumerate() {
                    if !lane.nw_active {
                        continue;
                    }
                    match errs[l].take() {
                        None => factored += 1,
                        Some(e) => {
                            lane.nw_active = false;
                            lane.nw_err = Some(SpiceError::from(e));
                        }
                    }
                }
            }
            lap_iter.end_region(newton::lap::FACTOR);
            lap_iter.bump(newton::lap::FACTOR, factored, factored * n as u64);

            // Stage 4: back-substitute all lanes, then damp, norm, and
            // commit (masked) — the scalar per-lane order: solve →
            // negate/clamp → weighted norm (pre-update x) → update →
            // finiteness → convergence.
            let mut solved = 0u64;
            {
                let Engine {
                    lanes,
                    residual,
                    delta,
                    x,
                    lu,
                    active,
                    errs,
                    bad,
                    norms,
                    ..
                } = self;
                for (l, lane) in lanes.iter().enumerate() {
                    active[l] = lane.nw_active;
                    errs[l] = None;
                }
                lu.solve_all(residual, delta, active, errs);
                for (l, lane) in lanes.iter_mut().enumerate() {
                    if !lane.nw_active {
                        continue;
                    }
                    match errs[l].take() {
                        None => solved += 1,
                        Some(e) => {
                            lane.nw_active = false;
                            lane.nw_err = Some(SpiceError::from(e));
                        }
                    }
                }
                for (l, lane) in lanes.iter().enumerate() {
                    active[l] = lane.nw_active;
                }
                negate_clamp_kernel(delta, nopts.max_step);
                weighted_norm_kernel(norms, delta, &x[..n * b], nopts.reltol, nopts.abstol, n, b);
                update_kernel(x, delta, active, n, b);
                badness_kernel(bad, &x[..n * b], n, b);
                for (l, lane) in lanes.iter_mut().enumerate() {
                    if !lane.nw_active {
                        continue;
                    }
                    // lint: allow(float-eq, reason = "exact +0.0 is the badness probe's 'all finite' verdict")
                    if bad[l] != 0.0 {
                        lane.nw_active = false;
                        lane.nw_err = Some(SpiceError::NumericalBlowup { time: f64::NAN });
                        continue;
                    }
                    lane.nw_last_norm = norms[l];
                    if norms[l] <= 1.0 {
                        lane.nw_iters = iter;
                        lane.nw_active = false; // converged: `nw_err` stays `None`
                    }
                }
            }
            lap_iter.end_region(newton::lap::SOLVE);
            lap_iter.bump(newton::lap::SOLVE, solved, solved * n as u64);
        }
        // lint: end-hot-loop

        // Iteration budget exhausted for whoever is still active.
        for lane in self.lanes.iter_mut() {
            if lane.nw_active {
                lane.nw_active = false;
                lane.nw_err = Some(SpiceError::NewtonDiverged {
                    context: "newton solve",
                    iterations: nopts.max_iters,
                    residual: lane.nw_last_norm,
                });
            }
        }
    }

    /// The damped jittered-retry policy for one lane — a lockstep replica
    /// of `newton::retry_in_place` sharing its exact jitter stream and
    /// damping schedule.
    fn retry_lane(
        &mut self,
        lap_iter: &shc_prof::Laps,
        l: usize,
        retries: usize,
        first: SpiceError,
    ) {
        let mut last = first;
        if !newton::retryable(&last) {
            self.lanes[l].nw_err = Some(last);
            return;
        }
        let b = self.b;
        let base = self.opts.newton;
        for attempt in 1..=retries as u32 {
            let damped = NewtonOptions {
                max_step: base.max_step * 0.5f64.powi(attempt as i32),
                ..base
            };
            {
                // `x_prev` is element-major: lane `l`'s previous state is
                // the stride-`b` column, not a contiguous block. Gather it
                // first so the retry seed is jittered from the same values
                // `retry_in_place` would use on the scalar path.
                let Engine {
                    start,
                    sens_tmp,
                    x_prev,
                    ..
                } = self;
                for (i, v) in sens_tmp.iter_mut().enumerate() {
                    *v = x_prev[soa_idx(i, l, b)];
                }
                newton::jitter_slice(start, sens_tmp, attempt);
            }
            self.newton_start(l, true);
            if self.lanes[l].nw_active {
                self.newton_iterate(lap_iter, &damped);
            }
            match self.lanes[l].nw_err.take() {
                None => {
                    shc_obs::count(shc_obs::Metric::NewtonRecoveries, 1);
                    return;
                }
                Some(e) if newton::retryable(&e) => last = e,
                Some(e) => {
                    self.lanes[l].nw_err = Some(e);
                    return;
                }
            }
        }
        self.lanes[l].nw_err = Some(last);
    }

    /// Applies the scalar per-step outcome policy to every stepping lane:
    /// floor/fault retries, the dt-quarter cut on divergence, terminal
    /// retirement, then re-stamp + sensitivity recursion for accepted
    /// steps.
    fn resolve_round(&mut self, lap_step: &shc_prof::Laps, lap_iter: &shc_prof::Laps) {
        let n = self.n;
        let b = self.b;
        let dt_min = self.opts.dt_min;

        // Retry policies, in the scalar solve's arm order.
        for l in 0..self.lanes.len() {
            if !self.lanes[l].stepping {
                continue;
            }
            let Some(e) = self.lanes[l].nw_err.take() else {
                continue;
            };
            let at_floor = self.lanes[l].dt_eff <= dt_min * DT_FLOOR_SLACK;
            if matches!(e, SpiceError::NewtonDiverged { .. }) && at_floor {
                self.retry_lane(lap_iter, l, NEWTON_FLOOR_RETRIES, e);
            } else if shc_fault::enabled() && newton::retryable(&e) {
                self.retry_lane(lap_iter, l, NEWTON_FAULT_RETRIES, e);
            } else {
                self.lanes[l].nw_err = Some(e);
            }
        }
        lap_step.end_region(LAP_NEWTON);

        // Outcomes: cut, retire, or accept.
        for l in 0..self.lanes.len() {
            if !self.lanes[l].stepping {
                continue;
            }
            match self.lanes[l].nw_err.take() {
                Some(SpiceError::NewtonDiverged { .. })
                    if self.lanes[l].dt_eff > dt_min * DT_FLOOR_SLACK =>
                {
                    let lane = &mut self.lanes[l];
                    lane.dt = (lane.dt_eff / 4.0).max(dt_min);
                    lane.stats.rejected_steps += 1;
                    lane.stepping = false; // re-attempted next round
                    lap_step.bump(LAP_NEWTON, 1, 0);
                }
                Some(e) => self.fail(l, e),
                None => {
                    let iters = self.lanes[l].nw_iters;
                    self.lanes[l].stats.newton_iterations += iters;
                    lap_step.bump(LAP_NEWTON, 1, iters as u64);
                    if !lane_all_finite(&self.x, l, n, b) {
                        let t_new = self.lanes[l].t_new;
                        self.fail(l, SpiceError::NumericalBlowup { time: t_new });
                    }
                }
            }
        }

        // Accepted lanes: one SoA re-stamp at the converged points (exact
        // `C_i`/`G_i`/`q_i` for the history and sensitivity recursion).
        // Retired lanes' blocks are clobbered with garbage, which is fine:
        // the history rotation is masked and they never read them.
        let mut accepted = 0u64;
        if self.lanes.iter().any(|lane| lane.stepping) {
            let Engine {
                lanes,
                soa,
                x,
                t_v,
                params_v,
                q,
                f,
                c,
                g,
                ..
            } = self;
            for (l, lane) in lanes.iter().enumerate() {
                t_v[l] = lane.t_new;
            }
            soa.assemble_all(x, t_v, params_v, q, f, c, g);
            for l in 0..self.lanes.len() {
                if !self.lanes[l].stepping {
                    continue;
                }
                if self.n_sens > 0 {
                    if let Err(e) = self.lane_sens(l) {
                        self.fail(l, e);
                        continue;
                    }
                }
                accepted += 1;
            }
        }
        lap_step.end_region(LAP_SENS);
        lap_step.bump(LAP_SENS, accepted, accepted * self.n_sens as u64);
    }

    /// The Backward-Euler sensitivity recursion for one accepted lane:
    /// `(C_i + dt·G_i)·m_i = C_{i−1}·m_{i−1} − dt·∂f/∂p`, factored once
    /// per step and back-substituted per parameter — the scalar path's
    /// arithmetic on lane blocks.
    fn lane_sens(&mut self, l: usize) -> Result<()> {
        let n = self.n;
        let b = self.b;
        let n_sens = self.n_sens;
        let dt_eff = self.lanes[l].dt_eff;
        let t_new = self.lanes[l].t_new;
        let (m0, m1) = (l * n * n, (l + 1) * n * n);
        {
            // Gather the lane's step Jacobian from the element-major
            // blocks into dense row-major scratch (the scalar `C + dt·G`
            // arithmetic on this lane's values, bit for bit).
            let Engine { jac_s, c, g, .. } = self;
            for (idx, j) in jac_s.iter_mut().enumerate() {
                *j = c[idx * b + l] + dt_eff * g[idx * b + l];
            }
        }
        {
            let Engine { sens_lu, jac_s, .. } = self;
            with_lu_fault_retries(|| sens_lu.factor_lane(l, jac_s))?;
        }
        for k in 0..n_sens {
            let param = self.opts.sensitivities[k];
            let s0 = (l * n_sens + k) * n;
            {
                let Engine {
                    soa, lanes, dfdp, ..
                } = self;
                soa.assemble_dfdp(l, t_new, &lanes[l].params, param, dfdp);
            }
            {
                let Engine {
                    c_prev,
                    m,
                    sens_rhs,
                    dfdp,
                    ..
                } = self;
                mul_vec(&c_prev[m0..m1], &m[s0..s0 + n], n, sens_rhs);
                for (r, d) in sens_rhs.iter_mut().zip(dfdp.iter()) {
                    *r += -dt_eff * d;
                }
            }
            {
                let Engine {
                    sens_lu,
                    sens_rhs,
                    sens_tmp,
                    ..
                } = self;
                with_lu_fault_retries(|| sens_lu.solve_lane(l, sens_rhs, sens_tmp))?;
            }
            self.m[s0..s0 + n].copy_from_slice(&self.sens_tmp);
        }
        Ok(())
    }

    /// End-of-round bookkeeping for accepted lanes: statistics, time
    /// record, history rotation, and fixed-step dt recovery.
    fn finish_round(&mut self, lap_step: &shc_prof::Laps) {
        let n = self.n;
        let b = self.b;
        let opts_dt = self.opts.dt;
        let has_sens = self.n_sens > 0;
        {
            let Engine {
                lanes,
                x,
                x_prev,
                q,
                q_prev,
                active,
                ..
            } = self;
            for (l, lane) in lanes.iter().enumerate() {
                active[l] = lane.stepping;
            }
            rotate_kernel(q_prev, x_prev, &q[..n * b], &x[..n * b], active, n, b);
        }
        let Engine {
            lanes, c, c_prev, ..
        } = self;
        for (l, lane) in lanes.iter_mut().enumerate() {
            if !lane.stepping {
                continue;
            }
            lane.stepping = false;
            lane.stats.steps += 1;
            // lint: allow(hot-loop-alloc, reason = "amortized: one push per accepted step into a capacity-reserved Vec")
            lane.times.push(lane.t_new);
            if has_sens {
                // De-interleave this lane's accepted-step `C` into the
                // lane-major sensitivity history.
                let m0 = l * n * n;
                for idx in 0..n * n {
                    c_prev[m0 + idx] = c[idx * b + l];
                }
            }
            lane.t_prev = lane.t_new;
            // Fixed-step recovery after a Newton-failure cut.
            if lane.dt < opts_dt {
                lane.dt = (lane.dt * 2.0).min(opts_dt);
            }
        }
        lap_step.end_region(LAP_STEP_SELF);
    }

    /// The round loop: every active lane attempts one step per round
    /// until all lanes are done or retired.
    fn run(&mut self, lap_step: &shc_prof::Laps, lap_iter: &shc_prof::Laps) {
        let nopts = self.opts.newton;
        let t_limit = self.t_limit;
        loop {
            let mut any = false;
            for lane in self.lanes.iter_mut() {
                lane.stepping = false;
                if lane.status != LaneStatus::Active {
                    continue;
                }
                if lane.t_prev < lane.tstop - TSTOP_ENDPOINT_SLACK * lane.tstop.max(1.0) {
                    let t_new = (lane.t_prev + lane.dt).min(lane.tstop);
                    // Strictly below the ceiling: at exactly `t_limit` a
                    // linear-ramp skew derivative may already differ
                    // across lanes, so the trunk must not evaluate there.
                    // A lane at the ceiling pauses (stays `Active`); with
                    // the default `+∞` ceiling this branch is always
                    // taken.
                    if t_new < t_limit {
                        lane.t_new = t_new;
                        lane.dt_eff = t_new - lane.t_prev;
                        lane.stepping = true;
                        any = true;
                    }
                } else {
                    lane.status = LaneStatus::Done;
                }
            }
            if !any {
                break;
            }
            for l in 0..self.lanes.len() {
                if self.lanes[l].stepping {
                    self.newton_start(l, false);
                }
            }
            self.newton_iterate(lap_iter, &nopts);
            self.resolve_round(lap_step, lap_iter);
            self.finish_round(lap_step);
        }
    }

    /// Per-lane work counters, flushed once at the end so distribution
    /// metrics match `lanes` individual scalar runs.
    fn flush_observations(&self) {
        let total_steps: u64 = self.lanes.iter().map(|l| l.stats.steps as u64).sum();
        shc_prof::add_work(total_steps);
        if shc_obs::enabled() {
            for lane in &self.lanes {
                shc_obs::observe(shc_obs::Metric::TransientSteps, lane.stats.steps as u64);
                shc_obs::observe(
                    shc_obs::Metric::NewtonIterations,
                    lane.stats.newton_iterations as u64,
                );
                shc_obs::observe(
                    shc_obs::Metric::LteRejections,
                    lane.stats.rejected_steps as u64,
                );
            }
        }
    }

    fn into_results(self) -> Vec<Result<TransientResult>> {
        let Engine {
            n,
            n_sens,
            b,
            opts,
            lanes,
            x_prev,
            m,
            ..
        } = self;
        lanes
            .into_iter()
            .enumerate()
            .map(|(l, lane)| match lane.status {
                LaneStatus::Failed => Err(lane.err.expect("failed lane carries its error")),
                LaneStatus::Done | LaneStatus::Active => {
                    let final_state = Vector::from_iter((0..n).map(|i| x_prev[soa_idx(i, l, b)]));
                    let sens = (0..n_sens)
                        .map(|k| {
                            let s0 = (l * n_sens + k) * n;
                            (opts.sensitivities[k], Vector::from_slice(&m[s0..s0 + n]))
                        })
                        .collect();
                    Ok(TransientResult::from_parts(
                        lane.times,
                        final_state,
                        sens,
                        lane.stats,
                    ))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, MosParams, Mosfet, Resistor, VoltageSource};
    use crate::transient::{RecordMode, TransientAnalysis};
    use crate::waveform::{DataPulse, Param, RampShape, Waveform};
    use crate::Circuit;

    /// Satellite width-parity sweep for the masked select kernels:
    /// every [`lane_dispatch!`] width 1..=16 (literal arms and runtime
    /// fallback) of [`update_kernel`] must match the scalar select
    /// semantics bit for bit — including `-0.0` preservation on
    /// inactive lanes (an unconditional `+=` would flip it) and the
    /// untouched assembly spill row.
    #[test]
    fn update_kernel_every_width_matches_scalar_select_bitwise() {
        let n = 3;
        for b in 1..=16usize {
            let mut x = vec![0.0; (n + 1) * b];
            let mut delta = vec![0.0; n * b];
            let mut active = vec![false; b];
            for l in 0..b {
                active[l] = l % 3 != 1;
                for i in 0..n {
                    // `-0.0` on inactive lanes is the bit the select must
                    // keep; active lanes get lane-distinct values.
                    x[soa_idx(i, l, b)] = if active[l] {
                        0.25 * (i as f64) - (l as f64)
                    } else {
                        -0.0
                    };
                    delta[soa_idx(i, l, b)] = 1.5 * (i as f64 + 1.0) + 0.125 * (l as f64);
                }
                // Spill row: must stay exactly +0.0.
                x[soa_idx(n, l, b)] = 0.0;
            }
            let expect: Vec<f64> = (0..(n + 1) * b)
                .map(|idx| {
                    let (i, l) = (idx / b, idx % b);
                    if i < n && active[l] {
                        x[idx] + delta[idx]
                    } else {
                        x[idx]
                    }
                })
                .collect();
            update_kernel(&mut x, &delta, &active, n, b);
            for (idx, (got, want)) in x.iter().zip(expect.iter()).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "width {b} slot {idx} diverged (got {got}, want {want})"
                );
            }
            // The inactive lanes' `-0.0` survived as `-0.0`.
            for l in 0..b {
                if !active[l] {
                    assert!(
                        x[soa_idx(0, l, b)].is_sign_negative(),
                        "width {b}: -0.0 flipped"
                    );
                }
            }
        }
    }

    #[test]
    fn rotate_kernel_every_width_matches_scalar_select_bitwise() {
        let n = 2;
        for b in 1..=16usize {
            let mut q_prev = vec![0.0; n * b];
            let mut x_prev = vec![0.0; n * b];
            let mut q = vec![0.0; n * b];
            let mut x = vec![0.0; n * b];
            let mut stepped = vec![false; b];
            for l in 0..b {
                stepped[l] = l % 2 == 0;
                for i in 0..n {
                    q_prev[soa_idx(i, l, b)] = -0.0;
                    x_prev[soa_idx(i, l, b)] = 10.0 + i as f64 + 100.0 * l as f64;
                    q[soa_idx(i, l, b)] = 0.5 * (i as f64) - l as f64;
                    x[soa_idx(i, l, b)] = -3.0 * (i as f64 + 1.0) + 0.25 * l as f64;
                }
            }
            let (eq, ex): (Vec<f64>, Vec<f64>) = (0..n * b)
                .map(|idx| {
                    let l = idx % b;
                    if stepped[l] {
                        (q[idx], x[idx])
                    } else {
                        (q_prev[idx], x_prev[idx])
                    }
                })
                .unzip();
            rotate_kernel(&mut q_prev, &mut x_prev, &q, &x, &stepped, n, b);
            for idx in 0..n * b {
                assert_eq!(
                    q_prev[idx].to_bits(),
                    eq[idx].to_bits(),
                    "width {b} q_prev[{idx}]"
                );
                assert_eq!(
                    x_prev[idx].to_bits(),
                    ex[idx].to_bits(),
                    "width {b} x_prev[{idx}]"
                );
            }
        }
    }

    fn pulse() -> Waveform {
        Waveform::Data(DataPulse {
            v_rest: 0.0,
            v_active: 2.5,
            t_edge: 5e-9,
            rise: 0.5e-9,
            fall: 0.5e-9,
            shape: RampShape::Smoothstep,
        })
    }

    /// An RC divider driven by the parameterized data pulse so the skew
    /// parameters matter and the sensitivities are nonzero.
    fn rc_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new("Vd", vin, Circuit::GROUND, pulse()));
        c.add(Resistor::new("R1", vin, vout, 10e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 50e-15));
        c
    }

    /// A CMOS inverter loaded with a capacitor — nonlinear devices, a DC
    /// rail, and ground-connected MOS terminals.
    fn inverter_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let din = c.node("din");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "Vdd",
            vdd,
            Circuit::GROUND,
            Waveform::dc(2.5),
        ));
        c.add(VoltageSource::new("Vd", din, Circuit::GROUND, pulse()));
        c.add(Mosfet::new(
            "Mp",
            out,
            din,
            vdd,
            MosParams::pmos_250nm(),
            2e-6,
            0.25e-6,
        ));
        c.add(Mosfet::new(
            "Mn",
            out,
            din,
            Circuit::GROUND,
            MosParams::nmos_250nm(),
            1e-6,
            0.25e-6,
        ));
        c.add(Capacitor::new("Cl", out, Circuit::GROUND, 10e-15));
        c
    }

    fn opts(tstop: f64, sens: bool) -> TransientOptions {
        let mut b = TransientOptions::builder(tstop)
            .dt(tstop / 200.0)
            .record(RecordMode::FinalOnly);
        if sens {
            b = b.sensitivities(&Param::ALL);
        }
        b.build()
    }

    fn assert_lane_matches_scalar(
        batched: &TransientResult,
        circuit: &Circuit,
        params: &Params,
        lane_opts: TransientOptions,
    ) {
        let scalar = TransientAnalysis::new(circuit, lane_opts.clone())
            .run(params)
            .expect("scalar run");
        assert_eq!(batched.times().len(), scalar.times().len(), "step counts");
        for (a, b) in batched.times().iter().zip(scalar.times().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "time grids");
        }
        let (fb, fs) = (batched.final_state(), scalar.final_state());
        assert_eq!(fb.len(), fs.len());
        for i in 0..fb.len() {
            assert_eq!(fb[i].to_bits(), fs[i].to_bits(), "final_state[{i}]");
        }
        for p in lane_opts.sensitivities.iter() {
            let (mb, ms) = (
                batched.final_sensitivity(*p).expect("batched sens"),
                scalar.final_sensitivity(*p).expect("scalar sens"),
            );
            for i in 0..mb.len() {
                assert_eq!(mb[i].to_bits(), ms[i].to_bits(), "sens {p:?}[{i}]");
            }
        }
        assert_eq!(batched.stats().steps, scalar.stats().steps);
        assert_eq!(
            batched.stats().newton_iterations,
            scalar.stats().newton_iterations
        );
        assert_eq!(
            batched.stats().rejected_steps,
            scalar.stats().rejected_steps
        );
    }

    #[test]
    fn rc_lanes_are_bitwise_identical_to_scalar() {
        let circuit = rc_circuit();
        let base = opts(20e-9, true);
        let lanes: Vec<BatchLane<'_>> = [
            (Params::new(0.0, 0.0), 20e-9),
            (Params::new(0.4e-9, -0.2e-9), 20e-9),
            (Params::new(-0.3e-9, 0.5e-9), 14e-9), // shorter lane: early finish
            (Params::new(1.0e-9, 1.0e-9), 20e-9),
        ]
        .iter()
        .map(|&(params, tstop)| BatchLane {
            circuit: &circuit,
            params,
            tstop,
        })
        .collect();
        let results = run_lockstep(&lanes, &base).expect("structurally valid batch");
        assert_eq!(results.len(), lanes.len());
        for (lane, result) in lanes.iter().zip(results.iter()) {
            let r = result.as_ref().expect("lane converges");
            let lane_opts = TransientOptions {
                tstop: lane.tstop,
                dt: base.dt.min(lane.tstop),
                ..base.clone()
            };
            assert_lane_matches_scalar(r, lane.circuit, &lane.params, lane_opts);
        }
    }

    #[test]
    fn inverter_lanes_are_bitwise_identical_to_scalar() {
        let circuit = inverter_circuit();
        let base = opts(12e-9, true);
        let skews = [
            Params::new(0.0, 0.0),
            Params::new(0.6e-9, -0.4e-9),
            Params::new(-0.5e-9, 0.3e-9),
        ];
        let lanes: Vec<BatchLane<'_>> = skews
            .iter()
            .map(|&params| BatchLane {
                circuit: &circuit,
                params,
                tstop: base.tstop,
            })
            .collect();
        let results = run_lockstep(&lanes, &base).expect("structurally valid batch");
        for (lane, result) in lanes.iter().zip(results.iter()) {
            let r = result.as_ref().expect("lane converges");
            assert_lane_matches_scalar(r, lane.circuit, &lane.params, base.clone());
        }
    }

    #[test]
    fn identical_lanes_share_the_whole_run_and_match_scalar() {
        // Bitwise-equal skews give an unbounded agreement horizon: the
        // trunk carries every lane to tstop and the wide engine only
        // adopts the finished state. Results must still be bitwise equal
        // to the scalar path, stats included.
        let circuit = inverter_circuit();
        let base = opts(12e-9, true);
        let params = Params::new(0.3e-9, 0.2e-9);
        let lanes: Vec<BatchLane<'_>> = (0..4)
            .map(|_| BatchLane {
                circuit: &circuit,
                params,
                tstop: base.tstop,
            })
            .collect();
        let results = run_lockstep(&lanes, &base).expect("structurally valid batch");
        assert_eq!(results.len(), 4);
        for result in &results {
            let r = result.as_ref().expect("lane converges");
            assert_lane_matches_scalar(r, &circuit, &params, base.clone());
        }
    }

    #[test]
    fn mixed_topology_batch_falls_back_to_singletons() {
        // Same unknown count, different topology: the RC divider and a
        // two-resistor divider both have 2 unknowns + 1 branch current,
        // but their device lists differ, so `SoaCircuit::merge` refuses
        // and `run_lockstep` must split into bitwise-preserving singleton
        // batches rather than rejecting the batch.
        let rc = rc_circuit();
        let mut rr = Circuit::new();
        let vin = rr.node("in");
        let vout = rr.node("out");
        rr.add(VoltageSource::new("Vd", vin, Circuit::GROUND, pulse()));
        rr.add(Resistor::new("R1", vin, vout, 10e3));
        rr.add(Resistor::new("R2", vout, Circuit::GROUND, 20e3));
        assert_eq!(rc.unknown_count(), rr.unknown_count());

        let base = opts(16e-9, true);
        let lanes = [
            BatchLane {
                circuit: &rc,
                params: Params::new(0.2e-9, -0.1e-9),
                tstop: base.tstop,
            },
            BatchLane {
                circuit: &rr,
                params: Params::new(-0.3e-9, 0.4e-9),
                tstop: base.tstop,
            },
        ];
        let results = run_lockstep(&lanes, &base).expect("mixed topology splits, not rejects");
        assert_eq!(results.len(), 2);
        for (lane, result) in lanes.iter().zip(results.iter()) {
            let r = result.as_ref().expect("lane converges");
            assert_lane_matches_scalar(r, lane.circuit, &lane.params, base.clone());
        }
    }

    #[test]
    fn mixed_dimension_batch_is_rejected() {
        let rc = rc_circuit();
        let inv = inverter_circuit();
        let base = opts(10e-9, false);
        let lanes = [
            BatchLane {
                circuit: &rc,
                params: Params::default(),
                tstop: 10e-9,
            },
            BatchLane {
                circuit: &inv,
                params: Params::default(),
                tstop: 10e-9,
            },
        ];
        let err = run_lockstep(&lanes, &base).expect_err("mixed dimensions");
        assert!(matches!(err, SpiceError::BadCircuit { .. }));
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let base = opts(10e-9, false);
        let results = run_lockstep(&[], &base).expect("empty batch is fine");
        assert!(results.is_empty());
    }

    #[test]
    fn injected_lane_fault_retires_lane_and_leaves_survivors_bitwise() {
        let circuit = rc_circuit();
        let base = opts(16e-9, true);
        let skews = [
            Params::new(0.0, 0.0),
            Params::new(0.2e-9, 0.1e-9),
            Params::new(-0.2e-9, 0.3e-9),
            Params::new(0.5e-9, -0.1e-9),
        ];
        let lanes: Vec<BatchLane<'_>> = skews
            .iter()
            .map(|&params| BatchLane {
                circuit: &circuit,
                params,
                tstop: base.tstop,
            })
            .collect();

        // Find a seed whose per-lane run-site draws produce a mixed batch:
        // at least one retired lane and at least one survivor. Draws that
        // do not fire never perturb lane arithmetic, so survivors must be
        // bitwise identical to scalar runs without any injector.
        let mut chosen = None;
        for seed in 0..64 {
            let injector = shc_fault::Injector::new(shc_fault::FaultPlan {
                probability: 0.4,
                site: Some(shc_fault::Site::Transient),
                kind: shc_fault::FaultKind::NonConvergence,
                seed,
            });
            let guard = shc_fault::install_scoped(&injector);
            let results = run_lockstep(&lanes, &base).expect("structurally valid");
            drop(guard);
            let failed = results.iter().filter(|r| r.is_err()).count();
            if failed > 0 && failed < lanes.len() {
                chosen = Some(results);
                break;
            }
        }
        let results = chosen.expect("some seed yields a mixed batch");
        for (lane, result) in lanes.iter().zip(results.iter()) {
            match result {
                Err(SpiceError::NewtonDiverged { context, .. }) => {
                    assert_eq!(*context, "transient run (injected fault)");
                }
                Err(other) => panic!("unexpected lane error: {other:?}"),
                Ok(r) => {
                    assert_lane_matches_scalar(r, lane.circuit, &lane.params, base.clone());
                }
            }
        }
    }

    #[test]
    fn newton_site_faults_are_absorbed_by_lane_retries() {
        let circuit = rc_circuit();
        let base = opts(10e-9, false);
        let lanes: Vec<BatchLane<'_>> = (0..3)
            .map(|i| BatchLane {
                circuit: &circuit,
                params: Params::new(0.1e-9 * i as f64, 0.0),
                tstop: base.tstop,
            })
            .collect();
        let injector = shc_fault::Injector::new(shc_fault::FaultPlan {
            probability: 0.05,
            site: Some(shc_fault::Site::Newton),
            kind: shc_fault::FaultKind::NonConvergence,
            seed: 7,
        });
        let guard = shc_fault::install_scoped(&injector);
        let results = run_lockstep(&lanes, &base).expect("structurally valid");
        drop(guard);
        assert!(injector.injected() > 0, "plan should fire at this rate");
        for result in &results {
            let r = result.as_ref().expect("retries absorb sparse faults");
            assert_eq!(r.times().len(), r.stats().steps + 1);
        }
    }

    #[test]
    fn stepping_rounds_allocate_no_matrices() {
        let circuit = inverter_circuit();
        let base = opts(10e-9, true);
        let lanes: Vec<BatchLane<'_>> = (0..4)
            .map(|i| BatchLane {
                circuit: &circuit,
                params: Params::new(0.1e-9 * i as f64, -0.05e-9 * i as f64),
                tstop: base.tstop,
            })
            .collect();
        let compiled: Vec<CompiledCircuit> = lanes
            .iter()
            .map(|lane| CompiledCircuit::compile(lane.circuit).unwrap())
            .collect();
        let soa = SoaCircuit::merge(&compiled).expect("same topology merges");
        let mut engine = Engine::new(&lanes, soa, &base);
        engine.init(&lanes); // DC solves allocate; that's setup, not stepping
        let lap_step = shc_prof::Laps::step();
        let lap_iter = shc_prof::Laps::iter();
        let before = shc_linalg::matrix_allocations();
        engine.run(&lap_step, &lap_iter);
        let after = shc_linalg::matrix_allocations();
        assert_eq!(
            after - before,
            0,
            "lockstep stepping rounds must not allocate matrices"
        );
        let results = engine.into_results();
        assert!(results.iter().all(|r| r.is_ok()));
    }
}
