//! Lockstep batched transient simulation.
//!
//! Characterization sweeps (surface grids, Monte-Carlo samples, PVT
//! corners, `trace_batch` levels) run thousands of transients over the
//! *same topology* with different parameters. On a one-core host the
//! thread pool cannot help (see `BENCH_parallel.json`), so this module
//! attacks per-simulation cost instead:
//!
//! - **Compilation** ([`compile::CompiledCircuit`]): the `dyn Device` list
//!   is lowered once per sweep into a flat array of value-level device
//!   descriptors with pre-resolved unknown indices, so the per-iteration
//!   assembly is a monomorphic match over plain data — no virtual
//!   dispatch, no `Option` re-resolution, no bounds re-derivation.
//! - **SoA lanes** ([`engine::run_lockstep`]): `B` simulations advance in
//!   lockstep through shared structure-of-arrays state blocks
//!   (`lanes·n` vectors, `lanes·n²` Jacobians, one [`shc_linalg::BatchLu`]
//!   per role), allocated once per batch instead of once per run.
//! - **Per-lane masks**: Newton convergence, step rejection, retries, and
//!   failures are tracked per lane; a diverging lane retires (with the
//!   same typed error the scalar path would produce) without stalling the
//!   remaining lanes.
//!
//! The batched path is **bitwise identical** to the scalar
//! [`crate::transient::TransientAnalysis`] on its supported envelope
//! (Backward Euler, fixed step, final-only recording, dense solves, DC
//! initial condition): every floating-point operation per lane replicates
//! the scalar sequence exactly. Anything outside the envelope reports
//! unsupported via [`supported`] and the caller falls back to the scalar
//! path.
//!
//! The invariants that make this soundness argument work are
//! machine-checked by `shc-lint` v4 (DESIGN.md §9.10–§9.13): the
//! modules opt in with `// lint: soa-module`, SoA buffers declare
//! their layout with `/// soa:` annotations so every element-major
//! index is forced through the canonical `i * B + l` stride or a
//! checked accessor, masked kernels (`// lint: soa-kernel`) may only
//! write shared state rows under a lane-mask guard or select, the
//! `multiversioned!`/`lane_dispatch!` SIMD clones are proven
//! token-identical to the portable baseline, and the agreement-horizon
//! trunk adoption (`// lint: trunk-fence`) is certified unreachable
//! from any per-lane skew read. Each certificate has a
//! rehearsed-to-fail CI canary.

pub mod compile;
pub mod engine;

pub use compile::{CompiledCircuit, DeviceSpec, SoaCircuit};
pub use engine::{run_lockstep, BatchLane};

use serde::{Deserialize, Serialize};

use crate::circuit::Circuit;
use crate::transient::{InitialCondition, Integrator, RecordMode, TransientOptions};

/// Default lane-group width for sweep drivers that chunk a large
/// simulation set into batches: wide enough to amortize compilation and
/// buffer setup, narrow enough that the SoA blocks of a seed-cell-sized
/// circuit stay cache-resident.
pub const DEFAULT_LANES: usize = 16;

/// How a sweep driver chooses between the scalar and the batched engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BatchPolicy {
    /// Batch when the configuration is inside the supported envelope, at
    /// least two lanes are available, and no fault injector is installed
    /// (per-site fault draws interleave across lanes, so injection
    /// campaigns keep the scalar path's documented draw order).
    #[default]
    Auto,
    /// Always take the scalar path.
    Scalar,
    /// Batch whenever the envelope allows it, fault injector or not
    /// (per-lane retirement still applies); falls back to scalar outside
    /// the envelope.
    Batched,
}

impl BatchPolicy {
    /// Stable lowercase name (CLI value / JSON output).
    pub fn name(self) -> &'static str {
        match self {
            BatchPolicy::Auto => "auto",
            BatchPolicy::Scalar => "scalar",
            BatchPolicy::Batched => "batched",
        }
    }

    /// Whether a sweep of `lanes` same-topology simulations over
    /// `circuit` under `opts` should take the batched engine.
    pub fn use_batched(self, circuit: &Circuit, opts: &TransientOptions, lanes: usize) -> bool {
        match self {
            BatchPolicy::Scalar => false,
            BatchPolicy::Auto => lanes >= 2 && !shc_fault::enabled() && supported(circuit, opts),
            BatchPolicy::Batched => lanes >= 1 && supported(circuit, opts),
        }
    }
}

impl std::str::FromStr for BatchPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "auto" => Ok(BatchPolicy::Auto),
            "scalar" => Ok(BatchPolicy::Scalar),
            "batched" => Ok(BatchPolicy::Batched),
            other => Err(format!(
                "unknown batch policy '{other}' (expected auto, scalar, or batched)"
            )),
        }
    }
}

impl std::fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `(circuit, opts)` falls inside the batched engine's envelope:
/// Backward Euler, fixed steps, final-only recording, DC initial
/// condition, dense solves, and a circuit made entirely of devices with a
/// [`DeviceSpec`] lowering.
pub fn supported(circuit: &Circuit, opts: &TransientOptions) -> bool {
    matches!(opts.integrator, Integrator::BackwardEuler)
        && !opts.adaptive
        && matches!(opts.record, RecordMode::FinalOnly)
        && matches!(opts.initial, InitialCondition::DcOperatingPoint)
        && !opts.solver.wants_sparse(circuit.unknown_count())
        && CompiledCircuit::compile(circuit).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Diode, DiodeParams, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    fn rc_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 1e-9));
        c
    }

    fn fixed_be_opts(tstop: f64) -> TransientOptions {
        TransientOptions::builder(tstop)
            .dt(tstop / 100.0)
            .record(RecordMode::FinalOnly)
            .build()
    }

    #[test]
    fn policy_parses_and_prints_round_trip() {
        for p in [BatchPolicy::Auto, BatchPolicy::Scalar, BatchPolicy::Batched] {
            assert_eq!(p.name().parse::<BatchPolicy>().unwrap(), p);
            assert_eq!(format!("{p}"), p.name());
        }
        assert!("turbo".parse::<BatchPolicy>().is_err());
    }

    #[test]
    fn envelope_gates_integrator_record_and_adaptivity() {
        let c = rc_circuit();
        assert!(supported(&c, &fixed_be_opts(1e-6)));

        let trap = TransientOptions::builder(1e-6)
            .dt(1e-8)
            .integrator(Integrator::Trapezoidal)
            .record(RecordMode::FinalOnly)
            .build();
        assert!(!supported(&c, &trap));

        let full = TransientOptions::builder(1e-6).dt(1e-8).build();
        assert!(!supported(&c, &full), "Full recording is out of envelope");

        let adaptive = TransientOptions::builder(1e-6)
            .dt(1e-8)
            .adaptive(1e-12, 1e-7)
            .record(RecordMode::FinalOnly)
            .build();
        assert!(!supported(&c, &adaptive));
    }

    #[test]
    fn unsupported_device_opts_the_circuit_out() {
        let mut c = rc_circuit();
        let vout = c.find_node("out").unwrap();
        c.add(Diode::new(
            "D1",
            vout,
            Circuit::GROUND,
            DiodeParams::default(),
        ));
        assert!(!supported(&c, &fixed_be_opts(1e-6)));
    }

    #[test]
    fn policy_resolution_respects_scalar_and_lane_floor() {
        let c = rc_circuit();
        let opts = fixed_be_opts(1e-6);
        assert!(!BatchPolicy::Scalar.use_batched(&c, &opts, 400));
        assert!(!BatchPolicy::Auto.use_batched(&c, &opts, 1));
        assert!(BatchPolicy::Auto.use_batched(&c, &opts, 2));
        assert!(BatchPolicy::Batched.use_batched(&c, &opts, 1));
    }

    #[test]
    fn auto_defers_to_scalar_under_fault_injection() {
        let c = rc_circuit();
        let opts = fixed_be_opts(1e-6);
        let injector = shc_fault::Injector::new(shc_fault::FaultPlan {
            probability: 0.5,
            site: Some(shc_fault::Site::Newton),
            kind: shc_fault::FaultKind::NonConvergence,
            seed: 1,
        });
        let _g = shc_fault::install_scoped(&injector);
        assert!(!BatchPolicy::Auto.use_batched(&c, &opts, 8));
        assert!(BatchPolicy::Batched.use_batched(&c, &opts, 8));
    }
}
