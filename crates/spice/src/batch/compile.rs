//! Circuit lowering for the batched engine.
//!
//! [`CompiledCircuit::compile`] lowers a [`Circuit`]'s `dyn Device` list
//! into a flat `Vec<CompiledDevice>` with every unknown index resolved up
//! front. The per-iteration assembly then runs over plain value data on
//! flat `&[f64]` slices — no virtual dispatch, no `Stamper` indirection —
//! while replicating the scalar stamp sequences *operation for
//! operation*, so batched lanes stay bitwise identical to
//! [`crate::transient::TransientAnalysis`].
//!
//! Devices opt in by returning a [`DeviceSpec`] from
//! [`crate::devices::Device::batch_spec`]; any device returning `None`
//! makes the whole circuit uncompilable and the caller falls back to the
//! scalar path.

// lint: soa-module
use shc_linalg::{lane_dispatch, multiversioned};

use crate::circuit::Circuit;
use crate::devices::Mosfet;
use crate::waveform::{Param, Params, Waveform};
use crate::Node;

/// Value-level description of one device, as handed over by
/// [`crate::devices::Device::batch_spec`].
///
/// Node handles are resolved to unknown indices at compile time; the
/// variants here carry the raw [`Node`]s exactly as the device stores
/// them.
#[derive(Debug, Clone)]
pub enum DeviceSpec {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms.
        resistance: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads.
        capacitance: f64,
    },
    /// Independent voltage source with one branch-current unknown.
    VoltageSource {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Branch slot assigned by [`Circuit::add`].
        branch: usize,
        /// Source waveform.
        waveform: Waveform,
    },
    /// MOS transistor; the full device is carried so the batched kernel
    /// evaluates [`Mosfet::drain_current`] itself — identical arithmetic
    /// by construction.
    Mosfet(Mosfet),
}

/// One lowered device with pre-resolved unknown indices.
#[derive(Debug, Clone)]
enum CompiledDevice {
    Resistor {
        a: Option<usize>,
        b: Option<usize>,
        resistance: f64,
    },
    Capacitor {
        a: Option<usize>,
        b: Option<usize>,
        capacitance: f64,
    },
    VoltageSource {
        p: Option<usize>,
        n: Option<usize>,
        /// Global unknown index of the branch equation (always a real
        /// unknown: `node_offset + branch`).
        br: usize,
        waveform: Waveform,
    },
    Mosfet {
        d: Option<usize>,
        g: Option<usize>,
        s: Option<usize>,
        device: Mosfet,
        cgs: f64,
        cgd: f64,
        cdb: f64,
        csb: f64,
    },
}

/// A [`Circuit`] lowered for batched evaluation.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    devices: Vec<CompiledDevice>,
    n: usize,
}

#[inline]
fn volt(x: &[f64], node: Option<usize>) -> f64 {
    match node {
        Some(i) => x[i],
        None => 0.0,
    }
}

#[inline]
fn stamp_into(v: &mut [f64], eq: Option<usize>, value: f64) {
    if let Some(i) = eq {
        v[i] += value;
    }
}

#[inline]
fn add_mat(mat: &mut [f64], n: usize, eq: Option<usize>, var: Option<usize>, value: f64) {
    if let (Some(i), Some(j)) = (eq, var) {
        mat[i * n + j] += value;
    }
}

/// The classic 4-entry two-terminal pattern, in [`crate::stamp::Stamper`]
/// order: `(a,a) (b,b) (a,b) (b,a)`.
#[inline]
fn add_pair(mat: &mut [f64], n: usize, a: Option<usize>, b: Option<usize>, value: f64) {
    add_mat(mat, n, a, a, value);
    add_mat(mat, n, b, b, value);
    add_mat(mat, n, a, b, -value);
    add_mat(mat, n, b, a, -value);
}

impl CompiledCircuit {
    /// Lowers `circuit`, or returns `None` if any device lacks a
    /// [`DeviceSpec`] (the caller falls back to the scalar path).
    pub fn compile(circuit: &Circuit) -> Option<CompiledCircuit> {
        let node_offset = circuit.node_count();
        let mut devices = Vec::with_capacity(circuit.unknown_count());
        for device in circuit.devices() {
            let spec = device.batch_spec()?;
            devices.push(match spec {
                DeviceSpec::Resistor { a, b, resistance } => CompiledDevice::Resistor {
                    a: a.unknown(),
                    b: b.unknown(),
                    resistance,
                },
                DeviceSpec::Capacitor { a, b, capacitance } => CompiledDevice::Capacitor {
                    a: a.unknown(),
                    b: b.unknown(),
                    capacitance,
                },
                DeviceSpec::VoltageSource {
                    p,
                    n,
                    branch,
                    waveform,
                } => {
                    debug_assert_ne!(branch, usize::MAX, "voltage source outside a circuit");
                    CompiledDevice::VoltageSource {
                        p: p.unknown(),
                        n: n.unknown(),
                        br: node_offset + branch,
                        waveform,
                    }
                }
                DeviceSpec::Mosfet(device) => {
                    let (d, g, s) = device.terminals();
                    let (cgs, cgd, cdb, csb) = device.caps();
                    CompiledDevice::Mosfet {
                        d: d.unknown(),
                        g: g.unknown(),
                        s: s.unknown(),
                        device,
                        cgs,
                        cgd,
                        cdb,
                        csb,
                    }
                }
            });
        }
        Some(CompiledCircuit {
            devices,
            n: circuit.unknown_count(),
        })
    }

    /// System dimension (number of unknowns).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of lowered devices (work metric for profiling).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Assembles `q`, `f`, `C`, `G` at `(x, t)`, replicating
    /// [`Circuit::assemble_into`] with `source_scale = 1.0`: containers
    /// are zeroed, then devices stamp in insertion order with the exact
    /// scalar operation sequences.
    ///
    /// All slices are length `n` (vectors) / `n²` (row-major matrices).
    // lint: hot-fn
    // effects: pure
    // The four containers are deliberately separate flat slices (the
    // engine's SoA layout), not a struct: collapsing them would force a
    // borrow-splitting wrapper at every call site.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        &self,
        x: &[f64],
        t: f64,
        params: &Params,
        q: &mut [f64],
        f: &mut [f64],
        c: &mut [f64],
        g: &mut [f64],
    ) {
        let n = self.n;
        q.fill(0.0);
        f.fill(0.0);
        c.fill(0.0);
        g.fill(0.0);
        for device in &self.devices {
            match device {
                CompiledDevice::Resistor { a, b, resistance } => {
                    let cond = 1.0 / resistance;
                    let v = volt(x, *a) - volt(x, *b);
                    let i = cond * v;
                    stamp_into(f, *a, i);
                    stamp_into(f, *b, -i);
                    add_pair(g, n, *a, *b, cond);
                }
                CompiledDevice::Capacitor { a, b, capacitance } => {
                    let v = volt(x, *a) - volt(x, *b);
                    let charge = capacitance * v;
                    stamp_into(q, *a, charge);
                    stamp_into(q, *b, -charge);
                    add_pair(c, n, *a, *b, *capacitance);
                }
                CompiledDevice::VoltageSource {
                    p,
                    n: neg,
                    br,
                    waveform,
                } => {
                    let br_eq = Some(*br);
                    let i = x[*br];
                    let v = waveform.value(t, params);
                    stamp_into(f, *p, i);
                    stamp_into(f, *neg, -i);
                    add_mat(g, n, *p, br_eq, 1.0);
                    add_mat(g, n, *neg, br_eq, -1.0);
                    stamp_into(f, br_eq, volt(x, *p) - volt(x, *neg) - v);
                    add_mat(g, n, br_eq, *p, 1.0);
                    add_mat(g, n, br_eq, *neg, -1.0);
                }
                CompiledDevice::Mosfet {
                    d,
                    g: gate,
                    s,
                    device,
                    cgs,
                    cgd,
                    cdb,
                    csb,
                } => {
                    let vd = volt(x, *d);
                    let vg = volt(x, *gate);
                    let vs = volt(x, *s);
                    let (id, gm, gds, gs_) = device.drain_current(vd, vg, vs);
                    stamp_into(f, *d, id);
                    stamp_into(f, *s, -id);
                    add_mat(g, n, *d, *gate, gm);
                    add_mat(g, n, *d, *d, gds);
                    add_mat(g, n, *d, *s, gs_);
                    add_mat(g, n, *s, *gate, -gm);
                    add_mat(g, n, *s, *d, -gds);
                    add_mat(g, n, *s, *s, -gs_);
                    let qgs = cgs * (vg - vs);
                    stamp_into(q, *gate, qgs);
                    stamp_into(q, *s, -qgs);
                    add_pair(c, n, *gate, *s, *cgs);
                    let qgd = cgd * (vg - vd);
                    stamp_into(q, *gate, qgd);
                    stamp_into(q, *d, -qgd);
                    add_pair(c, n, *gate, *d, *cgd);
                    stamp_into(q, *d, cdb * vd);
                    add_pair(c, n, *d, None, *cdb);
                    stamp_into(q, *s, csb * vs);
                    add_pair(c, n, *s, None, *csb);
                }
            }
        }
    }

    /// Assembles `∂f/∂p` at `t` into `dfdp` (length `n`), replicating
    /// [`Circuit::assemble_dfdp_into`] with `source_scale = 1.0`: only
    /// voltage-source branch equations depend on the skew parameters.
    // lint: hot-fn
    // effects: pure
    pub fn assemble_dfdp(&self, t: f64, params: &Params, param: Param, dfdp: &mut [f64]) {
        dfdp.fill(0.0);
        for device in &self.devices {
            if let CompiledDevice::VoltageSource { br, waveform, .. } = device {
                let dv = waveform.derivative(t, params, param);
                if dv != 0.0 {
                    dfdp[*br] -= dv;
                }
            }
        }
    }
}

/// Per-lane MOSFET constants plus resolved buffer offsets for one
/// transistor slot of a [`SoaCircuit`], in stamp order.
///
/// The scalar arithmetic ([`Mosfet::drain_current`] and its stamp
/// sequence) is replicated in the assembly kernel from these exact
/// values; the `v_ds < 0` drain/source exchange is spelled as selects so
/// every lane runs the same instruction stream.
#[derive(Debug, Clone)]
struct SoaMosfet {
    /// Vector-row offsets (pre-multiplied by the lane count) of the
    /// drain/gate/source rows; ground resolves to the spill row.
    rd: usize,
    rg: usize,
    rs: usize,
    /// `G` cell offsets for the six channel-conductance entries, in the
    /// scalar stamp order `(d,g) (d,d) (d,s) (s,g) (s,d) (s,s)`.
    gdg: usize,
    gdd: usize,
    gds: usize,
    gsg: usize,
    gsd: usize,
    gss: usize,
    /// `C` cell offsets of the four capacitance pairs (gate-source,
    /// gate-drain, drain-body, source-body), each in `add_pair` order.
    pgs: [usize; 4],
    pgd: [usize; 4],
    pdb: [usize; 4],
    psb: [usize; 4],
    /// Polarity reflection sign, shared by every lane (a structural merge
    /// requirement).
    sign: f64,
    // Per-lane model constants, one slot per lane.
    /// soa: per-lane, descriptor
    vt0: Vec<f64>,
    /// soa: per-lane, descriptor
    eps_c: Vec<f64>,
    /// soa: per-lane, descriptor
    eps_s: Vec<f64>,
    /// soa: per-lane, descriptor
    lambda: Vec<f64>,
    /// soa: per-lane, descriptor
    beta: Vec<f64>,
    /// soa: per-lane, descriptor
    cgs: Vec<f64>,
    /// soa: per-lane, descriptor
    cgd: Vec<f64>,
    /// soa: per-lane, descriptor
    cdb: Vec<f64>,
    /// soa: per-lane, descriptor
    csb: Vec<f64>,
}

/// One device slot of a [`SoaCircuit`]: resolved buffer offsets shared by
/// every lane (pre-multiplied by the lane count) plus per-lane values.
///
/// Ground terminals resolve to the *spill* row/cell (see
/// [`SoaCircuit::assemble_all`]), so every stamp in the assembly kernel
/// is an unconditional read-modify-write — no per-lane branching, which
/// is what lets the lane loops vectorize.
///
/// The MOSFET variant dwarfs the others (nine per-lane value vectors);
/// boxing it would put a pointer chase in the hottest assembly loop for
/// a `Vec` that holds tens of devices, not thousands.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum SoaDevice {
    Resistor {
        ra: usize,
        rb: usize,
        /// `G` pair cells in `add_pair` order `(a,a) (b,b) (a,b) (b,a)`.
        gp: [usize; 4],
        /// Per-lane conductance `1/R`, precomputed exactly as the scalar
        /// assembly computes it.
        /// soa: per-lane, descriptor
        cond: Vec<f64>,
    },
    Capacitor {
        ra: usize,
        rb: usize,
        /// `C` pair cells in `add_pair` order.
        cp: [usize; 4],
        /// soa: per-lane, descriptor
        cap: Vec<f64>,
    },
    VoltageSource {
        rp: usize,
        rn: usize,
        /// Branch-equation row offset (always a real unknown).
        rbr: usize,
        /// Raw branch unknown index (for the lane-scalar `∂f/∂p` path).
        br: usize,
        gpb: usize,
        gnb: usize,
        gbp: usize,
        gbn: usize,
        /// Per-lane waveforms, evaluated lane-scalar at each lane's time.
        /// soa: per-lane, descriptor
        waveforms: Vec<Waveform>,
    },
    Mosfet(SoaMosfet),
}

/// `B` structurally identical [`CompiledCircuit`]s merged into one
/// structure-of-arrays evaluator.
///
/// Where [`CompiledCircuit::assemble`] fills one lane's `n`-vectors and
/// `n×n` matrices, [`SoaCircuit::assemble_all`] fills *element-major*
/// blocks (`buf[element·lanes + lane]`) for every lane in one pass,
/// device-major with the lane loop innermost — so the per-device
/// arithmetic vectorizes across lanes while each lane still sees the
/// exact scalar operation sequence on its own values. Lane results are
/// bitwise identical to per-lane scalar assembly by construction.
///
/// Structural identity means: equal dimension, equal device-variant
/// sequence, equal resolved node indices per slot, and equal MOSFET
/// polarity per slot. Parameter *values* (resistances, capacitances,
/// geometries, waveforms) are free to differ per lane — they become the
/// per-lane SoA arrays.
#[derive(Debug, Clone)]
pub struct SoaCircuit {
    devices: Vec<SoaDevice>,
    n: usize,
    lanes: usize,
}

// SAFETY: expands to `#[target_feature]` clones; each wide clone is
// called only after its `is_x86_feature_detected!` check passes.
multiversioned! {
    /// The SoA assembly kernel: zero all four blocks, then stamp every
    /// device slot across all lanes. Free function so [`multiversioned!`]
    /// can clone it under wider target features.
    fn assemble_kernel(
        devices: &[SoaDevice],
        x: &[f64],
        t: &[f64],
        params: &[Params],
        q: &mut [f64],
        f: &mut [f64],
        c: &mut [f64],
        g: &mut [f64],
        b: usize,
    ) {
        lane_dispatch!(b, assemble_impl(devices, x, t, params, q, f, c, g));
    }
}

// lint: soa-kernel
/// [`assemble_kernel`]'s body, called with a literal lane count for the
/// common widths (see [`lane_dispatch!`]) under each feature level.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn assemble_impl(
    devices: &[SoaDevice],
    x: &[f64],
    t: &[f64],
    params: &[Params],
    q: &mut [f64],
    f: &mut [f64],
    c: &mut [f64],
    g: &mut [f64],
    b: usize,
) {
    {
        q.fill(0.0);
        f.fill(0.0);
        c.fill(0.0);
        g.fill(0.0);
        for device in devices {
            match device {
                SoaDevice::Resistor { ra, rb, gp, cond } => {
                    let (ra, rb) = (*ra, *rb);
                    for l in 0..b {
                        let cd = cond[l];
                        let v = x[ra + l] - x[rb + l];
                        let i = cd * v;
                        f[ra + l] += i;
                        f[rb + l] += -i;
                        g[gp[0] + l] += cd;
                        g[gp[1] + l] += cd;
                        g[gp[2] + l] += -cd;
                        g[gp[3] + l] += -cd;
                    }
                }
                SoaDevice::Capacitor { ra, rb, cp, cap } => {
                    let (ra, rb) = (*ra, *rb);
                    for l in 0..b {
                        let cv = cap[l];
                        let v = x[ra + l] - x[rb + l];
                        let charge = cv * v;
                        q[ra + l] += charge;
                        q[rb + l] += -charge;
                        c[cp[0] + l] += cv;
                        c[cp[1] + l] += cv;
                        c[cp[2] + l] += -cv;
                        c[cp[3] + l] += -cv;
                    }
                }
                SoaDevice::VoltageSource {
                    rp,
                    rn,
                    rbr,
                    br: _,
                    gpb,
                    gnb,
                    gbp,
                    gbn,
                    waveforms,
                } => {
                    let (rp, rn, rbr) = (*rp, *rn, *rbr);
                    // Lane-scalar: waveform evaluation branches per shape,
                    // and sources are a handful of devices per circuit.
                    for l in 0..b {
                        let i = x[rbr + l];
                        let v = waveforms[l].value(t[l], &params[l]);
                        f[rp + l] += i;
                        f[rn + l] += -i;
                        g[*gpb + l] += 1.0;
                        g[*gnb + l] += -1.0;
                        f[rbr + l] += x[rp + l] - x[rn + l] - v;
                        g[*gbp + l] += 1.0;
                        g[*gbn + l] += -1.0;
                    }
                }
                SoaDevice::Mosfet(mos) => {
                    let (rd, rg, rs) = (mos.rd, mos.rg, mos.rs);
                    let s = mos.sign;
                    for l in 0..b {
                        let vd = x[rd + l];
                        let vg = x[rg + l];
                        let vs = x[rs + l];
                        // `Mosfet::drain_current`: reflect to NMOS voltages.
                        let vgs = s * (vg - vs);
                        let vds = s * (vd - vs);
                        // `ids_symmetric` with the drain/source exchange
                        // spelled as selects: one forward evaluation on the
                        // selected voltages, outputs mapped back by the
                        // exchange rules — the chosen lane values round
                        // exactly as the scalar branch would.
                        let fwd = vds >= 0.0;
                        let vgs_e = if fwd { vgs } else { vgs - vds };
                        let vds_e = if fwd { vds } else { -vds };
                        // `ids_forward_raw(vgs_e, vds_e)`.
                        let xc = vgs_e - mos.vt0[l];
                        let ec = mos.eps_c[l];
                        let rc = (xc * xc + ec * ec).sqrt();
                        let vov = 0.5 * (xc + rc);
                        let dvov = 0.5 * (1.0 + xc / rc);
                        let es = mos.eps_s[l];
                        let x1 = vds_e - vov;
                        let r1 = (x1 * x1 + es * es).sqrt();
                        let clip = 0.5 * (x1 + r1);
                        let dclip = 0.5 * (1.0 + x1 / r1);
                        let vdse = vds_e - clip;
                        let lam = mos.lambda[l];
                        let bet = mos.beta[l];
                        let klm = 1.0 + lam * vds_e;
                        let fcur = (vov - 0.5 * vdse) * vdse;
                        let df_dvov = vdse + (vov - vdse) * dclip;
                        let df_dvds = (vov - vdse) * (1.0 - dclip);
                        let id1 = bet * klm * fcur;
                        let gm1 = bet * klm * df_dvov * dvov;
                        let gds1 = bet * (lam * fcur + klm * df_dvds);
                        // `ids_forward_raw(vgs_e, 0.0)` — the offset
                        // correction. Its cutoff softplus re-evaluates to
                        // the same `vov`/`dvov` bits, so those are reused.
                        let x0 = 0.0 - vov;
                        let r0 = (x0 * x0 + es * es).sqrt();
                        let clip0 = 0.5 * (x0 + r0);
                        let dclip0 = 0.5 * (1.0 + x0 / r0);
                        let vdse0 = 0.0 - clip0;
                        let klm0 = 1.0 + lam * 0.0;
                        let fcur0 = (vov - 0.5 * vdse0) * vdse0;
                        let df_dvov0 = vdse0 + (vov - vdse0) * dclip0;
                        let id0 = bet * klm0 * fcur0;
                        let gm0 = bet * klm0 * df_dvov0 * dvov;
                        let i_f = id1 - id0;
                        let gm_f = gm1 - gm0;
                        let gds_f = gds1;
                        // Exchange mapping: `(−i, −gm, gm+gds)` when v_ds
                        // was negative.
                        let i_sym = if fwd { i_f } else { -i_f };
                        let gm = if fwd { gm_f } else { -gm_f };
                        let gds = if fwd { gds_f } else { gm_f + gds_f };
                        // Reflect back to device polarity.
                        let id = s * i_sym;
                        let gs_ = -(gm + gds);
                        f[rd + l] += id;
                        f[rs + l] += -id;
                        g[mos.gdg + l] += gm;
                        g[mos.gdd + l] += gds;
                        g[mos.gds + l] += gs_;
                        g[mos.gsg + l] += -gm;
                        g[mos.gsd + l] += -gds;
                        g[mos.gss + l] += -gs_;
                        let cgs = mos.cgs[l];
                        let qgs = cgs * (vg - vs);
                        q[rg + l] += qgs;
                        q[rs + l] += -qgs;
                        c[mos.pgs[0] + l] += cgs;
                        c[mos.pgs[1] + l] += cgs;
                        c[mos.pgs[2] + l] += -cgs;
                        c[mos.pgs[3] + l] += -cgs;
                        let cgd = mos.cgd[l];
                        let qgd = cgd * (vg - vd);
                        q[rg + l] += qgd;
                        q[rd + l] += -qgd;
                        c[mos.pgd[0] + l] += cgd;
                        c[mos.pgd[1] + l] += cgd;
                        c[mos.pgd[2] + l] += -cgd;
                        c[mos.pgd[3] + l] += -cgd;
                        let cdb = mos.cdb[l];
                        q[rd + l] += cdb * vd;
                        c[mos.pdb[0] + l] += cdb;
                        c[mos.pdb[1] + l] += cdb;
                        c[mos.pdb[2] + l] += -cdb;
                        c[mos.pdb[3] + l] += -cdb;
                        let csb = mos.csb[l];
                        q[rs + l] += csb * vs;
                        c[mos.psb[0] + l] += csb;
                        c[mos.psb[1] + l] += csb;
                        c[mos.psb[2] + l] += -csb;
                        c[mos.psb[3] + l] += -csb;
                    }
                }
            }
        }
    }
}

impl SoaCircuit {
    /// Merges structurally identical compiled lanes, or returns `None` on
    /// any structural mismatch (dimension, device sequence, node indices,
    /// or MOSFET polarity) — the caller then splits the batch.
    pub fn merge(compiled: &[CompiledCircuit]) -> Option<SoaCircuit> {
        let first = compiled.first()?;
        let (n, b) = (first.n, compiled.len());
        if compiled
            .iter()
            .any(|c| c.n != n || c.devices.len() != first.devices.len())
        {
            return None;
        }
        // Ground rows/cells resolve to the spill slots at the end of each
        // buffer (see `assemble_all`); offsets are pre-multiplied by the
        // lane count so the kernel indexes `offset + lane` directly.
        let vrow = |node: Option<usize>| node.unwrap_or(n) * b;
        let cell = |eq: Option<usize>, var: Option<usize>| match (eq, var) {
            (Some(i), Some(j)) => (i * n + j) * b,
            _ => n * n * b,
        };
        let pair =
            |a: Option<usize>, p: Option<usize>| [cell(a, a), cell(p, p), cell(a, p), cell(p, a)];
        let mut devices = Vec::with_capacity(first.devices.len());
        for slot in 0..first.devices.len() {
            devices.push(match &first.devices[slot] {
                CompiledDevice::Resistor { a, b: bn, .. } => {
                    let mut cond = Vec::with_capacity(b);
                    for lane in compiled {
                        let CompiledDevice::Resistor {
                            a: la,
                            b: lb,
                            resistance,
                        } = &lane.devices[slot]
                        else {
                            return None;
                        };
                        if (la, lb) != (a, bn) {
                            return None;
                        }
                        cond.push(1.0 / resistance);
                    }
                    SoaDevice::Resistor {
                        ra: vrow(*a),
                        rb: vrow(*bn),
                        gp: pair(*a, *bn),
                        cond,
                    }
                }
                CompiledDevice::Capacitor { a, b: bn, .. } => {
                    let mut cap = Vec::with_capacity(b);
                    for lane in compiled {
                        let CompiledDevice::Capacitor {
                            a: la,
                            b: lb,
                            capacitance,
                        } = &lane.devices[slot]
                        else {
                            return None;
                        };
                        if (la, lb) != (a, bn) {
                            return None;
                        }
                        cap.push(*capacitance);
                    }
                    SoaDevice::Capacitor {
                        ra: vrow(*a),
                        rb: vrow(*bn),
                        cp: pair(*a, *bn),
                        cap,
                    }
                }
                CompiledDevice::VoltageSource { p, n: neg, br, .. } => {
                    let mut waveforms = Vec::with_capacity(b);
                    for lane in compiled {
                        let CompiledDevice::VoltageSource {
                            p: lp,
                            n: ln,
                            br: lbr,
                            waveform,
                        } = &lane.devices[slot]
                        else {
                            return None;
                        };
                        if (lp, ln, lbr) != (p, neg, br) {
                            return None;
                        }
                        waveforms.push(waveform.clone());
                    }
                    let br_eq = Some(*br);
                    SoaDevice::VoltageSource {
                        rp: vrow(*p),
                        rn: vrow(*neg),
                        rbr: *br * b,
                        br: *br,
                        gpb: cell(*p, br_eq),
                        gnb: cell(*neg, br_eq),
                        gbp: cell(br_eq, *p),
                        gbn: cell(br_eq, *neg),
                        waveforms,
                    }
                }
                CompiledDevice::Mosfet {
                    d,
                    g,
                    s,
                    device: proto,
                    ..
                } => {
                    let polarity = proto.polarity();
                    let mut mos = SoaMosfet {
                        rd: vrow(*d),
                        rg: vrow(*g),
                        rs: vrow(*s),
                        gdg: cell(*d, *g),
                        gdd: cell(*d, *d),
                        gds: cell(*d, *s),
                        gsg: cell(*s, *g),
                        gsd: cell(*s, *d),
                        gss: cell(*s, *s),
                        pgs: pair(*g, *s),
                        pgd: pair(*g, *d),
                        pdb: pair(*d, None),
                        psb: pair(*s, None),
                        sign: polarity.sign(),
                        vt0: Vec::with_capacity(b),
                        eps_c: Vec::with_capacity(b),
                        eps_s: Vec::with_capacity(b),
                        lambda: Vec::with_capacity(b),
                        beta: Vec::with_capacity(b),
                        cgs: Vec::with_capacity(b),
                        cgd: Vec::with_capacity(b),
                        cdb: Vec::with_capacity(b),
                        csb: Vec::with_capacity(b),
                    };
                    for lane in compiled {
                        let CompiledDevice::Mosfet {
                            d: ld,
                            g: lg,
                            s: ls,
                            device,
                            cgs,
                            cgd,
                            cdb,
                            csb,
                        } = &lane.devices[slot]
                        else {
                            return None;
                        };
                        if (ld, lg, ls) != (d, g, s) || device.polarity() != polarity {
                            return None;
                        }
                        let (_, vt0, eps_c, eps_s, lambda, beta) = device.kernel_constants();
                        mos.vt0.push(vt0);
                        mos.eps_c.push(eps_c);
                        mos.eps_s.push(eps_s);
                        mos.lambda.push(lambda);
                        mos.beta.push(beta);
                        mos.cgs.push(*cgs);
                        mos.cgd.push(*cgd);
                        mos.cdb.push(*cdb);
                        mos.csb.push(*csb);
                    }
                    SoaDevice::Mosfet(mos)
                }
            });
        }
        Some(SoaCircuit {
            devices,
            n,
            lanes: b,
        })
    }

    /// System dimension (number of unknowns per lane).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of merged lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of device slots (work metric for profiling).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A time `t*` such that every lane of this batch provably computes
    /// *bitwise-identical* device evaluations (values, stamps, and skew
    /// derivatives) for all `t < t*` given per-lane skews `params` — the
    /// *agreement horizon* the lockstep engine's shared-prefix trunk runs
    /// under.
    ///
    /// Lanes whose non-source device values differ anywhere (Monte-Carlo
    /// style batches) get `0.0`; lanes differing only through source
    /// waveform timing get the earliest time any two lanes' waveforms
    /// stop being identical functions ([`Waveform::agree_until`]). The
    /// bound is conservative by construction: it may understate sharing,
    /// never overstate it.
    pub fn agreement_horizon(&self, params: &[Params]) -> f64 {
        debug_assert_eq!(params.len(), self.lanes);
        let all_eq = |v: &[f64]| v.iter().all(|x| x.to_bits() == v[0].to_bits());
        let mut horizon = f64::INFINITY;
        for device in &self.devices {
            match device {
                SoaDevice::Resistor { cond, .. } => {
                    if !all_eq(cond) {
                        return 0.0;
                    }
                }
                SoaDevice::Capacitor { cap, .. } => {
                    if !all_eq(cap) {
                        return 0.0;
                    }
                }
                SoaDevice::Mosfet(m) => {
                    for field in [
                        &m.vt0, &m.eps_c, &m.eps_s, &m.lambda, &m.beta, &m.cgs, &m.cgd, &m.cdb,
                        &m.csb,
                    ] {
                        if !all_eq(field) {
                            return 0.0;
                        }
                    }
                }
                SoaDevice::VoltageSource { waveforms, .. } => {
                    for l in 1..waveforms.len() {
                        horizon = horizon.min(waveforms[0].agree_until(
                            &params[0],
                            &waveforms[l],
                            &params[l],
                        ));
                    }
                }
            }
        }
        horizon
    }

    /// Assembles `q`, `f`, `C`, `G` for every lane at its `(x, t, params)`
    /// in one element-major pass.
    ///
    /// Buffer layout contract (with `n = dim()`, `b = lanes()`):
    ///
    /// - `x`, `q`, `f` are `(n+1)·b`: `n` real rows followed by one
    ///   *spill* row. Ground terminals read voltage from / stamp current
    ///   into the spill row, making every stamp unconditional. The caller
    ///   must keep `x`'s spill row all `+0.0` (the ground potential); the
    ///   `q`/`f` spill rows come back as meaningless accumulation.
    /// - `c`, `g` are `(n²+1)·b`: `n²` row-major cells followed by one
    ///   spill cell absorbing all ground-involved matrix stamps.
    /// - `t` and `params` are per-lane, length `b`.
    ///
    /// Per lane the arithmetic replicates [`CompiledCircuit::assemble`]
    /// (itself a bitwise replica of the scalar `Circuit::assemble_into`)
    /// operation for operation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if slice lengths disagree with the layout
    /// contract (engine-internal buffers, not user input).
    // lint: hot-fn
    // effects: pure
    // Separate flat slices are the SoA layout contract, as in
    // [`CompiledCircuit::assemble`].
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_all(
        &self,
        x: &[f64],
        t: &[f64],
        params: &[Params],
        q: &mut [f64],
        f: &mut [f64],
        c: &mut [f64],
        g: &mut [f64],
    ) {
        let (n, b) = (self.n, self.lanes);
        debug_assert_eq!(x.len(), (n + 1) * b);
        debug_assert_eq!(t.len(), b);
        debug_assert_eq!(params.len(), b);
        debug_assert_eq!(q.len(), (n + 1) * b);
        debug_assert_eq!(f.len(), (n + 1) * b);
        debug_assert_eq!(c.len(), (n * n + 1) * b);
        debug_assert_eq!(g.len(), (n * n + 1) * b);
        assemble_kernel(&self.devices, x, t, params, q, f, c, g, b);
    }

    /// Assembles one lane's `∂f/∂p` at `t` into `dfdp` (length `n`),
    /// replicating [`CompiledCircuit::assemble_dfdp`]: only
    /// voltage-source branch equations depend on the skew parameters.
    ///
    /// Lane-scalar on purpose — the sensitivity recursion consumes this
    /// one accepted lane at a time.
    // lint: hot-fn
    // effects: pure
    pub fn assemble_dfdp(
        &self,
        lane: usize,
        t: f64,
        params: &Params,
        param: Param,
        dfdp: &mut [f64],
    ) {
        dfdp.fill(0.0);
        for device in &self.devices {
            if let SoaDevice::VoltageSource { br, waveforms, .. } = device {
                let dv = waveforms[lane].derivative(t, params, param);
                if dv != 0.0 {
                    dfdp[*br] -= dv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Inductor, MosParams, Resistor, VoltageSource};
    use crate::waveform::{DataPulse, RampShape};
    use shc_linalg::Vector;

    /// An inverter-flavored mixed circuit exercising every spec variant,
    /// including ground terminals and a branch unknown.
    fn mixed_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let data = c.node("data");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "Vdd",
            vdd,
            Circuit::GROUND,
            Waveform::dc(2.5),
        ));
        c.add(VoltageSource::new(
            "Vdata",
            data,
            Circuit::GROUND,
            Waveform::Data(DataPulse {
                v_rest: 0.0,
                v_active: 2.5,
                t_edge: 5e-9,
                rise: 0.5e-9,
                fall: 0.5e-9,
                shape: RampShape::Smoothstep,
            }),
        ));
        c.add(crate::devices::Mosfet::new(
            "Mp",
            out,
            data,
            vdd,
            MosParams::pmos_250nm(),
            2e-6,
            0.25e-6,
        ));
        c.add(crate::devices::Mosfet::new(
            "Mn",
            out,
            data,
            Circuit::GROUND,
            MosParams::nmos_250nm(),
            1e-6,
            0.25e-6,
        ));
        c.add(Resistor::new("Rl", out, Circuit::GROUND, 50e3));
        c.add(Capacitor::new("Cl", out, Circuit::GROUND, 5e-15));
        c
    }

    #[test]
    fn assemble_is_bitwise_identical_to_scalar() {
        let circuit = mixed_circuit();
        let compiled = CompiledCircuit::compile(&circuit).expect("compilable");
        let n = circuit.unknown_count();
        assert_eq!(compiled.dim(), n);
        let params = Params::new(1e-10, 2e-10);
        // A deliberately non-trivial state vector.
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.17 * i as f64).collect();
        let xv = Vector::from_slice(&x);
        for &t in &[0.0, 4.9e-9, 5.1e-9, 8e-9] {
            let scalar = circuit.assemble(&xv, t, &params, 1.0);
            let (mut q, mut f) = (vec![0.0; n], vec![0.0; n]);
            let (mut c, mut g) = (vec![0.0; n * n], vec![0.0; n * n]);
            compiled.assemble(&x, t, &params, &mut q, &mut f, &mut c, &mut g);
            for i in 0..n {
                assert_eq!(q[i].to_bits(), scalar.q[i].to_bits(), "q[{i}] at t={t}");
                assert_eq!(f[i].to_bits(), scalar.f[i].to_bits(), "f[{i}] at t={t}");
                for j in 0..n {
                    assert_eq!(
                        c[i * n + j].to_bits(),
                        scalar.c[(i, j)].to_bits(),
                        "C[{i},{j}] at t={t}"
                    );
                    assert_eq!(
                        g[i * n + j].to_bits(),
                        scalar.g[(i, j)].to_bits(),
                        "G[{i},{j}] at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn dfdp_is_bitwise_identical_to_scalar() {
        let circuit = mixed_circuit();
        let compiled = CompiledCircuit::compile(&circuit).expect("compilable");
        let n = circuit.unknown_count();
        let params = Params::new(1e-10, 2e-10);
        let mut dfdp = vec![0.0; n];
        // Mid data edge so the derivative is nonzero.
        for param in Param::ALL {
            for &t in &[0.0, 4.7e-9, 5.2e-9] {
                let scalar = circuit.assemble_dfdp(t, &params, param);
                compiled.assemble_dfdp(t, &params, param, &mut dfdp);
                for i in 0..n {
                    assert_eq!(
                        dfdp[i].to_bits(),
                        scalar[i].to_bits(),
                        "dfdp[{i}] at t={t} for {param:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn inductor_makes_circuit_uncompilable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R", a, Circuit::GROUND, 1e3));
        c.add(Inductor::new("L", a, Circuit::GROUND, 1e-9));
        assert!(CompiledCircuit::compile(&c).is_none());
    }

    /// The mixed circuit with every parameter value scaled by `k` —
    /// structurally identical to `mixed_circuit()`, numerically distinct,
    /// the shape of a Monte-Carlo/corner lane.
    fn mixed_circuit_scaled(k: f64) -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let data = c.node("data");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "Vdd",
            vdd,
            Circuit::GROUND,
            Waveform::dc(2.5 * k),
        ));
        c.add(VoltageSource::new(
            "Vdata",
            data,
            Circuit::GROUND,
            Waveform::Data(DataPulse {
                v_rest: 0.0,
                v_active: 2.5,
                t_edge: 5e-9 * k,
                rise: 0.5e-9,
                fall: 0.5e-9 * k,
                shape: RampShape::Smoothstep,
            }),
        ));
        c.add(crate::devices::Mosfet::new(
            "Mp",
            out,
            data,
            vdd,
            MosParams::pmos_250nm(),
            2e-6 * k,
            0.25e-6,
        ));
        c.add(crate::devices::Mosfet::new(
            "Mn",
            out,
            data,
            Circuit::GROUND,
            MosParams::nmos_250nm(),
            1e-6 * k,
            0.25e-6,
        ));
        c.add(Resistor::new("Rl", out, Circuit::GROUND, 50e3 * k));
        c.add(Capacitor::new("Cl", out, Circuit::GROUND, 5e-15 * k));
        c
    }

    #[test]
    fn soa_lanes_are_bitwise_identical_to_scalar_assembly() {
        let circuits: Vec<Circuit> = [1.0, 0.85, 1.3]
            .iter()
            .map(|&k| mixed_circuit_scaled(k))
            .collect();
        let compiled: Vec<CompiledCircuit> = circuits
            .iter()
            .map(|c| CompiledCircuit::compile(c).expect("compilable"))
            .collect();
        let soa = SoaCircuit::merge(&compiled).expect("structurally identical lanes");
        let b = circuits.len();
        let n = soa.dim();
        assert_eq!(n, compiled[0].dim());
        assert_eq!(soa.lanes(), b);
        let params = [
            Params::new(1e-10, 2e-10),
            Params::new(-0.5e-10, 0.0),
            Params::new(2e-10, -1e-10),
        ];
        // Per-lane times straddle the data edge so waveforms differ.
        let t = [4.9e-9, 5.1e-9, 0.0];
        let (mut q, mut f) = (vec![0.0; (n + 1) * b], vec![0.0; (n + 1) * b]);
        let (mut c, mut g) = (vec![0.0; (n * n + 1) * b], vec![0.0; (n * n + 1) * b]);
        // Two state patterns: ascending and descending node voltages, so
        // both MOSFET v_ds signs (the exchanged drain/source path) are
        // exercised across lanes.
        for (pat, slope) in [(0, 0.17), (1, -0.23)] {
            let mut x = vec![0.0; (n + 1) * b];
            for l in 0..b {
                for i in 0..n {
                    x[i * b + l] = 0.3 + slope * i as f64 - 0.05 * l as f64;
                }
            }
            soa.assemble_all(&x, &t, &params, &mut q, &mut f, &mut c, &mut g);
            for l in 0..b {
                let lane_x: Vec<f64> = (0..n).map(|i| x[i * b + l]).collect();
                let scalar =
                    circuits[l].assemble(&Vector::from_slice(&lane_x), t[l], &params[l], 1.0);
                for i in 0..n {
                    assert_eq!(
                        q[i * b + l].to_bits(),
                        scalar.q[i].to_bits(),
                        "pattern {pat} lane {l} q[{i}]"
                    );
                    assert_eq!(
                        f[i * b + l].to_bits(),
                        scalar.f[i].to_bits(),
                        "pattern {pat} lane {l} f[{i}]"
                    );
                    for j in 0..n {
                        assert_eq!(
                            c[(i * n + j) * b + l].to_bits(),
                            scalar.c[(i, j)].to_bits(),
                            "pattern {pat} lane {l} C[{i},{j}]"
                        );
                        assert_eq!(
                            g[(i * n + j) * b + l].to_bits(),
                            scalar.g[(i, j)].to_bits(),
                            "pattern {pat} lane {l} G[{i},{j}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soa_dfdp_is_bitwise_identical_per_lane() {
        let circuits: Vec<Circuit> = [1.0, 1.2]
            .iter()
            .map(|&k| mixed_circuit_scaled(k))
            .collect();
        let compiled: Vec<CompiledCircuit> = circuits
            .iter()
            .map(|c| CompiledCircuit::compile(c).expect("compilable"))
            .collect();
        let soa = SoaCircuit::merge(&compiled).expect("mergeable");
        let n = soa.dim();
        let params = Params::new(1e-10, -2e-10);
        let mut dfdp = vec![0.0; n];
        for (l, circuit) in circuits.iter().enumerate() {
            for param in Param::ALL {
                for &t in &[0.0, 4.7e-9, 5.6e-9] {
                    let scalar = circuit.assemble_dfdp(t, &params, param);
                    soa.assemble_dfdp(l, t, &params, param, &mut dfdp);
                    for i in 0..n {
                        assert_eq!(
                            dfdp[i].to_bits(),
                            scalar[i].to_bits(),
                            "lane {l} dfdp[{i}] at t={t} for {param:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn merge_rejects_structural_mismatches() {
        let base = mixed_circuit();
        // Same device sequence and dimension, different resistor wiring.
        let rewired = {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let data = c.node("data");
            let out = c.node("out");
            c.add(VoltageSource::new(
                "Vdd",
                vdd,
                Circuit::GROUND,
                Waveform::dc(2.5),
            ));
            c.add(VoltageSource::new(
                "Vdata",
                data,
                Circuit::GROUND,
                Waveform::dc(0.0),
            ));
            c.add(crate::devices::Mosfet::new(
                "Mp",
                out,
                data,
                vdd,
                MosParams::pmos_250nm(),
                2e-6,
                0.25e-6,
            ));
            c.add(crate::devices::Mosfet::new(
                "Mn",
                out,
                data,
                Circuit::GROUND,
                MosParams::nmos_250nm(),
                1e-6,
                0.25e-6,
            ));
            c.add(Resistor::new("Rl", out, vdd, 50e3)); // ≠ out-ground
            c.add(Capacitor::new("Cl", out, Circuit::GROUND, 5e-15));
            c
        };
        // Same wiring, opposite polarity in the Mn slot.
        let flipped = {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let data = c.node("data");
            let out = c.node("out");
            c.add(VoltageSource::new(
                "Vdd",
                vdd,
                Circuit::GROUND,
                Waveform::dc(2.5),
            ));
            c.add(VoltageSource::new(
                "Vdata",
                data,
                Circuit::GROUND,
                Waveform::dc(0.0),
            ));
            c.add(crate::devices::Mosfet::new(
                "Mp",
                out,
                data,
                vdd,
                MosParams::pmos_250nm(),
                2e-6,
                0.25e-6,
            ));
            c.add(crate::devices::Mosfet::new(
                "Mn",
                out,
                data,
                Circuit::GROUND,
                MosParams::pmos_250nm(), // wrong polarity
                1e-6,
                0.25e-6,
            ));
            c.add(Resistor::new("Rl", out, Circuit::GROUND, 50e3));
            c.add(Capacitor::new("Cl", out, Circuit::GROUND, 5e-15));
            c
        };
        let cb = CompiledCircuit::compile(&base).unwrap();
        let cr = CompiledCircuit::compile(&rewired).unwrap();
        let cf = CompiledCircuit::compile(&flipped).unwrap();
        assert!(
            SoaCircuit::merge(&[cb.clone(), cr]).is_none(),
            "node mismatch"
        );
        assert!(
            SoaCircuit::merge(&[cb.clone(), cf]).is_none(),
            "polarity mismatch"
        );
        assert!(SoaCircuit::merge(&[cb.clone(), cb]).is_some(), "self-merge");
        assert!(SoaCircuit::merge(&[]).is_none(), "empty batch");
    }

    #[test]
    fn agreement_horizon_follows_the_data_pulse_bound() {
        // The sweep shape: identical circuits, lanes differ only through
        // their skew parameters entering via the data pulse.
        let circuit = mixed_circuit();
        let compiled = vec![CompiledCircuit::compile(&circuit).unwrap(); 3];
        let soa = SoaCircuit::merge(&compiled).unwrap();

        // Identical parameters: lanes are the same simulation forever.
        let p0 = Params::new(1e-10, 2e-10);
        assert_eq!(soa.agreement_horizon(&[p0, p0, p0]), f64::INFINITY);

        // Skews differing only in τh: horizon is the data pulse's
        // trailing-edge bound (t_edge + min τh − fall/2), and it covers
        // most of the pulse (t_edge is 5 ns here).
        let params = [p0, Params::new(1e-10, 2.5e-10), Params::new(1e-10, 3e-10)];
        let d = DataPulse {
            v_rest: 0.0,
            v_active: 2.5,
            t_edge: 5e-9,
            rise: 0.5e-9,
            fall: 0.5e-9,
            shape: RampShape::Smoothstep,
        };
        let expect = d
            .agree_until(&params[0], &params[1])
            .min(d.agree_until(&params[0], &params[2]));
        let horizon = soa.agreement_horizon(&params);
        assert_eq!(horizon, expect);
        assert!(horizon > 4e-9, "fast-edge sweeps share most of the run");
    }

    #[test]
    fn agreement_horizon_is_zero_for_differing_devices() {
        // Same topology, different device values (a Monte-Carlo batch):
        // the prefix is not shared even when the skews match.
        let compiled: Vec<CompiledCircuit> = [1.0, 1.1]
            .iter()
            .map(|&k| CompiledCircuit::compile(&mixed_circuit_scaled(k)).unwrap())
            .collect();
        let soa = SoaCircuit::merge(&compiled).unwrap();
        let p = Params::new(1e-10, 2e-10);
        assert_eq!(soa.agreement_horizon(&[p, p]), 0.0);
    }
}
