//! Waveform measurement utilities — the `.MEASURE`-style post-processing a
//! characterization flow runs on transient results: threshold crossings,
//! rise/fall slews, node-to-node delays, swing, and settling checks.

use crate::transient::{CrossingDirection, TransientResult};

/// Measurement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// The requested trajectory was not recorded (wrong [`crate::transient::RecordMode`]).
    TrajectoryUnavailable {
        /// The unknown index that was requested.
        unknown: usize,
    },
    /// The waveform never satisfied the measurement condition.
    ConditionNeverMet {
        /// Human-readable description of the condition.
        condition: &'static str,
    },
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::TrajectoryUnavailable { unknown } => {
                write!(f, "trajectory for unknown {unknown} was not recorded")
            }
            MeasureError::ConditionNeverMet { condition } => {
                write!(f, "measurement condition never met: {condition}")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

/// Rise or fall slew: time between the `low_frac` and `high_frac`
/// crossings of the swing between `v_low` and `v_high` (e.g. 10%–90%).
///
/// For a falling measurement pass `CrossingDirection::Falling`; the
/// fractions are always interpreted on the rising-equivalent swing.
///
/// # Errors
///
/// [`MeasureError`] if the trajectory is missing or the thresholds are
/// never crossed after `t_after`.
// The argument list mirrors a SPICE .MEASURE TRIG/TARG statement; bundling
// it into an options struct would only rename the same eight knobs.
#[allow(clippy::too_many_arguments)]
pub fn slew(
    result: &TransientResult,
    unknown: usize,
    v_low: f64,
    v_high: f64,
    low_frac: f64,
    high_frac: f64,
    t_after: f64,
    direction: CrossingDirection,
) -> Result<f64, MeasureError> {
    if result.trajectory(unknown).is_none() {
        return Err(MeasureError::TrajectoryUnavailable { unknown });
    }
    let lo_level = v_low + low_frac * (v_high - v_low);
    let hi_level = v_low + high_frac * (v_high - v_low);
    let (first_level, second_level) = match direction {
        CrossingDirection::Falling => (hi_level, lo_level),
        _ => (lo_level, hi_level),
    };
    let t1 = result
        .crossing_time(unknown, first_level, t_after, direction)
        .ok_or(MeasureError::ConditionNeverMet {
            condition: "first slew threshold",
        })?;
    let t2 = result
        .crossing_time(unknown, second_level, t1, direction)
        .ok_or(MeasureError::ConditionNeverMet {
            condition: "second slew threshold",
        })?;
    Ok(t2 - t1)
}

/// Delay between the `frac` crossing of `from` and the `frac` crossing of
/// `to` (50%–50% propagation delay with `frac = 0.5`).
///
/// # Errors
///
/// [`MeasureError`] if either trajectory is missing or never crosses.
#[allow(clippy::too_many_arguments)]
pub fn delay(
    result: &TransientResult,
    from: usize,
    from_direction: CrossingDirection,
    to: usize,
    to_direction: CrossingDirection,
    level: f64,
    t_after: f64,
) -> Result<f64, MeasureError> {
    for unknown in [from, to] {
        if result.trajectory(unknown).is_none() {
            return Err(MeasureError::TrajectoryUnavailable { unknown });
        }
    }
    let t_from = result
        .crossing_time(from, level, t_after, from_direction)
        .ok_or(MeasureError::ConditionNeverMet {
            condition: "source crossing",
        })?;
    let t_to = result
        .crossing_time(to, level, t_from, to_direction)
        .ok_or(MeasureError::ConditionNeverMet {
            condition: "destination crossing",
        })?;
    Ok(t_to - t_from)
}

/// Minimum and maximum of a trajectory over `[t_after, end]`.
///
/// # Errors
///
/// [`MeasureError`] if the trajectory is missing or the window is empty.
pub fn swing(
    result: &TransientResult,
    unknown: usize,
    t_after: f64,
) -> Result<(f64, f64), MeasureError> {
    let traj = result
        .trajectory(unknown)
        .ok_or(MeasureError::TrajectoryUnavailable { unknown })?;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (v, &t) in traj.iter().zip(result.times()) {
        if t >= t_after {
            min = min.min(*v);
            max = max.max(*v);
        }
    }
    if min > max {
        return Err(MeasureError::ConditionNeverMet {
            condition: "nonempty window",
        });
    }
    Ok((min, max))
}

/// Whether the trajectory stays within `±tol` of `level` from `t_after` to
/// the end (settling check).
///
/// # Errors
///
/// [`MeasureError`] if the trajectory is missing.
pub fn settles_to(
    result: &TransientResult,
    unknown: usize,
    level: f64,
    tol: f64,
    t_after: f64,
) -> Result<bool, MeasureError> {
    let (min, max) = swing(result, unknown, t_after)?;
    Ok(min >= level - tol && max <= level + tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::transient::{RecordMode, TransientAnalysis, TransientOptions};
    use crate::waveform::{Params, Pulse, RampShape, Waveform};
    use crate::Circuit;

    /// RC low-pass driven by a clean pulse: analytic slews and delays.
    fn pulsed_rc() -> (Circuit, usize, usize) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-7,
                rise: 1e-9,
                fall: 1e-9,
                width: 4e-7,
                period: 0.0,
                shape: RampShape::Linear,
            }),
        ));
        c.add(Resistor::new("R1", vin, vout, 1e3));
        c.add(Capacitor::new("C1", vout, Circuit::GROUND, 2e-11)); // tau = 20 ns
        (
            c, 0, // in
            1, // out
        )
    }

    fn run(c: &Circuit) -> TransientResult {
        let opts = TransientOptions::builder(6e-7).dt(2e-10).build();
        TransientAnalysis::new(c, opts)
            .run(&Params::default())
            .unwrap()
    }

    #[test]
    fn rc_slew_matches_analytic() {
        let (c, _vin, vout) = pulsed_rc();
        let res = run(&c);
        // 10-90% rise of a first-order RC: tau·ln(9) ≈ 2.197·tau = 43.9 ns.
        let s = slew(
            &res,
            vout,
            0.0,
            1.0,
            0.1,
            0.9,
            0.0,
            CrossingDirection::Rising,
        )
        .unwrap();
        assert!(
            (s - 43.9e-9).abs() < 2e-9,
            "slew {:.2} ns vs 43.9 ns",
            s * 1e9
        );
    }

    #[test]
    fn rc_delay_matches_analytic() {
        let (c, vin, vout) = pulsed_rc();
        let res = run(&c);
        // 50-50 delay of a first-order RC: tau·ln 2 ≈ 13.86 ns.
        let d = delay(
            &res,
            vin,
            CrossingDirection::Rising,
            vout,
            CrossingDirection::Rising,
            0.5,
            0.0,
        )
        .unwrap();
        assert!((d - 13.86e-9).abs() < 1e-9, "delay {:.2} ns", d * 1e9);
    }

    #[test]
    fn falling_slew_measures_the_discharge() {
        let (c, _vin, vout) = pulsed_rc();
        let res = run(&c);
        // After the pulse drops (t > 0.5 us) the output discharges.
        let s = slew(
            &res,
            vout,
            0.0,
            1.0,
            0.1,
            0.9,
            4.9e-7,
            CrossingDirection::Falling,
        )
        .unwrap();
        assert!((s - 43.9e-9).abs() < 3e-9, "fall slew {:.2} ns", s * 1e9);
    }

    #[test]
    fn swing_and_settling() {
        let (c, _vin, vout) = pulsed_rc();
        let res = run(&c);
        let (min, max) = swing(&res, vout, 0.0).unwrap();
        assert!(min >= -1e-6 && max <= 1.0 + 1e-6);
        assert!(max > 0.99, "output should approach 1 V, max {max}");
        // The full window includes the post-pulse discharge: not settled.
        assert!(!settles_to(&res, vout, 1.0, 0.02, 4.4e-7).unwrap());
        // A run truncated before the pulse ends is settled at the top.
        let (c, _, _) = pulsed_rc();
        let opts = TransientOptions::builder(4.5e-7).dt(2e-10).build();
        let charged = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        assert!(settles_to(&charged, vout, 1.0, 0.05, 4.0e-7).unwrap());
    }

    #[test]
    fn missing_trajectory_is_reported() {
        let (c, _, vout) = pulsed_rc();
        let opts = TransientOptions::builder(1e-7)
            .dt(1e-9)
            .record(RecordMode::FinalOnly)
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        let e = swing(&res, vout, 0.0).unwrap_err();
        assert!(matches!(e, MeasureError::TrajectoryUnavailable { .. }));
        assert!(e.to_string().contains("not recorded"));
    }

    #[test]
    fn never_crossing_is_reported() {
        let (c, _vin, vout) = pulsed_rc();
        let res = run(&c);
        let e = slew(
            &res,
            vout,
            0.0,
            5.0,
            0.1,
            0.9,
            0.0,
            CrossingDirection::Rising,
        )
        .unwrap_err();
        assert!(matches!(e, MeasureError::ConditionNeverMet { .. }));
    }
}
