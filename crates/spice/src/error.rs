use std::fmt;

use shc_linalg::LinalgError;

/// Errors produced by circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A linear-algebra operation failed (singular Jacobian, etc.).
    Linalg(LinalgError),
    /// Newton-Raphson failed to converge.
    NewtonDiverged {
        /// What was being solved, e.g. `"dc operating point"`.
        context: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final weighted update norm (converged when ≤ 1).
        residual: f64,
    },
    /// Transient analysis could not proceed (time step underflow).
    TimestepTooSmall {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The rejected step size.
        dt: f64,
        /// LTE/Newton step rejections accumulated before the abort.
        rejected_steps: usize,
    },
    /// Circuit construction problem (bad node, duplicate name, empty netlist…).
    BadCircuit {
        /// Description of the problem.
        reason: String,
    },
    /// A device parameter was out of its valid range.
    BadParameter {
        /// Device name.
        device: String,
        /// Description of the offending parameter.
        reason: &'static str,
    },
    /// A simulation produced a non-finite value.
    NumericalBlowup {
        /// Simulation time of the blow-up.
        time: f64,
    },
    /// The netlist text could not be parsed. Malformed input must surface
    /// as an error, never abort a batch run.
    Parse {
        /// 1-based line number in the (expanded) deck.
        line: usize,
        /// Description of the syntax or semantic problem.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SpiceError::NewtonDiverged {
                context,
                iterations,
                residual,
            } => write!(
                f,
                "newton-raphson diverged in {context} after {iterations} iterations (weighted residual {residual:.3e})"
            ),
            SpiceError::TimestepTooSmall {
                time,
                dt,
                rejected_steps,
            } => write!(
                f,
                "time step underflow at t = {time:.6e}s (dt = {dt:.3e}s, {rejected_steps} rejected steps)"
            ),
            SpiceError::BadCircuit { reason } => write!(f, "bad circuit: {reason}"),
            SpiceError::BadParameter { device, reason } => {
                write!(f, "bad parameter on device '{device}': {reason}")
            }
            SpiceError::NumericalBlowup { time } => {
                write!(f, "non-finite value produced at t = {time:.6e}s")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "netlist line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SpiceError {
    fn from(e: LinalgError) -> Self {
        SpiceError::Linalg(e)
    }
}

impl From<crate::netlist::NetlistError> for SpiceError {
    fn from(e: crate::netlist::NetlistError) -> Self {
        SpiceError::Parse {
            line: e.line,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SpiceError::from(LinalgError::NotSquare { shape: (2, 3) });
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());

        let e = SpiceError::NewtonDiverged {
            context: "transient step",
            iterations: 50,
            residual: 12.5,
        };
        assert!(e.to_string().contains("transient step"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
