use shc_linalg::Vector;

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::waveform::{Param, Waveform};
use crate::Node;

/// An independent current source with an arbitrary [`Waveform`].
///
/// Current `I(t)` flows from `p` through the source to `n` (i.e. it is
/// *drawn out of* node `p` and *injected into* node `n`), matching the
/// SPICE convention.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    name: String,
    p: Node,
    n: Node,
    waveform: Waveform,
}

impl CurrentSource {
    /// Creates a current source from `p` to `n` with `waveform`.
    pub fn new(name: &str, p: Node, n: Node, waveform: Waveform) -> Self {
        CurrentSource {
            name: name.to_string(),
            p,
            n,
            waveform,
        }
    }

    /// The source waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }
}

impl Device for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let i = self.waveform.value(ctx.t, ctx.params) * ctx.source_scale;
        stamper.add_f(self.p.unknown(), i);
        stamper.add_f(self.n.unknown(), -i);
    }

    fn stamp_param_derivative(&self, dfdp: &mut Vector, ctx: &EvalContext<'_>, param: Param) {
        let di = self.waveform.derivative(ctx.t, ctx.params, param) * ctx.source_scale;
        if di != 0.0 {
            if let Some(i) = self.p.unknown() {
                dfdp[i] += di;
            }
            if let Some(i) = self.n.unknown() {
                dfdp[i] -= di;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Params;
    use crate::Circuit;

    #[test]
    fn injects_current_with_spice_sign_convention() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(CurrentSource::new("I1", a, b, Waveform::dc(1e-3)));
        let x = Vector::zeros(2);
        let s = c.assemble(&x, 0.0, &Params::default(), 1.0);
        assert_eq!(s.f[0], 1e-3);
        assert_eq!(s.f[1], -1e-3);
        assert_eq!(s.g.norm_frobenius(), 0.0);
    }

    #[test]
    fn source_scale_applies() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(CurrentSource::new(
            "I1",
            a,
            Circuit::GROUND,
            Waveform::dc(2e-3),
        ));
        let x = Vector::zeros(1);
        let s = c.assemble(&x, 0.0, &Params::default(), 0.25);
        assert_eq!(s.f[0], 0.5e-3);
    }
}
