use serde::{Deserialize, Serialize};

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// Diode model card.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiodeParams {
    /// Saturation current `I_S` in amperes.
    pub i_s: f64,
    /// Thermal voltage `V_T` (kT/q) in volts.
    pub v_t: f64,
    /// Emission coefficient `n`.
    pub n: f64,
    /// Junction capacitance in farads (constant approximation).
    pub cj: f64,
    /// Forward voltage beyond which the exponential is linearized to keep
    /// Newton iterations bounded (SPICE-style limiting), in volts.
    pub v_crit: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            i_s: 1e-14,
            v_t: 0.02585,
            n: 1.0,
            cj: 1e-15,
            v_crit: 0.8,
        }
    }
}

/// A junction diode with exponential I-V and linearized overflow guard.
///
/// Above `v_crit`, the exponential is continued linearly (value and slope
/// match at the junction), which keeps the Jacobian finite for wild Newton
/// trial points — the classic SPICE junction-limiting trick, done in the
/// model instead of the iteration.
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Diode};
/// use shc_spice::devices::DiodeParams;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Diode::new("D1", a, Circuit::GROUND, DiodeParams::default()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Diode {
    name: String,
    anode: Node,
    cathode: Node,
    params: DiodeParams,
}

impl Diode {
    /// Creates a diode from `anode` to `cathode`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-physical (non-positive `i_s`,
    /// `v_t`, or `n`).
    pub fn new(name: &str, anode: Node, cathode: Node, params: DiodeParams) -> Self {
        assert!(
            params.i_s > 0.0 && params.v_t > 0.0 && params.n > 0.0,
            "diode {name}: i_s, v_t, n must be positive"
        );
        Diode {
            name: name.to_string(),
            anode,
            cathode,
            params,
        }
    }

    /// Diode current and conductance at junction voltage `v`.
    pub fn current(&self, v: f64) -> (f64, f64) {
        let DiodeParams {
            i_s,
            v_t,
            n,
            v_crit,
            ..
        } = self.params;
        let nvt = n * v_t;
        if v <= v_crit {
            let e = (v / nvt).exp();
            (i_s * (e - 1.0), i_s * e / nvt)
        } else {
            // Linear continuation: match value and slope at v_crit.
            let e_crit = (v_crit / nvt).exp();
            let i_crit = i_s * (e_crit - 1.0);
            let g_crit = i_s * e_crit / nvt;
            (i_crit + g_crit * (v - v_crit), g_crit)
        }
    }
}

impl Device for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let (ea, ec) = (self.anode.unknown(), self.cathode.unknown());
        let v = ctx.voltage(self.anode) - ctx.voltage(self.cathode);
        let (i, g) = self.current(v);
        stamper.add_f(ea, i);
        stamper.add_f(ec, -i);
        stamper.stamp_conductance(ea, ec, g);

        let q = self.params.cj * v;
        stamper.add_q(ea, q);
        stamper.add_q(ec, -q);
        stamper.stamp_capacitance(ea, ec, self.params.cj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcop::{solve_dc, DcOptions};
    use crate::devices::{Resistor, VoltageSource};
    use crate::waveform::{Params, Waveform};
    use crate::Circuit;

    fn diode() -> Diode {
        let mut c = Circuit::new();
        let a = c.node("a");
        Diode::new("D", a, Circuit::GROUND, DiodeParams::default())
    }

    #[test]
    fn exponential_region_and_reverse_bias() {
        let d = diode();
        let (i_rev, g_rev) = d.current(-5.0);
        assert!((i_rev + 1e-14).abs() < 1e-20, "reverse current {i_rev}");
        assert!(g_rev >= 0.0);
        let (i_06, _) = d.current(0.6);
        let (i_07, _) = d.current(0.7);
        assert!(i_07 > 10.0 * i_06, "exponential growth expected");
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let d = diode();
        for &v in &[-1.0, 0.0, 0.3, 0.6, 0.79, 0.81, 1.5] {
            let h = 1e-7;
            let (_, g) = d.current(v);
            let fd = (d.current(v + h).0 - d.current(v - h).0) / (2.0 * h);
            assert!(
                (g - fd).abs() <= 1e-5 * fd.abs().max(1e-12),
                "v = {v}: g = {g:.4e}, fd = {fd:.4e}"
            );
        }
    }

    #[test]
    fn limiting_is_continuous_at_v_crit() {
        let d = diode();
        let eps = 1e-9;
        let below = d.current(0.8 - eps).0;
        let above = d.current(0.8 + eps).0;
        assert!((above - below).abs() < 1e-6 * above.abs());
    }

    #[test]
    fn rectifier_dc_solves() {
        // V(2V) — R(1k) — D to ground: forward drop ≈ 0.6-0.8 V.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::dc(2.0),
        ));
        c.add(Resistor::new("R1", vin, mid, 1e3));
        c.add(Diode::new(
            "D1",
            mid,
            Circuit::GROUND,
            DiodeParams::default(),
        ));
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let v_d = sol.x[c.unknown_of(mid).unwrap()];
        assert!(
            (0.5..0.85).contains(&v_d),
            "diode forward voltage {v_d} out of range"
        );
    }
}
