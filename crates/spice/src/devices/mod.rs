//! Device models.
//!
//! Every device implements [`Device`]: it stamps its constitutive relation
//! (charge, current, and their Jacobians) into the MNA system, and — for
//! sources whose waveforms depend on the skew parameters — the parameter
//! derivative of the residual needed by forward sensitivity analysis.

mod capacitor;
mod controlled;
mod diode;
mod inductor;
mod isource;
mod mosfet;
mod resistor;
mod vsource;

pub use capacitor::Capacitor;
pub use controlled::{Vccs, Vcvs};
pub use diode::{Diode, DiodeParams};
pub use inductor::Inductor;
pub use isource::CurrentSource;
pub use mosfet::{MosParams, MosPolarity, Mosfet};
pub use resistor::Resistor;
pub use vsource::VoltageSource;

use shc_linalg::Vector;

use crate::stamp::{EvalContext, Stamper};
use crate::waveform::Param;

/// A circuit element that contributes MNA stamps.
///
/// Implementors must be deterministic functions of `(x, t, params)`; the
/// simulator may evaluate them at arbitrary trial points during Newton
/// iterations.
pub trait Device: std::fmt::Debug + Send + Sync {
    /// Instance name (diagnostics only).
    fn name(&self) -> &str;

    /// Number of branch-current unknowns this device needs (e.g. `1` for a
    /// voltage source).
    fn branch_count(&self) -> usize {
        0
    }

    /// Called once when the device is added to a circuit; `start` is the
    /// first branch slot allocated to this device.
    fn set_branch_start(&mut self, _start: usize) {}

    /// Stamps `q`, `f`, `C`, and `G` contributions at the evaluation point.
    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>);

    /// Adds this device's contribution to `∂f/∂param` (the paper's
    /// `b_d · z(t)`). Default: no dependence.
    fn stamp_param_derivative(&self, _dfdp: &mut Vector, _ctx: &EvalContext<'_>, _param: Param) {}

    /// Value-level descriptor for the lockstep batched engine.
    ///
    /// Devices that can be evaluated by the SoA batch stepper return a
    /// [`crate::batch::DeviceSpec`]; the default `None` opts the whole
    /// circuit out of batching, so sweeps over it fall back to the scalar
    /// path. The spec must describe *exactly* the arithmetic of
    /// [`Device::stamp`] — the batched path is required to be bitwise
    /// identical to the scalar one.
    fn batch_spec(&self) -> Option<crate::batch::DeviceSpec> {
        None
    }
}
