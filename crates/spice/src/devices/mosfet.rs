//! Smoothed Shichman-Hodges (SPICE level-1) MOSFET.
//!
//! The characterization algorithm differentiates the circuit equations, so
//! the device model must be at least C¹. The classic level-1 equations have
//! derivative kinks at cutoff (`v_gs = V_T`) and at the triode/saturation
//! boundary (`v_ds = v_gs − V_T`); we replace both `max(·, 0)` selections
//! with a softplus-style smoothing
//! `sp(x) = (x + √(x² + ε²)) / 2`, which is C∞ and ε-close to `max(x, 0)`.
//!
//! The model covers both polarities via voltage reflection, is symmetric in
//! drain/source (handles `v_ds < 0` by swapping), includes channel-length
//! modulation, and stamps constant Meyer-style gate-overlap and junction
//! capacitances derived from the geometry.

use serde::{Deserialize, Serialize};

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

impl MosPolarity {
    /// Voltage-reflection sign: `+1` for NMOS, `−1` for PMOS.
    pub fn sign(self) -> f64 {
        match self {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }
}

/// Level-1 model card.
///
/// Threshold voltage is given as a positive magnitude for both polarities;
/// the polarity's voltage reflection handles the sign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Polarity.
    pub polarity: MosPolarity,
    /// Threshold voltage magnitude `|V_T0|` in volts.
    pub vt0: f64,
    /// Process transconductance `k' = µ·C_ox` in A/V².
    pub kp: f64,
    /// Channel-length modulation `λ` in 1/V.
    pub lambda: f64,
    /// Gate-oxide capacitance per area in F/m² (channel charge).
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width in F/m.
    pub cov: f64,
    /// Junction (drain/source to body) capacitance per width in F/m.
    pub cj: f64,
    /// Smoothing half-width for the cutoff transition, in volts.
    pub eps_cutoff: f64,
    /// Smoothing half-width for the triode/saturation transition, in volts.
    pub eps_sat: f64,
}

impl MosParams {
    /// A generic 0.25 µm-class NMOS card (2.5 V supply).
    pub fn nmos_250nm() -> Self {
        MosParams {
            polarity: MosPolarity::Nmos,
            vt0: 0.43,
            kp: 120e-6,
            lambda: 0.06,
            cox: 6e-3,
            cov: 3e-10,
            cj: 1e-9,
            eps_cutoff: 0.04,
            eps_sat: 0.04,
        }
    }

    /// A generic 0.25 µm-class PMOS card (2.5 V supply).
    pub fn pmos_250nm() -> Self {
        MosParams {
            polarity: MosPolarity::Pmos,
            vt0: 0.40,
            kp: 40e-6,
            lambda: 0.08,
            cox: 6e-3,
            cov: 3e-10,
            cj: 1e-9,
            eps_cutoff: 0.04,
            eps_sat: 0.04,
        }
    }
}

/// Smoothed `max(x, 0)`: returns `(value, derivative)`.
fn softplus(x: f64, eps: f64) -> (f64, f64) {
    let r = (x * x + eps * eps).sqrt();
    (0.5 * (x + r), 0.5 * (1.0 + x / r))
}

/// Forward-region drain current for an NMOS-reflected device with
/// `v_ds ≥ 0`: returns `(i_d, ∂i_d/∂v_gs, ∂i_d/∂v_ds)`.
///
/// The softplus smoothing leaves a tiny spurious current at `v_ds = 0`;
/// the raw expression is therefore offset-corrected by its own value at
/// `v_ds = 0` so that `i_d(v_gs, 0) ≡ 0` exactly, preserving drain/source
/// symmetry and C¹ continuity across `v_ds = 0`.
fn ids_forward(vgs: f64, vds: f64, p: &MosParams, beta: f64) -> (f64, f64, f64) {
    let (id, gm, gds) = ids_forward_raw(vgs, vds, p, beta);
    let (id0, gm0, _) = ids_forward_raw(vgs, 0.0, p, beta);
    (id - id0, gm - gm0, gds)
}

fn ids_forward_raw(vgs: f64, vds: f64, p: &MosParams, beta: f64) -> (f64, f64, f64) {
    let (vov, dvov) = softplus(vgs - p.vt0, p.eps_cutoff);
    // Effective v_ds clamps smoothly at the saturation voltage v_ov.
    let (clip, dclip) = softplus(vds - vov, p.eps_sat);
    let vdse = vds - clip;
    let dvdse_dvds = 1.0 - dclip;
    let dvdse_dvov = dclip;

    let klm = 1.0 + p.lambda * vds;
    let fcur = (vov - 0.5 * vdse) * vdse;
    let df_dvov = vdse + (vov - vdse) * dvdse_dvov;
    let df_dvds = (vov - vdse) * dvdse_dvds;

    let id = beta * klm * fcur;
    let gm = beta * klm * df_dvov * dvov;
    let gds = beta * (p.lambda * fcur + klm * df_dvds);
    (id, gm, gds)
}

/// Drain current of the reflected (NMOS-like) device for any `v_ds` sign:
/// returns `(i_d, ∂i_d/∂v_gs, ∂i_d/∂v_ds)`.
fn ids_symmetric(vgs: f64, vds: f64, p: &MosParams, beta: f64) -> (f64, f64, f64) {
    if vds >= 0.0 {
        ids_forward(vgs, vds, p, beta)
    } else {
        // Exchange source and drain: i_d(v_gs, v_ds) = −i_fwd(v_gd, −v_ds).
        let (i, gm_f, gds_f) = ids_forward(vgs - vds, -vds, p, beta);
        // ∂/∂v_gs = −gm_f·∂(v_gs−v_ds)/∂v_gs = −gm_f
        // ∂/∂v_ds = −[gm_f·(−1) + gds_f·(−1)] = gm_f + gds_f
        (-i, -gm_f, gm_f + gds_f)
    }
}

/// A four-terminal-reduced (bulk tied to rail) level-1 MOSFET.
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Mosfet, MosParams};
///
/// let mut ckt = Circuit::new();
/// let (d, g, s) = (ckt.node("d"), ckt.node("g"), ckt.node("s"));
/// ckt.add(Mosfet::new("M1", d, g, s, MosParams::nmos_250nm(), 1e-6, 0.25e-6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    name: String,
    drain: Node,
    gate: Node,
    source: Node,
    params: MosParams,
    width: f64,
    length: f64,
    beta: f64,
    cgs: f64,
    cgd: f64,
    cdb: f64,
    csb: f64,
}

impl Mosfet {
    /// Creates a MOSFET with the given geometry (meters).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `length` is not positive and finite.
    pub fn new(
        name: &str,
        drain: Node,
        gate: Node,
        source: Node,
        params: MosParams,
        width: f64,
        length: f64,
    ) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && length.is_finite() && length > 0.0,
            "mosfet {name}: width/length must be positive and finite"
        );
        let beta = params.kp * width / length;
        // Half the channel charge to each of gate-source / gate-drain, plus
        // overlap; junction caps scale with width.
        let cg_half = 0.5 * params.cox * width * length + params.cov * width;
        Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            params,
            width,
            length,
            beta,
            cgs: cg_half,
            cgd: cg_half,
            cdb: params.cj * width,
            csb: params.cj * width,
        }
    }

    /// Channel width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Channel length in meters.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Model card.
    pub fn params(&self) -> &MosParams {
        &self.params
    }

    /// Terminal nodes `(drain, gate, source)` — for the batch compiler.
    pub(crate) fn terminals(&self) -> (Node, Node, Node) {
        (self.drain, self.gate, self.source)
    }

    /// Derived constant capacitances `(c_gs, c_gd, c_db, c_sb)` — for the
    /// batch compiler's stamping kernel.
    pub(crate) fn caps(&self) -> (f64, f64, f64, f64) {
        (self.cgs, self.cgd, self.cdb, self.csb)
    }

    /// Drain-current kernel constants, flattened for the SoA batch
    /// compiler: `(sign, vt0, eps_cutoff, eps_sat, lambda, beta)`. The SoA
    /// assembly replicates [`Mosfet::drain_current`] from these exact
    /// values, so lane evaluation stays bitwise identical to this device.
    pub(crate) fn kernel_constants(&self) -> (f64, f64, f64, f64, f64, f64) {
        (
            self.params.polarity.sign(),
            self.params.vt0,
            self.params.eps_cutoff,
            self.params.eps_sat,
            self.params.lambda,
            self.beta,
        )
    }

    /// Model polarity — structural-equality key for the SoA batch merge.
    pub(crate) fn polarity(&self) -> MosPolarity {
        self.params.polarity
    }

    /// Drain current and its derivatives at the given terminal voltages:
    /// `(i_d, ∂i_d/∂v_g, ∂i_d/∂v_d, ∂i_d/∂v_s)`, with `i_d` flowing into
    /// the drain terminal.
    pub fn drain_current(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64, f64) {
        let s = self.params.polarity.sign();
        // Reflect to NMOS voltages.
        let vgs = s * (vg - vs);
        let vds = s * (vd - vs);
        let (i, gm, gds) = ids_symmetric(vgs, vds, &self.params, self.beta);
        // Reflect back: i_drain = s·i; ∂(s·i)/∂v_g = s·gm·s = gm, etc.
        let id = s * i;
        let did_dvg = gm;
        let did_dvd = gds;
        let did_dvs = -(gm + gds);
        (id, did_dvg, did_dvd, did_dvs)
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let vd = ctx.voltage(self.drain);
        let vg = ctx.voltage(self.gate);
        let vs = ctx.voltage(self.source);
        let (id, gm, gds, gs_) = self.drain_current(vd, vg, vs);

        let (ed, eg, es) = (
            self.drain.unknown(),
            self.gate.unknown(),
            self.source.unknown(),
        );

        // Channel current: into drain, out of source.
        stamper.add_f(ed, id);
        stamper.add_f(es, -id);
        stamper.add_g(ed, eg, gm);
        stamper.add_g(ed, ed, gds);
        stamper.add_g(ed, es, gs_);
        stamper.add_g(es, eg, -gm);
        stamper.add_g(es, ed, -gds);
        stamper.add_g(es, es, -gs_);

        // Constant capacitances: gate-source, gate-drain, junctions to
        // ground (body tied to a DC rail; any rail is equivalent for
        // small-signal dynamics of linear caps).
        let qgs = self.cgs * (vg - vs);
        stamper.add_q(eg, qgs);
        stamper.add_q(es, -qgs);
        stamper.stamp_capacitance(eg, es, self.cgs);

        let qgd = self.cgd * (vg - vd);
        stamper.add_q(eg, qgd);
        stamper.add_q(ed, -qgd);
        stamper.stamp_capacitance(eg, ed, self.cgd);

        stamper.add_q(ed, self.cdb * vd);
        stamper.stamp_capacitance(ed, None, self.cdb);
        stamper.add_q(es, self.csb * vs);
        stamper.stamp_capacitance(es, None, self.csb);
    }

    fn batch_spec(&self) -> Option<crate::batch::DeviceSpec> {
        Some(crate::batch::DeviceSpec::Mosfet(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        let mut c = crate::Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        Mosfet::new("M", d, g, s, MosParams::nmos_250nm(), 1e-6, 0.25e-6)
    }

    fn pmos() -> Mosfet {
        let mut c = crate::Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        Mosfet::new("M", d, g, s, MosParams::pmos_250nm(), 2e-6, 0.25e-6)
    }

    #[test]
    fn softplus_limits_and_derivative() {
        let (v, d) = softplus(1.0, 0.01);
        assert!((v - 1.0).abs() < 1e-4);
        assert!((d - 1.0).abs() < 1e-3);
        let (v, d) = softplus(-1.0, 0.01);
        assert!(v.abs() < 1e-4);
        assert!(d.abs() < 1e-3);
        let (v, d) = softplus(0.0, 0.01);
        assert!((v - 0.005).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nmos_regions() {
        let m = nmos();
        // Cutoff: vgs = 0 → essentially no current.
        let (id, ..) = m.drain_current(2.5, 0.0, 0.0);
        assert!(id.abs() < 1e-6, "cutoff leakage {id}");
        // Saturation: vgs = 2.5, vds = 2.5 > vov.
        let (id_sat, ..) = m.drain_current(2.5, 2.5, 0.0);
        let beta = 120e-6 * 4.0;
        let expect = 0.5 * beta * (2.5f64 - 0.43).powi(2) * (1.0 + 0.06 * 2.5);
        assert!(
            (id_sat - expect).abs() < 0.05 * expect,
            "sat current {id_sat} vs {expect}"
        );
        // Triode: small vds → roughly linear.
        let (id_tri, ..) = m.drain_current(0.05, 2.5, 0.0);
        let g_on = beta * (2.5 - 0.43);
        assert!((id_tri - g_on * 0.05).abs() < 0.1 * id_tri.abs() + 1e-6);
        assert!(id_tri < id_sat);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let m = pmos();
        // PMOS with source at 2.5, gate at 0 (on), drain at 0: current flows
        // source→drain, i.e. *into* the drain terminal is negative? The
        // drain current convention is current into the drain node; for PMOS
        // pulling the drain up, conventional current flows from source (2.5V)
        // to drain, so i_d (into drain) is negative.
        let (id, ..) = m.drain_current(0.0, 0.0, 2.5);
        assert!(id < -1e-5, "pmos on-current {id}");
        // Off when gate at 2.5.
        let (id_off, ..) = m.drain_current(0.0, 2.5, 2.5);
        assert!(id_off.abs() < 1e-6);
    }

    #[test]
    fn drain_source_symmetry() {
        let m = nmos();
        // Swapping drain and source voltages negates the current.
        let (i1, ..) = m.drain_current(1.0, 2.0, 0.3);
        let (i2, ..) = m.drain_current(0.3, 2.0, 1.0);
        assert!(
            (i1 + i2).abs() < 1e-6 * i1.abs().max(1e-12),
            "i1 = {i1}, i2 = {i2}"
        );
        // Zero vds → zero current.
        let (i0, ..) = m.drain_current(0.7, 2.0, 0.7);
        assert!(i0.abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for m in [nmos(), pmos()] {
            let cases = [
                (2.5, 2.5, 0.0),
                (0.05, 2.5, 0.0),
                (1.0, 1.0, 0.2),
                (0.3, 2.0, 1.0),  // reverse region for nmos after reflection
                (2.5, 0.0, 0.0),  // cutoff
                (1.2, 0.45, 0.0), // near threshold
                (2.07, 2.5, 0.0), // near saturation corner (vov ≈ 2.07)
                (0.0, 0.0, 2.5),
                (2.5, 0.0, 2.5),
            ];
            let h = 1e-7;
            for &(vd, vg, vs) in &cases {
                let (_, dg, dd, ds) = m.drain_current(vd, vg, vs);
                let fd_g = (m.drain_current(vd, vg + h, vs).0 - m.drain_current(vd, vg - h, vs).0)
                    / (2.0 * h);
                let fd_d = (m.drain_current(vd + h, vg, vs).0 - m.drain_current(vd - h, vg, vs).0)
                    / (2.0 * h);
                let fd_s = (m.drain_current(vd, vg, vs + h).0 - m.drain_current(vd, vg, vs - h).0)
                    / (2.0 * h);
                let scale = fd_g.abs().max(fd_d.abs()).max(fd_s.abs()).max(1e-9);
                assert!(
                    (dg - fd_g).abs() < 1e-4 * scale,
                    "{:?} at ({vd},{vg},{vs}): gm {dg} vs fd {fd_g}",
                    m.params.polarity
                );
                assert!(
                    (dd - fd_d).abs() < 1e-4 * scale,
                    "{:?} at ({vd},{vg},{vs}): gds {dd} vs fd {fd_d}",
                    m.params.polarity
                );
                assert!(
                    (ds - fd_s).abs() < 1e-4 * scale,
                    "{:?} at ({vd},{vg},{vs}): gs {ds} vs fd {fd_s}",
                    m.params.polarity
                );
            }
        }
    }

    #[test]
    fn current_is_continuous_across_vds_zero() {
        let m = nmos();
        let (im, ..) = m.drain_current(-1e-9, 2.0, 0.0);
        let (ip, ..) = m.drain_current(1e-9, 2.0, 0.0);
        assert!((ip - im).abs() < 1e-9);
    }

    #[test]
    fn kcl_stamp_balances() {
        // Sum of current stamps across all terminals must vanish (KCL):
        // whatever enters the drain leaves the source.
        let mut c = crate::Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        c.add(Mosfet::new(
            "M",
            d,
            g,
            s,
            MosParams::nmos_250nm(),
            1e-6,
            0.25e-6,
        ));
        let x = shc_linalg::Vector::from_slice(&[1.7, 2.2, 0.1]);
        let st = c.assemble(&x, 0.0, &crate::waveform::Params::default(), 1.0);
        let total: f64 = st.f.iter().sum();
        assert!(total.abs() < 1e-12, "KCL violated: {total}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_geometry() {
        let mut c = crate::Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        let _ = Mosfet::new("M", d, g, s, MosParams::nmos_250nm(), -1e-6, 0.25e-6);
    }
}
