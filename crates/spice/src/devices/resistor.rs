use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// A linear resistor.
///
/// Stamps the conductance `1/R` between its two terminals.
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Resistor};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Resistor::new("R1", a, Circuit::GROUND, 10e3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    name: String,
    a: Node,
    b: Node,
    resistance: f64,
}

impl Resistor {
    /// Creates a resistor of `resistance` ohms between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `resistance` is not positive and finite.
    pub fn new(name: &str, a: Node, b: Node, resistance: f64) -> Self {
        assert!(
            resistance.is_finite() && resistance > 0.0,
            "resistor {name}: resistance must be positive and finite, got {resistance}"
        );
        Resistor {
            name: name.to_string(),
            a,
            b,
            resistance,
        }
    }

    /// Resistance in ohms.
    pub fn resistance(&self) -> f64 {
        self.resistance
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let g = 1.0 / self.resistance;
        let (ea, eb) = (self.a.unknown(), self.b.unknown());
        let v = ctx.voltage(self.a) - ctx.voltage(self.b);
        let i = g * v;
        stamper.add_f(ea, i);
        stamper.add_f(eb, -i);
        stamper.stamp_conductance(ea, eb, g);
    }

    fn batch_spec(&self) -> Option<crate::batch::DeviceSpec> {
        Some(crate::batch::DeviceSpec::Resistor {
            a: self.a,
            b: self.b,
            resistance: self.resistance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Params;
    use crate::Circuit;
    use shc_linalg::Vector;

    #[test]
    fn stamps_ohms_law() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R", a, Circuit::GROUND, 2.0));
        let x = Vector::from_slice(&[4.0]);
        let s = c.assemble(&x, 0.0, &Params::default(), 1.0);
        assert_eq!(s.f[0], 2.0); // 4V across 2 ohm = 2A out of node a
        assert_eq!(s.g[(0, 0)], 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let _ = Resistor::new("R", a, Circuit::GROUND, 0.0);
    }
}
