//! Linear controlled sources: VCVS (`E`) and VCCS (`G`), in SPICE letters.
//!
//! These are handy for behavioural modelling around a cell under test —
//! ideal clock buffers, gain blocks for waveform shaping, and test
//! fixtures — and exercise the MNA machinery's branch-equation path.

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// Voltage-controlled voltage source: `v(p, n) = gain · v(cp, cn)`.
///
/// Uses one branch-current unknown, like an independent voltage source.
#[derive(Debug, Clone, PartialEq)]
pub struct Vcvs {
    name: String,
    p: Node,
    n: Node,
    cp: Node,
    cn: Node,
    gain: f64,
    branch: usize,
}

impl Vcvs {
    /// Creates a VCVS with output `(p, n)` controlled by `(cp, cn)`.
    pub fn new(name: &str, p: Node, n: Node, cp: Node, cn: Node, gain: f64) -> Self {
        Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
            branch: usize::MAX,
        }
    }

    /// Voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Device for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn set_branch_start(&mut self, start: usize) {
        self.branch = start;
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        debug_assert_ne!(self.branch, usize::MAX, "vcvs not added to a circuit");
        let (ep, en) = (self.p.unknown(), self.n.unknown());
        let (ecp, ecn) = (self.cp.unknown(), self.cn.unknown());
        let br = Some(ctx.branch_index(self.branch));
        let i = ctx.branch_current(self.branch);

        stamper.add_f(ep, i);
        stamper.add_f(en, -i);
        stamper.add_g(ep, br, 1.0);
        stamper.add_g(en, br, -1.0);

        // Branch equation: v_p − v_n − gain·(v_cp − v_cn) = 0.
        let residual = ctx.voltage(self.p)
            - ctx.voltage(self.n)
            - self.gain * (ctx.voltage(self.cp) - ctx.voltage(self.cn));
        stamper.add_f(br, residual);
        stamper.add_g(br, ep, 1.0);
        stamper.add_g(br, en, -1.0);
        stamper.add_g(br, ecp, -self.gain);
        stamper.add_g(br, ecn, self.gain);
    }
}

/// Voltage-controlled current source: `i(p→n) = gm · v(cp, cn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vccs {
    name: String,
    p: Node,
    n: Node,
    cp: Node,
    cn: Node,
    gm: f64,
}

impl Vccs {
    /// Creates a VCCS drawing `gm·v(cp,cn)` out of `p` into `n`.
    pub fn new(name: &str, p: Node, n: Node, cp: Node, cn: Node, gm: f64) -> Self {
        Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        }
    }

    /// Transconductance in siemens.
    pub fn gm(&self) -> f64 {
        self.gm
    }
}

impl Device for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let (ep, en) = (self.p.unknown(), self.n.unknown());
        let (ecp, ecn) = (self.cp.unknown(), self.cn.unknown());
        let vc = ctx.voltage(self.cp) - ctx.voltage(self.cn);
        let i = self.gm * vc;
        stamper.add_f(ep, i);
        stamper.add_f(en, -i);
        stamper.add_g(ep, ecp, self.gm);
        stamper.add_g(ep, ecn, -self.gm);
        stamper.add_g(en, ecp, -self.gm);
        stamper.add_g(en, ecn, self.gm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcop::{solve_dc, DcOptions};
    use crate::devices::{Resistor, VoltageSource};
    use crate::waveform::{Params, Waveform};
    use crate::Circuit;

    #[test]
    fn vcvs_amplifies_dc() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::dc(0.5),
        ));
        c.add(Vcvs::new(
            "E1",
            vout,
            Circuit::GROUND,
            vin,
            Circuit::GROUND,
            4.0,
        ));
        c.add(Resistor::new("RL", vout, Circuit::GROUND, 1e3));
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let v = sol.x[c.unknown_of(vout).unwrap()];
        assert!((v - 2.0).abs() < 1e-9, "vcvs output {v}");
    }

    #[test]
    fn vccs_injects_proportional_current() {
        // VCCS with gm = 1 mS driving a 1k load from a 1 V control: the
        // current out of p is 1 mA, so the load at n rises to +1 V.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Vccs::new(
            "G1",
            Circuit::GROUND,
            vout,
            vin,
            Circuit::GROUND,
            1e-3,
        ));
        c.add(Resistor::new("RL", vout, Circuit::GROUND, 1e3));
        let sol = solve_dc(&c, &Params::default(), &DcOptions::default()).unwrap();
        let v = sol.x[c.unknown_of(vout).unwrap()];
        assert!((v - 1.0).abs() < 1e-9, "vccs load voltage {v}");
    }

    #[test]
    fn vcvs_branch_bookkeeping() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Vcvs::new("E1", a, Circuit::GROUND, b, Circuit::GROUND, 2.0));
        c.add(Resistor::new("R1", a, b, 1e3));
        c.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
        assert_eq!(c.branch_count(), 1);
        assert_eq!(c.unknown_count(), 3);
        c.validate().unwrap();
    }
}
