use shc_linalg::Vector;

use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::waveform::{Param, Waveform};
use crate::Node;

/// An independent voltage source with an arbitrary [`Waveform`].
///
/// Uses the standard MNA formulation with one branch-current unknown:
/// KCL rows receive `±i_branch`, and the branch row enforces
/// `v_p − v_n − V(t) = 0`.
///
/// When the waveform is a [`Waveform::Data`] pulse, the source contributes
/// `−∂V/∂τ` to the sensitivity right-hand side — this is exactly the
/// `b_d · z(t)` term of the paper's eqs. (9)–(13).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    name: String,
    p: Node,
    n: Node,
    waveform: Waveform,
    branch: usize,
}

impl VoltageSource {
    /// Creates a voltage source from `p` (+) to `n` (−) with `waveform`.
    pub fn new(name: &str, p: Node, n: Node, waveform: Waveform) -> Self {
        VoltageSource {
            name: name.to_string(),
            p,
            n,
            waveform,
            branch: usize::MAX,
        }
    }

    /// The source waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }
}

impl Device for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn set_branch_start(&mut self, start: usize) {
        self.branch = start;
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        debug_assert_ne!(
            self.branch,
            usize::MAX,
            "voltage source not added to a circuit"
        );
        let (ep, en) = (self.p.unknown(), self.n.unknown());
        let br = Some(ctx.branch_index(self.branch));
        let i = ctx.branch_current(self.branch);
        let v = self.waveform.value(ctx.t, ctx.params) * ctx.source_scale;

        // KCL: branch current leaves the + terminal.
        stamper.add_f(ep, i);
        stamper.add_f(en, -i);
        stamper.add_g(ep, br, 1.0);
        stamper.add_g(en, br, -1.0);

        // Branch equation: v_p − v_n − V(t) = 0.
        stamper.add_f(br, ctx.voltage(self.p) - ctx.voltage(self.n) - v);
        stamper.add_g(br, ep, 1.0);
        stamper.add_g(br, en, -1.0);
    }

    fn stamp_param_derivative(&self, dfdp: &mut Vector, ctx: &EvalContext<'_>, param: Param) {
        let dv = self.waveform.derivative(ctx.t, ctx.params, param);
        if dv != 0.0 {
            dfdp[ctx.branch_index(self.branch)] -= dv * ctx.source_scale;
        }
    }

    fn batch_spec(&self) -> Option<crate::batch::DeviceSpec> {
        Some(crate::batch::DeviceSpec::VoltageSource {
            p: self.p,
            n: self.n,
            branch: self.branch,
            waveform: self.waveform.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::{DataPulse, Params, RampShape};
    use crate::Circuit;

    #[test]
    fn branch_equation_enforces_voltage() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(3.0),
        ));
        // x = [v_a, i_branch]
        let x = Vector::from_slice(&[3.0, 0.25]);
        let s = c.assemble(&x, 0.0, &Params::default(), 1.0);
        // KCL at a: +i = 0.25; branch eq: 3 - 3 = 0.
        assert_eq!(s.f[0], 0.25);
        assert_eq!(s.f[1], 0.0);
        assert_eq!(s.g[(0, 1)], 1.0);
        assert_eq!(s.g[(1, 0)], 1.0);
    }

    #[test]
    fn source_scale_scales_value_and_derivative() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(4.0),
        ));
        let x = Vector::zeros(2);
        let s = c.assemble(&x, 0.0, &Params::default(), 0.5);
        assert_eq!(s.f[1], -2.0); // 0 − 0 − 4·0.5
    }

    #[test]
    fn data_source_contributes_sensitivity_rhs() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let pulse = DataPulse {
            v_rest: 0.0,
            v_active: 2.5,
            t_edge: 10e-9,
            rise: 1e-9,
            fall: 1e-9,
            shape: RampShape::Smoothstep,
        };
        c.add(VoltageSource::new(
            "Vd",
            d,
            Circuit::GROUND,
            Waveform::Data(pulse),
        ));
        let params = Params::new(2e-9, 2e-9);
        // Mid leading edge: t = t_edge − τs = 8 ns.
        let dfdp = c.assemble_dfdp(8e-9, &params, Param::Setup);
        let expected = -pulse.derivative(8e-9, &params, Param::Setup);
        assert!(
            (dfdp[1] - expected).abs() < 1e-12,
            "dfdp = {}, expected {expected}",
            dfdp[1]
        );
        assert!(dfdp[1] != 0.0);
        // A DC source has no parameter dependence.
        let dfdp_hold = c.assemble_dfdp(0.0, &params, Param::Hold);
        assert_eq!(dfdp_hold[1], 0.0);
    }
}
