use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// A linear capacitor.
///
/// Stamps the charge `C·(v_a − v_b)` into `q` and the capacitance into the
/// `C` Jacobian; it contributes nothing to `f` (the integrator
/// differentiates `q`).
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    name: String,
    a: Node,
    b: Node,
    /// unit: F
    capacitance: f64,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance` farads between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is not positive and finite.
    pub fn new(name: &str, a: Node, b: Node, capacitance: f64) -> Self {
        assert!(
            capacitance.is_finite() && capacitance > 0.0,
            "capacitor {name}: capacitance must be positive and finite, got {capacitance}"
        );
        Capacitor {
            name: name.to_string(),
            a,
            b,
            capacitance,
        }
    }

    /// Capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        let (ea, eb) = (self.a.unknown(), self.b.unknown());
        let v = ctx.voltage(self.a) - ctx.voltage(self.b);
        let q = self.capacitance * v;
        stamper.add_q(ea, q);
        stamper.add_q(eb, -q);
        stamper.stamp_capacitance(ea, eb, self.capacitance);
    }

    fn batch_spec(&self) -> Option<crate::batch::DeviceSpec> {
        Some(crate::batch::DeviceSpec::Capacitor {
            a: self.a,
            b: self.b,
            capacitance: self.capacitance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Params;
    use crate::Circuit;
    use shc_linalg::Vector;

    #[test]
    fn stamps_charge_and_c_matrix() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Capacitor::new("C", a, b, 1e-12));
        let x = Vector::from_slice(&[2.0, 0.5]);
        let s = c.assemble(&x, 0.0, &Params::default(), 1.0);
        assert!((s.q[0] - 1.5e-12).abs() < 1e-24);
        assert!((s.q[1] + 1.5e-12).abs() < 1e-24);
        assert_eq!(s.c[(0, 0)], 1e-12);
        assert_eq!(s.c[(0, 1)], -1e-12);
        assert_eq!(s.f.norm_inf(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_capacitance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let _ = Capacitor::new("C", a, Circuit::GROUND, -1e-12);
    }
}
