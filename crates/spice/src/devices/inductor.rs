use crate::devices::Device;
use crate::stamp::{EvalContext, Stamper};
use crate::Node;

/// A linear inductor.
///
/// Uses one branch-current unknown `i`. The flux `L·i` lives in the charge
/// vector on the branch row, and the branch equation enforces
/// `d/dt (L·i) = v_a − v_b`:
///
/// ```text
/// KCL rows:   f[a] += i,  f[b] -= i
/// branch row: q[br] = L·i,  f[br] = -(v_a - v_b)
/// ```
///
/// # Example
///
/// ```rust
/// use shc_spice::{Circuit, Inductor};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Inductor::new("L1", a, Circuit::GROUND, 1e-9));
/// assert_eq!(ckt.branch_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Inductor {
    name: String,
    a: Node,
    b: Node,
    inductance: f64,
    branch: usize,
}

impl Inductor {
    /// Creates an inductor of `inductance` henries between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `inductance` is not positive and finite.
    pub fn new(name: &str, a: Node, b: Node, inductance: f64) -> Self {
        assert!(
            inductance.is_finite() && inductance > 0.0,
            "inductor {name}: inductance must be positive and finite, got {inductance}"
        );
        Inductor {
            name: name.to_string(),
            a,
            b,
            inductance,
            branch: usize::MAX,
        }
    }

    /// Inductance in henries.
    pub fn inductance(&self) -> f64 {
        self.inductance
    }
}

impl Device for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn set_branch_start(&mut self, start: usize) {
        self.branch = start;
    }

    fn stamp(&self, stamper: &mut Stamper<'_>, ctx: &EvalContext<'_>) {
        debug_assert_ne!(self.branch, usize::MAX, "inductor not added to a circuit");
        let (ea, eb) = (self.a.unknown(), self.b.unknown());
        let br = Some(ctx.branch_index(self.branch));
        let i = ctx.branch_current(self.branch);

        stamper.add_f(ea, i);
        stamper.add_f(eb, -i);
        stamper.add_g(ea, br, 1.0);
        stamper.add_g(eb, br, -1.0);

        // Branch: d/dt (L·i) − (v_a − v_b) = 0.
        stamper.add_q(br, self.inductance * i);
        stamper.add_c(br, br, self.inductance);
        stamper.add_f(br, -(ctx.voltage(self.a) - ctx.voltage(self.b)));
        stamper.add_g(br, ea, -1.0);
        stamper.add_g(br, eb, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, VoltageSource};
    use crate::transient::{InitialCondition, Integrator, TransientAnalysis, TransientOptions};
    use crate::waveform::{Params, Waveform};
    use crate::Circuit;
    use shc_linalg::Vector;

    /// A parallel LC tank, started with the capacitor charged.
    fn lc_tank() -> (Circuit, usize, usize, f64, f64) {
        let mut c = Circuit::new();
        let top = c.node("top");
        let l = 1e-6;
        let cap = 1e-9;
        c.add(Inductor::new("L1", top, Circuit::GROUND, l));
        c.add(Capacitor::new("C1", top, Circuit::GROUND, cap));
        let v_idx = c.unknown_of(top).unwrap();
        let i_idx = c.branch_unknown(0);
        (c, v_idx, i_idx, l, cap)
    }

    #[test]
    fn lc_oscillates_at_the_analytic_frequency() {
        let (c, v_idx, _, l, cap) = lc_tank();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt()); // ≈ 5.03 MHz
        let period = 1.0 / f0;
        let mut x0 = Vector::zeros(c.unknown_count());
        x0[v_idx] = 1.0;
        let opts = TransientOptions::builder(3.0 * period)
            .dt(period / 400.0)
            .integrator(Integrator::Trapezoidal)
            .initial(InitialCondition::Given(x0))
            .build();
        let res = TransientAnalysis::new(&c, opts)
            .run(&Params::default())
            .unwrap();
        // Count zero crossings of the voltage: 2 per period.
        use crate::transient::CrossingDirection;
        let mut crossings = 0;
        let mut t = 0.0;
        while let Some(tc) = res.crossing_time(v_idx, 0.0, t, CrossingDirection::Any) {
            crossings += 1;
            t = tc + period / 100.0;
        }
        assert!(
            (5..=7).contains(&crossings),
            "expected ~6 zero crossings over 3 periods, got {crossings}"
        );
    }

    #[test]
    fn trapezoidal_conserves_lc_energy() {
        // E = C·v²/2 + L·i²/2 must be (nearly) conserved by TRAP, and must
        // decay under BE (numerical damping) — a classic integrator litmus.
        let (c, v_idx, i_idx, l, cap) = lc_tank();
        let period = 2.0 * std::f64::consts::PI * (l * cap).sqrt();
        let energy = |v: f64, i: f64| 0.5 * cap * v * v + 0.5 * l * i * i;
        let mut drift = Vec::new();
        for method in [Integrator::Trapezoidal, Integrator::BackwardEuler] {
            let mut x0 = Vector::zeros(c.unknown_count());
            x0[v_idx] = 1.0;
            let opts = TransientOptions::builder(5.0 * period)
                .dt(period / 200.0)
                .integrator(method)
                .initial(InitialCondition::Given(x0))
                .build();
            let res = TransientAnalysis::new(&c, opts)
                .run(&Params::default())
                .unwrap();
            let x = res.final_state();
            drift.push(energy(x[v_idx], x[i_idx]) / energy(1.0, 0.0));
        }
        let (trap, be) = (drift[0], drift[1]);
        assert!((trap - 1.0).abs() < 0.02, "TRAP energy ratio {trap}");
        assert!(be < 0.6, "BE should damp the tank, energy ratio {be}");
    }

    #[test]
    fn dc_inductor_is_a_short() {
        // V -- R -- L to ground: at DC the inductor carries V/R with no drop.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(1.0),
        ));
        c.add(Resistor::new("R1", a, b, 1e3));
        c.add(Inductor::new("L1", b, Circuit::GROUND, 1e-6));
        let sol = crate::dcop::solve_dc(&c, &Params::default(), &crate::dcop::DcOptions::default())
            .unwrap();
        let vb = sol.x[c.unknown_of(b).unwrap()];
        assert!(
            vb.abs() < 1e-6,
            "inductor should look like a short at DC, v = {vb}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_inductance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let _ = Inductor::new("L", a, Circuit::GROUND, 0.0);
    }
}
