//! FIG 9 / FIG 1(a): brute-force output-surface generation for the TSPC
//! register (the prior-art baseline), plus the marching-squares contour
//! extraction of FIG 10.
//!
//! The surface cost scales as n²; a reduced grid keeps the bench under a
//! minute while still exposing the scaling against `fig8_tspc_contour`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::{surface, SurfaceOptions};

fn bench_fig9(c: &mut Criterion) {
    let problem = Cell::Tspc.problem(Timing::Fast).expect("fixture");
    let contour = problem.trace_contour(8).expect("contour for grid bounds");

    let mut group = c.benchmark_group("fig9_surface");
    group.sample_size(10);

    for n in [6usize, 10] {
        let grid = SurfaceOptions::around_contour(&contour, n);
        group.bench_with_input(BenchmarkId::new("generate", n), &grid, |b, grid| {
            b.iter(|| surface::generate(&problem, grid).expect("surface"))
        });
    }

    // Contour extraction alone (post-processing cost of the baseline).
    let grid = SurfaceOptions::around_contour(&contour, 10);
    let surf = surface::generate(&problem, &grid).expect("surface");
    let r = problem.r();
    group.bench_function("contour_extraction_10x10", |b| {
        b.iter(|| surf.contour_at(r))
    });

    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
