//! Telemetry overhead bench: the same short TSPC contour trace with no
//! collector, with a counting collector, and with a journaling collector.
//!
//! The observability layer's contract (DESIGN.md §8) is that every
//! instrumentation site hides behind a thread-local `enabled()` check and
//! the transient stepper flushes per *run*, not per step — so the "off"
//! and "on" columns here should be indistinguishable within noise, and
//! the journaling column should add only the per-contour-point event
//! cost. Contours are asserted identical across all three modes before
//! timing.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::{Contour, SeedOptions, TracerOptions};
use shc_obs::{Collector, MemorySink, Sink};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let problem = Cell::Tspc.problem(Timing::Fast).expect("fixture");
    let seed =
        shc_core::seed::find_first_point(&problem, &SeedOptions::default()).expect("seed point");
    let trace = || -> Contour {
        shc_core::tracer::trace(&problem, seed.params, 6, &TracerOptions::default()).expect("trace")
    };

    // Correctness gate: telemetry must not perturb the numerics.
    let quiet = trace();
    {
        let collector = Collector::new();
        let _guard = shc_obs::install_scoped(&collector);
        assert_eq!(quiet, trace(), "counting collector changed the contour");
    }
    {
        let collector = Collector::with_sink(Arc::new(MemorySink::new()) as Arc<dyn Sink>);
        let _guard = shc_obs::install_scoped(&collector);
        assert_eq!(quiet, trace(), "journaling collector changed the contour");
    }

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("trace_6pt_off", |b| b.iter(trace));
    group.bench_function("trace_6pt_counters", |b| {
        let collector = Collector::new();
        let _guard = shc_obs::install_scoped(&collector);
        b.iter(trace)
    });
    group.bench_function("trace_6pt_journal", |b| {
        let sink = Arc::new(MemorySink::new());
        let collector = Collector::with_sink(Arc::clone(&sink) as Arc<dyn Sink>);
        let _guard = shc_obs::install_scoped(&collector);
        b.iter(|| {
            sink.drain();
            trace()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
