//! Microbenchmarks of the numerical primitives underneath every transient
//! step: MNA assembly, LU factorization + solve, one DC operating point,
//! and one full h-evaluation transient. Useful for tracking regressions in
//! the per-simulation cost that all speedup ratios are built on.

use criterion::{criterion_group, criterion_main, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::CharacterizationProblem;
use shc_linalg::Vector;
use shc_spice::dcop::{self, DcOptions};
use shc_spice::stamp::Stamps;
use shc_spice::waveform::Params;

fn bench_primitives(c: &mut Criterion) {
    let register = Cell::Tspc.register(Timing::Fast);
    let circuit = register.circuit();
    let n = circuit.unknown_count();
    let params = Params::new(300e-12, 200e-12);
    let x = Vector::filled(n, 1.0);

    let mut group = c.benchmark_group("primitives");

    group.bench_function("mna_assemble", |b| {
        let mut ws = Stamps::new(n);
        b.iter(|| circuit.assemble_into(&mut ws, &x, 3.3e-9, &params, 1.0))
    });

    group.bench_function("lu_factor_solve", |b| {
        let stamps = circuit.assemble(&x, 3.3e-9, &params, 1.0);
        let jac = shc_spice::Circuit::combine_jacobian(&stamps.c, &stamps.g, 1.0 / 4e-12)
            .expect("C and G share the MNA shape");
        let rhs = Vector::filled(n, 1e-3);
        b.iter(|| {
            let lu = jac.lu().expect("factorizes");
            lu.solve(&rhs).expect("solves")
        })
    });

    group.bench_function("dc_operating_point", |b| {
        b.iter(|| dcop::solve_dc(circuit, &params, &DcOptions::default()).expect("solves"))
    });

    group.sample_size(10);
    group.bench_function("full_h_evaluation", |b| {
        let problem = CharacterizationProblem::builder(Cell::Tspc.register(Timing::Fast))
            .build()
            .expect("problem");
        b.iter(|| problem.evaluate(&params).expect("simulates"))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
