//! Ablation: Euler predictor step length α (DESIGN.md's tracer design
//! choice). Short steps waste corrector calls; long steps leave the MPNR
//! convergence basin and trigger step halving. The adaptive default should
//! sit near the sweet spot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::{seed, tracer, SeedOptions, TracerOptions};

fn bench_step_lengths(c: &mut Criterion) {
    let problem = Cell::Tspc.problem(Timing::Fast).expect("fixture");
    let first = seed::find_first_point(&problem, &SeedOptions::default()).expect("seed");

    let mut group = c.benchmark_group("ablation_tracer_step");
    group.sample_size(10);

    for alpha_ps in [2.0_f64, 10.0, 40.0] {
        let opts = TracerOptions {
            alpha: alpha_ps * 1e-12,
            alpha_min: 0.25e-12,
            alpha_max: alpha_ps * 1e-12, // pin the step: no adaptation upward
            ..TracerOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("fixed_alpha_ps", alpha_ps as u64),
            &opts,
            |b, opts| b.iter(|| tracer::trace(&problem, first.params, 12, opts).expect("traces")),
        );
    }

    group.bench_function("adaptive_default", |b| {
        b.iter(|| {
            tracer::trace(&problem, first.params, 12, &TracerOptions::default()).expect("traces")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_step_lengths);
criterion_main!(benches);
