//! TBL-INDEP (paper Sec. III-B / ref \[6\], Fig. 7): independent setup-time
//! characterization by industry-practice binary search versus
//! sensitivity-based scalar Newton (warm-started, as in a PVT-corner sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::independent::{binary_search, newton, IndependentOptions, SkewAxis};

fn bench_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("independent_char");
    group.sample_size(10);

    for cell in Cell::PAPER {
        let problem = cell.problem(Timing::Fast).expect("fixture");
        let opts = IndependentOptions {
            tol: 0.1e-12,
            ..IndependentOptions::default()
        };
        // Reference value for the warm start.
        let setup = binary_search(&problem, SkewAxis::Setup, &opts)
            .expect("bisection")
            .skew;

        group.bench_with_input(
            BenchmarkId::new("binary_search", cell.name()),
            &opts,
            |b, opts| b.iter(|| binary_search(&problem, SkewAxis::Setup, opts).expect("solves")),
        );

        let warm = IndependentOptions {
            initial_guess: Some(setup * 0.85),
            ..opts
        };
        group.bench_with_input(
            BenchmarkId::new("newton_warm", cell.name()),
            &warm,
            |b, warm| b.iter(|| newton(&problem, SkewAxis::Setup, warm).expect("solves")),
        );

        group.bench_with_input(
            BenchmarkId::new("newton_cold", cell.name()),
            &opts,
            |b, opts| b.iter(|| newton(&problem, SkewAxis::Setup, opts).expect("solves")),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_independent);
criterion_main!(benches);
