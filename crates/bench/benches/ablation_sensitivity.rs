//! Ablation: forward vs adjoint sensitivity analysis for the h-Jacobian.
//!
//! Forward sensitivities (the paper's choice, eqs. (9)-(13)) cost one extra
//! solve per step per parameter but need no state storage; the discrete
//! adjoint costs one transposed solve per step total plus a re-stamping
//! backward sweep over the recorded trajectory. For the 2-parameter
//! setup/hold problem the forward method should win; the adjoint becomes
//! attractive for many-parameter extensions.

use criterion::{criterion_group, criterion_main, Criterion};
use shc_bench::{Cell, Timing};
use shc_spice::adjoint;
use shc_spice::transient::{RecordMode, TransientAnalysis, TransientOptions};
use shc_spice::waveform::{Param, Params};

fn bench_sensitivity_methods(c: &mut Criterion) {
    let register = Cell::Tspc.register(Timing::Fast);
    let tstop = register.active_edge_time() + 0.3e-9;
    let params = Params::new(300e-12, 200e-12);
    let out = register.output_unknown();

    let mut group = c.benchmark_group("ablation_sensitivity");
    group.sample_size(10);

    group.bench_function("forward_2_params", |b| {
        let opts = TransientOptions::builder(tstop)
            .dt(4e-12)
            .sensitivities(&Param::ALL)
            .record(RecordMode::FinalOnly)
            .build();
        b.iter(|| {
            TransientAnalysis::new(register.circuit(), opts.clone())
                .run(&params)
                .expect("simulates")
        })
    });

    group.bench_function("adjoint_2_params", |b| {
        let opts = TransientOptions::builder(tstop)
            .dt(4e-12)
            .record(RecordMode::Full)
            .build();
        b.iter(|| {
            let res = TransientAnalysis::new(register.circuit(), opts.clone())
                .run(&params)
                .expect("simulates");
            adjoint::backward_sensitivities(register.circuit(), &res, &params, out, &Param::ALL)
                .expect("adjoint")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sensitivity_methods);
criterion_main!(benches);
