//! FIG 8: Euler-Newton tracing of the TSPC constant clock-to-Q contour.
//!
//! Measures the cost of the headline operation — seeding plus a full
//! contour trace — and of its building blocks (one `h` evaluation with and
//! without sensitivities). Uses the compressed clock; run the `experiments`
//! binary for the paper-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use shc_bench::{Cell, Timing};
use shc_spice::waveform::Params;

fn bench_fig8(c: &mut Criterion) {
    let problem = Cell::Tspc.problem(Timing::Fast).expect("fixture");
    let mut group = c.benchmark_group("fig8_tspc");
    group.sample_size(10);

    group.bench_function("h_evaluation", |b| {
        b.iter(|| {
            problem
                .evaluate(&Params::new(300e-12, 200e-12))
                .expect("simulates")
        })
    });

    group.bench_function("h_with_jacobian", |b| {
        b.iter(|| {
            problem
                .evaluate_with_jacobian(&Params::new(300e-12, 200e-12))
                .expect("simulates")
        })
    });

    group.bench_function("trace_contour_20pts", |b| {
        b.iter(|| problem.trace_contour(20).expect("traces"))
    });

    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
