//! TBL-SPEEDUP: Euler-Newton trace versus brute-force surface at matched
//! contour resolution, for both paper cells. The paper reports ~26x at
//! n = 40; this bench exposes the same trace-vs-surface gap at a reduced n
//! (the ratio grows linearly with n, so the paper's scale follows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::{surface, SurfaceOptions};

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_table");
    group.sample_size(10);

    for cell in Cell::PAPER {
        let problem = cell.problem(Timing::Fast).expect("fixture");
        let n = 10usize;

        group.bench_with_input(
            BenchmarkId::new("euler_newton_trace", cell.name()),
            &n,
            |b, &n| b.iter(|| problem.trace_contour(n).expect("traces")),
        );

        let contour = problem.trace_contour(n).expect("grid bounds");
        let grid = SurfaceOptions::around_contour(&contour, n);
        group.bench_with_input(
            BenchmarkId::new("surface_nxn", cell.name()),
            &grid,
            |b, grid| b.iter(|| surface::generate(&problem, grid).expect("surface")),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
