//! FIG 12: the C²MOS register with delayed clk̄ — contour tracing under the
//! 90% capture criterion, plus the same trace on the extra TG cell to show
//! the method is cell-agnostic.

use criterion::{criterion_group, criterion_main, Criterion};
use shc_bench::{Cell, Timing};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_c2mos");
    group.sample_size(10);

    let c2mos = Cell::C2mos.problem(Timing::Fast).expect("fixture");
    group.bench_function("trace_contour_20pts", |b| {
        b.iter(|| c2mos.trace_contour(20).expect("traces"))
    });

    let tg = Cell::Tg.problem(Timing::Fast).expect("fixture");
    group.bench_function("tg_trace_contour_20pts", |b| {
        b.iter(|| tg.trace_contour(20).expect("traces"))
    });

    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
