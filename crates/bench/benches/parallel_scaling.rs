//! Parallel-scaling bench: the same small TSPC surface generated with 1,
//! 2, and all available worker threads.
//!
//! The surface cells are independent transients, so the fan-out in
//! `shc_core::parallel` should scale near-linearly on a multi-core host;
//! on a single-core host the threaded variants measure the (small)
//! scheduling overhead instead. Either way the values are bitwise
//! identical to the serial surface — asserted once before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::{surface, Parallelism, SurfaceOptions};

fn bench_parallel_scaling(c: &mut Criterion) {
    let problem = Cell::Tspc.problem(Timing::Fast).expect("fixture");
    let contour = problem.trace_contour(8).expect("contour for grid bounds");
    let grid = SurfaceOptions::around_contour(&contour, 8);

    let available = Parallelism::Auto.thread_count();
    let mut thread_counts = vec![1usize, 2];
    if available > 2 {
        thread_counts.push(available);
    }

    // Correctness gate: every policy must reproduce the serial surface.
    let serial = surface::generate(&problem, &grid).expect("serial surface");
    for &threads in &thread_counts {
        let fanned = surface::generate(
            &problem,
            &grid.with_parallelism(Parallelism::from_thread_arg(threads)),
        )
        .expect("parallel surface");
        assert_eq!(
            serial.values(),
            fanned.values(),
            "{threads}-thread surface differs"
        );
    }

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for threads in thread_counts {
        let opts = grid.with_parallelism(Parallelism::from_thread_arg(threads));
        group.bench_with_input(
            BenchmarkId::new("surface_8x8", threads),
            &opts,
            |b, opts| b.iter(|| surface::generate(&problem, opts).expect("surface")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
