//! Ablation: fixed transient step size for the h evaluation.
//!
//! The paper's step 2.a.i fixes N time points over [0, t_f]; this bench
//! sweeps the step so the cost/accuracy tradeoff behind the default (4 ps,
//! 25 points per 0.1 ns edge) is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::CharacterizationProblem;
use shc_spice::waveform::Params;

fn bench_timesteps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_timestep");
    group.sample_size(10);

    for dt_ps in [2.0_f64, 4.0, 8.0, 16.0] {
        let problem = CharacterizationProblem::builder(Cell::Tspc.register(Timing::Fast))
            .dt(dt_ps * 1e-12)
            .build()
            .expect("problem");
        group.bench_with_input(
            BenchmarkId::new("h_evaluation_dt_ps", dt_ps as u64),
            &problem,
            |b, problem| {
                b.iter(|| {
                    problem
                        .evaluate(&Params::new(300e-12, 200e-12))
                        .expect("simulates")
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_timesteps);
criterion_main!(benches);
