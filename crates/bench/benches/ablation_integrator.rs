//! Ablation: Backward Euler versus Trapezoidal integration for the
//! `h` evaluation (DESIGN.md's "BE vs TRAP" design choice). TRAP is second
//! order and can use the same step count with less discretization error,
//! but costs an extra residual history term per step; BE is the robust
//! default for these stiff latch circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_bench::{Cell, Timing};
use shc_core::CharacterizationProblem;
use shc_spice::transient::Integrator;
use shc_spice::waveform::Params;

fn problem_with(method: Integrator) -> CharacterizationProblem {
    CharacterizationProblem::builder(Cell::Tspc.register(Timing::Fast))
        .integrator(method)
        .build()
        .expect("fixture")
}

fn bench_integrators(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_integrator");
    group.sample_size(10);

    for (name, method) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("trapezoidal", Integrator::Trapezoidal),
    ] {
        let problem = problem_with(method);
        group.bench_with_input(
            BenchmarkId::new("h_with_jacobian", name),
            &problem,
            |b, problem| {
                b.iter(|| {
                    problem
                        .evaluate_with_jacobian(&Params::new(300e-12, 200e-12))
                        .expect("simulates")
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_integrators);
criterion_main!(benches);
