//! # shc-bench
//!
//! Benchmark harness regenerating every table and figure of the DAC 2007
//! paper's evaluation section, plus ablations of this implementation's
//! design choices.
//!
//! Two entry points:
//!
//! - the Criterion benches under `benches/` (one per figure/table, run with
//!   `cargo bench`), which use the compressed test clock so a full run
//!   stays in the minutes range;
//! - the `experiments` binary (`cargo run --release -p shc-bench --bin
//!   experiments`), which runs the full paper-scale experiments (the exact
//!   10 ns clock) and prints the paper-vs-measured rows that EXPERIMENTS.md
//!   records. Pass `--fast` to use the compressed clock.

pub mod history;

pub use shc_cells::REGISTER_BANK_DEFAULT_BITS;
use shc_cells::{
    c2mos_register_with, d_latch_with, register_bank_with, tg_register_with, tspc_register_with,
    ClockSpec, Register, Technology, C2MOS_CLKB_SKEW,
};
use shc_core::{BatchPolicy, CharError, CharacterizationProblem};
use shc_spice::transient::{TransientAnalysis, TransientOptions, TransientResult};
use shc_spice::waveform::Params;
use shc_spice::SolverChoice;

/// Which clock timing a fixture uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// The paper's exact clock: 10 ns period, active edge at 11.05 ns.
    Paper,
    /// Compressed clock for quick runs: 3 ns period, edge at 3.25 ns.
    Fast,
}

impl Timing {
    /// The corresponding clock specification.
    pub fn clock(self) -> ClockSpec {
        match self {
            Timing::Paper => ClockSpec::paper(),
            Timing::Fast => ClockSpec::fast(),
        }
    }
}

/// The cells the paper evaluates (plus one extra validation cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// True single-phase clocked register (paper Sec. IV-A).
    Tspc,
    /// C²MOS master-slave register with 0.3 ns clk̄ delay (Sec. IV-B).
    C2mos,
    /// Static transmission-gate flip-flop (extra validation cell).
    Tg,
}

impl Cell {
    /// All benchmarked cells.
    pub const ALL: [Cell; 3] = [Cell::Tspc, Cell::C2mos, Cell::Tg];

    /// The paper's two cells.
    pub const PAPER: [Cell; 2] = [Cell::Tspc, Cell::C2mos];

    /// Cell name.
    pub fn name(self) -> &'static str {
        match self {
            Cell::Tspc => "tspc",
            Cell::C2mos => "c2mos",
            Cell::Tg => "tg",
        }
    }

    /// Builds the register fixture.
    pub fn register(self, timing: Timing) -> Register {
        let tech = Technology::default_250nm();
        match self {
            Cell::Tspc => tspc_register_with(&tech, timing.clock()),
            Cell::C2mos => c2mos_register_with(&tech, timing.clock(), C2MOS_CLKB_SKEW),
            Cell::Tg => tg_register_with(&tech, timing.clock()),
        }
    }

    /// Builds the characterization problem (runs the reference simulation).
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn problem(self, timing: Timing) -> Result<CharacterizationProblem, CharError> {
        self.problem_with_solver(timing, SolverChoice::Auto)
    }

    /// [`Cell::problem`] with an explicit linear-solver backend — used by
    /// the sparse-vs-dense gates, which trace the same cell on both paths.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn problem_with_solver(
        self,
        timing: Timing,
        solver: SolverChoice,
    ) -> Result<CharacterizationProblem, CharError> {
        CharacterizationProblem::builder(self.register(timing))
            .degradation(0.10)
            .solver(solver)
            .build()
    }

    /// [`Cell::problem`] with an explicit batched-engine policy — used by
    /// the batched benchmark gate and the CLIs' `--batch` flag, which
    /// compare the scalar and lockstep paths on the same cell.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn problem_with_batch(
        self,
        timing: Timing,
        batch: BatchPolicy,
    ) -> Result<CharacterizationProblem, CharError> {
        CharacterizationProblem::builder(self.register(timing))
            .degradation(0.10)
            .batch(batch)
            .build()
    }
}

/// Builds the N-bit register-bank transient workload: the cell-zoo netlist
/// whose unknown count (>100 at the default width) puts it on the
/// sparse-direct side of the auto dispatch.
pub fn bank_register(timing: Timing, n_bits: usize) -> Register {
    register_bank_with(&Technology::default_250nm(), timing.clock(), n_bits)
}

/// Runs the register-bank capture transient with the given solver backend:
/// generous setup so the data ripples through the whole chain, simulated
/// past the closing edge. Returns the full result so callers can compare
/// final states and work counters across backends.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_bank_transient(
    bank: &Register,
    solver: SolverChoice,
) -> shc_spice::Result<TransientResult> {
    // The bank's reference-setup hint scales with its width: lead the
    // closing edge by 1.5x that so the data edge has time to ripple.
    let tau_s = 1.5 * bank.reference_setup_hint().unwrap_or(0.5e-9);
    let opts = TransientOptions::builder(bank.active_edge_time() + 0.5e-9)
        .dt(4e-12)
        .solver(solver)
        .build();
    TransientAnalysis::new(bank.circuit(), opts).run(&Params::new(tau_s, 0.5e-9))
}

/// The extra seed cells (beyond [`Cell::ALL`]) the sparse benchmark runs
/// auto-vs-dense contours on.
pub fn d_latch_problem(
    timing: Timing,
    solver: SolverChoice,
) -> Result<CharacterizationProblem, CharError> {
    CharacterizationProblem::builder(d_latch_with(&Technology::default_250nm(), timing.clock()))
        .degradation(0.10)
        .solver(solver)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_for_all_cells() {
        for cell in Cell::ALL {
            let problem = cell.problem(Timing::Fast).expect("fixture builds");
            assert!(problem.characteristic_delay() > 0.0, "{}", cell.name());
        }
    }

    #[test]
    fn paper_cells_are_subset_of_all() {
        for c in Cell::PAPER {
            assert!(Cell::ALL.contains(&c));
        }
    }
}
