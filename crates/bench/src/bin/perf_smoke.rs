//! Perf-regression smoke gate for CI.
//!
//! Runs quick-mode (compressed clock) traces of the paper's two cells under
//! a telemetry collector and compares the deterministic work counters —
//! transient runs, tracer simulations, points traced — against the
//! committed `BENCH_baseline.json`. Counter drift beyond ±10% fails the
//! run: a cheap, wall-clock-free canary for algorithmic perf regressions
//! (extra Newton retries, corrector iterations, LTE rejections all show up
//! as more transient runs).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin perf_smoke                      # gate
//! cargo run --release -p shc-bench --bin perf_smoke -- --write-baseline  # re-pin
//! cargo run --release -p shc-bench --bin perf_smoke -- --report perf-smoke.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use shc_bench::{Cell, Timing};
use shc_obs::{json, Collector, Metric};

/// Contour resolution the smoke trace uses.
const SMOKE_POINTS: usize = 12;
/// Allowed drift on counter ratios, both directions (re-pin on purpose).
const RATCHET: f64 = 0.10;

struct CellCounters {
    cell: &'static str,
    points_traced: u64,
    trace_simulations: u64,
    transient_runs: u64,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perf_smoke: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = PathBuf::from(flag_value("--baseline").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").to_string()
    }));
    let report_path =
        PathBuf::from(flag_value("--report").unwrap_or_else(|| "perf-smoke-report.json".into()));

    let mut measured = Vec::new();
    for cell in Cell::PAPER {
        measured.push(measure(cell)?);
    }

    if write_baseline {
        std::fs::write(&baseline_path, render(&measured, "shc-perf-baseline-v1"))?;
        println!("wrote {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} (run --write-baseline?): {e}",
            baseline_path.display()
        )
    })?;
    let mut ok = true;
    for m in &measured {
        for (metric, value) in [
            ("points_traced", m.points_traced),
            ("trace_simulations", m.trace_simulations),
            ("transient_runs", m.transient_runs),
        ] {
            let key = format!("{}_{metric}", m.cell);
            let base = json::scan_u64(&baseline, &key)
                .ok_or_else(|| format!("baseline missing key '{key}'"))?;
            let pass = if metric == "points_traced" {
                value == base
            } else {
                let ratio = value as f64 / base.max(1) as f64;
                (1.0 - RATCHET..=1.0 + RATCHET).contains(&ratio)
            };
            if pass {
                println!("{key}: {value} (baseline {base}) OK");
            } else {
                ok = false;
                eprintln!(
                    "{key}: {value} vs baseline {base} — outside the ±{:.0}% ratchet",
                    RATCHET * 100.0
                );
            }
        }
    }
    std::fs::write(&report_path, render(&measured, "shc-perf-smoke-v1"))?;
    println!("wrote {}", report_path.display());
    if !ok {
        eprintln!(
            "perf smoke gate failed; if the counter change is intentional, \
             re-pin with --write-baseline and commit BENCH_baseline.json"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Traces one cell under a private collector and extracts its counters.
fn measure(cell: Cell) -> Result<CellCounters, Box<dyn std::error::Error>> {
    let problem = cell.problem(Timing::Fast)?;
    problem.reset_simulation_count();
    let collector = Collector::new();
    let contour = {
        let _telemetry = shc_obs::install_scoped(&collector);
        problem.trace_contour(SMOKE_POINTS)?
    };
    let snapshot = collector.snapshot();
    Ok(CellCounters {
        cell: cell.name(),
        points_traced: contour.points().len() as u64,
        trace_simulations: problem.simulation_count() as u64,
        transient_runs: snapshot.counter(Metric::TransientRuns),
    })
}

fn render(cells: &[CellCounters], schema: &str) -> String {
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", schema);
    json::push_str_field(&mut out, &mut first, "clock", "fast");
    json::push_u64_field(&mut out, &mut first, "smoke_points", SMOKE_POINTS as u64);
    for m in cells {
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_points_traced", m.cell),
            m.points_traced,
        );
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_trace_simulations", m.cell),
            m.trace_simulations,
        );
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_transient_runs", m.cell),
            m.transient_runs,
        );
    }
    out.push_str("}\n");
    out
}
