//! Perf-regression smoke gate for CI.
//!
//! Runs quick-mode (compressed clock) traces of the paper's two cells under
//! a telemetry collector and compares the deterministic work counters —
//! transient runs, tracer simulations, points traced — against the
//! committed `BENCH_baseline.json`. Counter drift beyond ±10% fails the
//! run: a cheap, wall-clock-free canary for algorithmic perf regressions
//! (extra Newton retries, corrector iterations, LTE rejections all show up
//! as more transient runs).
//!
//! The v2 baseline adds the sparse-direct solver's work counters: a
//! register-bank transient pins symbolic analyses (exactly one per
//! topology), numeric factors/refactors, and solves, while the seed-cell
//! traces assert *zero* sparse work — the auto dispatch must keep them on
//! the dense, bitwise-reproducible path.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin perf_smoke                      # gate
//! cargo run --release -p shc-bench --bin perf_smoke -- --write-baseline  # re-pin
//! cargo run --release -p shc-bench --bin perf_smoke -- --report perf-smoke.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use shc_bench::{bank_register, run_bank_transient, Cell, Timing, REGISTER_BANK_DEFAULT_BITS};
use shc_obs::{json, Collector, Metric};
use shc_spice::SolverChoice;

/// Contour resolution the smoke trace uses.
const SMOKE_POINTS: usize = 12;
/// Allowed drift on counter ratios, both directions (re-pin on purpose).
const RATCHET: f64 = 0.10;

struct CellCounters {
    cell: &'static str,
    points_traced: u64,
    trace_simulations: u64,
    transient_runs: u64,
    /// Sparse-LU work done while tracing this (seed) cell. Must stay zero:
    /// the auto dispatch keeps seed cells on the dense, bitwise-reproducible
    /// path, and this counter is the canary that proves it.
    sparse_work: u64,
}

/// Work counters of the register-bank transient (the sparse-path workload).
struct BankCounters {
    transient_steps: u64,
    sparse_analyses: u64,
    sparse_factors: u64,
    sparse_refactors: u64,
    sparse_solves: u64,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perf_smoke: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = PathBuf::from(flag_value("--baseline").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").to_string()
    }));
    let report_path =
        PathBuf::from(flag_value("--report").unwrap_or_else(|| "perf-smoke-report.json".into()));

    let mut measured = Vec::new();
    for cell in Cell::PAPER {
        measured.push(measure(cell)?);
    }
    let bank = measure_bank()?;

    if write_baseline {
        std::fs::write(
            &baseline_path,
            render(&measured, &bank, "shc-perf-baseline-v2"),
        )?;
        println!("wrote {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} (run --write-baseline?): {e}",
            baseline_path.display()
        )
    })?;
    let mut ok = true;
    for m in &measured {
        for (metric, value) in [
            ("points_traced", m.points_traced),
            ("trace_simulations", m.trace_simulations),
            ("transient_runs", m.transient_runs),
        ] {
            let key = format!("{}_{metric}", m.cell);
            let base = json::scan_u64(&baseline, &key)
                .ok_or_else(|| format!("baseline missing key '{key}'"))?;
            let pass = if metric == "points_traced" {
                value == base
            } else {
                let ratio = value as f64 / base.max(1) as f64;
                (1.0 - RATCHET..=1.0 + RATCHET).contains(&ratio)
            };
            if pass {
                println!("{key}: {value} (baseline {base}) OK");
            } else {
                ok = false;
                eprintln!(
                    "{key}: {value} vs baseline {base} — outside the ±{:.0}% ratchet",
                    RATCHET * 100.0
                );
            }
        }
        // Hard identity check, not baselined: seed cells must never touch
        // the sparse path under the auto dispatch.
        if m.sparse_work == 0 {
            println!("{}_sparse_work: 0 (dense path) OK", m.cell);
        } else {
            ok = false;
            eprintln!(
                "{}_sparse_work: {} — seed cell took the sparse path; \
                 auto dispatch threshold regressed",
                m.cell, m.sparse_work
            );
        }
    }
    // Every bank counter is deterministic for a fixed netlist and step
    // grid; the analysis count is pinned exactly (one per topology — more
    // means the pattern-reuse guard broke), the rest ride the ratchet.
    for (metric, value, exact) in [
        ("transient_steps", bank.transient_steps, false),
        ("sparse_analyses", bank.sparse_analyses, true),
        ("sparse_factors", bank.sparse_factors, false),
        ("sparse_refactors", bank.sparse_refactors, false),
        ("sparse_solves", bank.sparse_solves, false),
    ] {
        let key = format!("bank_{metric}");
        let base = json::scan_u64(&baseline, &key)
            .ok_or_else(|| format!("baseline missing key '{key}'"))?;
        let pass = if exact {
            value == base
        } else {
            let ratio = value as f64 / base.max(1) as f64;
            (1.0 - RATCHET..=1.0 + RATCHET).contains(&ratio)
        };
        if pass {
            println!("{key}: {value} (baseline {base}) OK");
        } else {
            ok = false;
            eprintln!(
                "{key}: {value} vs baseline {base} — outside the ±{:.0}% ratchet",
                RATCHET * 100.0
            );
        }
    }
    std::fs::write(&report_path, render(&measured, &bank, "shc-perf-smoke-v2"))?;
    println!("wrote {}", report_path.display());
    if !ok {
        eprintln!(
            "perf smoke gate failed; if the counter change is intentional, \
             re-pin with --write-baseline and commit BENCH_baseline.json"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Traces one cell under a private collector and extracts its counters.
fn measure(cell: Cell) -> Result<CellCounters, Box<dyn std::error::Error>> {
    let problem = cell.problem(Timing::Fast)?;
    problem.reset_simulation_count();
    let collector = Collector::new();
    let contour = {
        let _telemetry = shc_obs::install_scoped(&collector);
        problem.trace_contour(SMOKE_POINTS)?
    };
    let snapshot = collector.snapshot();
    Ok(CellCounters {
        cell: cell.name(),
        points_traced: contour.points().len() as u64,
        trace_simulations: problem.simulation_count() as u64,
        transient_runs: snapshot.counter(Metric::TransientRuns),
        sparse_work: snapshot.counter(Metric::SparseAnalyses)
            + snapshot.counter(Metric::SparseFactors)
            + snapshot.counter(Metric::SparseRefactors)
            + snapshot.counter(Metric::SparseSolves),
    })
}

/// Runs the register-bank transient (auto dispatch → sparse path) under a
/// private collector and extracts the sparse work counters.
fn measure_bank() -> Result<BankCounters, Box<dyn std::error::Error>> {
    let bank = bank_register(Timing::Fast, REGISTER_BANK_DEFAULT_BITS);
    let collector = Collector::new();
    let result = {
        let _telemetry = shc_obs::install_scoped(&collector);
        run_bank_transient(&bank, SolverChoice::Auto)?
    };
    let snapshot = collector.snapshot();
    let counters = BankCounters {
        transient_steps: result.stats().steps as u64,
        sparse_analyses: snapshot.counter(Metric::SparseAnalyses),
        sparse_factors: snapshot.counter(Metric::SparseFactors),
        sparse_refactors: snapshot.counter(Metric::SparseRefactors),
        sparse_solves: snapshot.counter(Metric::SparseSolves),
    };
    if counters.sparse_solves == 0 {
        return Err("bank transient did no sparse solves — auto dispatch regressed".into());
    }
    Ok(counters)
}

fn render(cells: &[CellCounters], bank: &BankCounters, schema: &str) -> String {
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", schema);
    json::push_str_field(&mut out, &mut first, "clock", "fast");
    json::push_u64_field(&mut out, &mut first, "smoke_points", SMOKE_POINTS as u64);
    for m in cells {
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_points_traced", m.cell),
            m.points_traced,
        );
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_trace_simulations", m.cell),
            m.trace_simulations,
        );
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_transient_runs", m.cell),
            m.transient_runs,
        );
        json::push_u64_field(
            &mut out,
            &mut first,
            &format!("{}_sparse_work", m.cell),
            m.sparse_work,
        );
    }
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_transient_steps",
        bank.transient_steps,
    );
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_sparse_analyses",
        bank.sparse_analyses,
    );
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_sparse_factors",
        bank.sparse_factors,
    );
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_sparse_refactors",
        bank.sparse_refactors,
    );
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_sparse_solves",
        bank.sparse_solves,
    );
    out.push_str("}\n");
    out
}
