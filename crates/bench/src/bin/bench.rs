//! Benchmark bookkeeping front end.
//!
//! ```text
//! cargo run -p shc-bench --bin bench -- history --rev $(git rev-parse --short HEAD) \
//!     --timestamp 2026-08-08T12:00:00Z [--root <dir>] [--strict]
//! ```
//!
//! `history` appends the wall-clock figures of the current `BENCH_*.json`
//! snapshots to `BENCH_history.jsonl` (tagged with the given revision and
//! timestamp) and prints a `REGRESSION` line for every tracked metric
//! that slowed down more than 10% against the previous recorded entry.
//! With `--strict`, regressions also fail the process — the knob CI can
//! turn when its runners are quiet enough to gate on wall clock.

use std::path::PathBuf;
use std::process::ExitCode;

use shc_bench::history;

const USAGE: &str = "usage: bench history --rev <rev> --timestamp <ts> [--root <dir>] [--strict]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("history") {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (Some(rev), Some(timestamp)) = (flag_value("--rev"), flag_value("--timestamp")) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let root = flag_value("--root").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        PathBuf::from,
    );
    let strict = args.iter().any(|a| a == "--strict");

    match history::record(&root, &rev, &timestamp) {
        Ok((entry, flags)) => {
            println!(
                "recorded {} metric(s) at {rev} into {}",
                entry.metrics.len(),
                root.join(history::HISTORY_FILE).display()
            );
            for (key, v) in &entry.metrics {
                println!("  {key}: {v:.3} s");
            }
            if flags.is_empty() {
                println!("no throughput regressions vs previous entry");
                ExitCode::SUCCESS
            } else {
                for flag in &flags {
                    println!("{flag}");
                }
                if strict {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("bench history failed: {e}");
            ExitCode::FAILURE
        }
    }
}
