//! Fault-matrix harness for CI.
//!
//! Walks the full injection matrix (site × fault kind), runs a compressed
//! TSPC trace under each plan, and asserts the solver stack absorbs every
//! injected fault *gracefully*: the trace either recovers to a complete
//! contour, degrades to a clean partial contour, or surfaces a typed error
//! — it never panics. Any panic (or a vacuous cell where nothing was
//! injected) fails the run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin fault_matrix
//! cargo run --release -p shc-bench --bin fault_matrix -- --canary-panic
//! ```
//!
//! `--canary-panic` replaces the matrix with one deliberately panicking
//! cell to prove the harness converts panics into a nonzero exit (CI
//! asserts this without paying for a second full matrix run).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use shc_bench::{Cell, Timing};
use shc_core::seed::find_first_point;
use shc_core::tracer::trace_session;
use shc_core::{SeedOptions, TraceOutcome, TraceStart, TracerOptions};
use shc_fault::{FaultKind, FaultPlan, Injector, Site};

/// Contour resolution per matrix cell (small: the matrix has 20 cells).
const MATRIX_POINTS: usize = 8;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fault_matrix: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--canary-panic") {
        let result = catch_unwind(AssertUnwindSafe(|| -> usize {
            panic!("fault_matrix canary: deliberate panic");
        }));
        assert!(result.is_err());
        eprintln!("canary: PANIC caught and converted to a failing exit");
        return Ok(ExitCode::FAILURE);
    }

    // Build the fixture and seed the trace fault-free: the matrix probes
    // the *solver stack's* resilience, not the calibration path.
    let problem = Cell::Tspc.problem(Timing::Fast)?;
    let seed = find_first_point(&problem, &SeedOptions::default())?.params;
    let opts = TracerOptions::default();

    println!(
        "{:<12} {:<16} {:>9} {:>8}  outcome",
        "site", "kind", "injected", "points"
    );
    let mut failures = 0usize;
    for site in Site::ALL {
        for kind in FaultKind::ALL {
            let plan = FaultPlan {
                probability: site_probability(site),
                site: Some(site),
                kind,
                // Vary the stream per cell so the matrix doesn't probe the
                // same call indices twenty times.
                seed: 0x5AFE_0000 + (site.name().len() as u64) * 131 + kind.name().len() as u64,
            };
            let injector = Injector::new(plan);
            let result = {
                let _guard = shc_fault::install_scoped(&injector);
                catch_unwind(AssertUnwindSafe(|| {
                    trace_session(&problem, TraceStart::Seed(seed), MATRIX_POINTS, &opts, None)
                }))
            };
            let injected = injector.injected();
            let (outcome, graceful) = match &result {
                Ok(Ok(TraceOutcome::Complete(c))) => {
                    (format!("complete ({} pts)", c.points().len()), true)
                }
                Ok(Ok(TraceOutcome::Partial { contour, failure })) => (
                    format!("partial ({} pts): {failure}", contour.points().len()),
                    true,
                ),
                Ok(Err(e)) => (format!("typed error: {e}"), true),
                Err(_) => ("PANIC".to_string(), false),
            };
            let points = match &result {
                Ok(Ok(outcome)) => outcome.contour().points().len(),
                _ => 0,
            };
            let vacuous = injected == 0;
            if !graceful || vacuous {
                failures += 1;
            }
            println!(
                "{:<12} {:<16} {:>9} {:>8}  {}{}",
                site.name(),
                kind.name(),
                injected,
                points,
                outcome,
                if vacuous {
                    "  [VACUOUS: nothing injected]"
                } else {
                    ""
                },
            );
        }
    }

    if failures > 0 {
        eprintln!("fault matrix: {failures} cell(s) failed (panic or vacuous injection)");
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "fault matrix: all {} cells graceful",
        Site::COUNT * FaultKind::COUNT
    );
    Ok(ExitCode::SUCCESS)
}

/// Per-site injection probability, scaled inversely to how often the site
/// fires: LU/Newton sites run thousands of times per trace, the transient
/// site once per simulation, the MPNR site once per corrector solve. Each
/// probability is high enough that every matrix cell injects at least once
/// under its fixed seed.
fn site_probability(site: Site) -> f64 {
    match site {
        Site::LuFactor | Site::LuSolve | Site::Newton => 0.002,
        Site::Transient => 0.35,
        Site::Mpnr => 0.45,
    }
}
