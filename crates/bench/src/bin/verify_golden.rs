//! Golden-contour comparator for CI.
//!
//! Traces the paper's two cells (TSPC, C²MOS) on the compressed clock and
//! compares every contour point against the committed goldens under
//! `goldens/`. Any drift beyond the relative tolerance fails the run and
//! leaves a machine-readable diff artifact for the CI job to upload.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin verify_golden               # compare
//! cargo run --release -p shc-bench --bin verify_golden -- --generate # rewrite goldens
//! cargo run --release -p shc-bench --bin verify_golden -- --rtol 1e-6 \
//!     --goldens-dir goldens --diff golden-diff.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use shc_bench::{Cell, Timing};
use shc_core::ContourPoint;
use shc_obs::json;
use shc_spice::SolverChoice;

/// Contour resolution the goldens pin.
const GOLDEN_POINTS: usize = 12;
/// Default per-coordinate relative tolerance.
const DEFAULT_RTOL: f64 = 1e-6;
/// Absolute floor (seconds) so near-zero skews don't demand exact equality.
const ATOL: f64 = 1e-18;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("verify_golden: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let generate = args.iter().any(|a| a == "--generate");
    let rtol: f64 = flag_value("--rtol")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RTOL);
    let goldens_dir =
        PathBuf::from(flag_value("--goldens-dir").unwrap_or_else(default_goldens_dir));
    let diff_path =
        PathBuf::from(flag_value("--diff").unwrap_or_else(|| "golden-diff.json".into()));

    let mut drifted = false;
    let mut diff = String::from("{\"schema\":\"shc-golden-diff-v1\",\"cells\":[");
    for (i, cell) in Cell::PAPER.iter().enumerate() {
        let golden_path = goldens_dir.join(format!("{}_contour.json", cell.name()));
        let points = trace_cell(*cell)?;
        if generate {
            std::fs::create_dir_all(&goldens_dir)?;
            std::fs::write(&golden_path, golden_json(*cell, &points))?;
            println!("wrote {} ({} points)", golden_path.display(), points.len());
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).map_err(|e| {
            format!(
                "cannot read {} (run --generate?): {e}",
                golden_path.display()
            )
        })?;
        let report = compare(*cell, &golden, &points, rtol)?;
        if i > 0 {
            diff.push(',');
        }
        diff.push_str(&report.json);
        if report.ok {
            println!(
                "{}: OK ({} points, max relative deviation {:.3e})",
                cell.name(),
                points.len(),
                report.max_rel
            );
        } else {
            drifted = true;
            eprintln!("{}: DRIFT — {}", cell.name(), report.message);
        }
    }
    if !generate {
        // sparse_vs_dense identity canary: the TSPC contour traced with the
        // sparse-direct solver forced on must still hit the (dense-traced)
        // golden within the same tolerance. This pins the two linear-solver
        // backends to each other, not just the dense path to history.
        let golden_path = goldens_dir.join(format!("{}_contour.json", Cell::Tspc.name()));
        let golden = std::fs::read_to_string(&golden_path)
            .map_err(|e| format!("cannot read {}: {e}", golden_path.display()))?;
        let points = trace_cell_with(Cell::Tspc, SolverChoice::Sparse)?;
        let mut report = compare(Cell::Tspc, &golden, &points, rtol)?;
        report.json = report
            .json
            .replacen("\"tspc\"", "\"tspc_sparse_vs_dense\"", 1);
        diff.push(',');
        diff.push_str(&report.json);
        if report.ok {
            println!(
                "tspc (sparse solver): OK ({} points, max relative deviation {:.3e})",
                points.len(),
                report.max_rel
            );
        } else {
            drifted = true;
            eprintln!("tspc (sparse solver): DRIFT — {}", report.message);
        }
    }
    diff.push_str("]}\n");

    if generate {
        return Ok(ExitCode::SUCCESS);
    }
    std::fs::write(&diff_path, &diff)?;
    println!("wrote {}", diff_path.display());
    if drifted {
        eprintln!("golden contours drifted; inspect the diff artifact or re-run with --generate");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `goldens/` next to the workspace root, independent of the invocation cwd.
fn default_goldens_dir() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../goldens").to_string()
}

fn trace_cell(cell: Cell) -> Result<Vec<ContourPoint>, Box<dyn std::error::Error>> {
    trace_cell_with(cell, SolverChoice::Auto)
}

fn trace_cell_with(
    cell: Cell,
    solver: SolverChoice,
) -> Result<Vec<ContourPoint>, Box<dyn std::error::Error>> {
    let problem = cell.problem_with_solver(Timing::Fast, solver)?;
    let contour = problem.trace_contour(GOLDEN_POINTS)?;
    Ok(contour.points().to_vec())
}

/// Renders a golden file: one flat JSON object with parallel skew arrays,
/// formatted for exact round-trip (`json::fmt_f64`).
fn golden_json(cell: Cell, points: &[ContourPoint]) -> String {
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "cell", cell.name());
    json::push_str_field(&mut out, &mut first, "clock", "fast");
    json::push_u64_field(&mut out, &mut first, "n", points.len() as u64);
    for (key, pick) in [
        (
            "tau_s",
            (|p: &ContourPoint| p.tau_s) as fn(&ContourPoint) -> f64,
        ),
        ("tau_h", |p: &ContourPoint| p.tau_h),
    ] {
        let mut arr = String::from("[");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            arr.push_str(&json::fmt_f64(pick(p)));
        }
        arr.push(']');
        json::push_raw_field(&mut out, &mut first, key, &arr);
    }
    out.push_str("}\n");
    out
}

struct CellDiff {
    ok: bool,
    max_rel: f64,
    message: String,
    json: String,
}

fn compare(
    cell: Cell,
    golden: &str,
    measured: &[ContourPoint],
    rtol: f64,
) -> Result<CellDiff, Box<dyn std::error::Error>> {
    let g_s = json::scan_f64_array(golden, "tau_s")
        .ok_or_else(|| format!("{}: golden missing tau_s array", cell.name()))?;
    let g_h = json::scan_f64_array(golden, "tau_h")
        .ok_or_else(|| format!("{}: golden missing tau_h array", cell.name()))?;
    let mut max_rel = 0.0f64;
    let mut worst = String::new();
    let mut ok = g_s.len() == measured.len() && g_h.len() == measured.len();
    let mut message = if ok {
        String::new()
    } else {
        format!("point count {} vs golden {}", measured.len(), g_s.len())
    };
    for (i, p) in measured.iter().enumerate() {
        let (Some(gs), Some(gh)) = (g_s.get(i), g_h.get(i)) else {
            break;
        };
        for (axis, m, g) in [("tau_s", p.tau_s, *gs), ("tau_h", p.tau_h, *gh)] {
            let rel = (m - g).abs() / g.abs().max(1e-15);
            if rel > max_rel {
                max_rel = rel;
                worst = format!("point {i} {axis}: measured {m:e} vs golden {g:e}");
            }
            if (m - g).abs() > rtol * g.abs() + ATOL {
                ok = false;
                if message.is_empty() {
                    message = format!(
                        "point {i} {axis} off by {:.3e} (relative {rel:.3e} > {rtol:.0e}): \
                         measured {m:e} vs golden {g:e}",
                        (m - g).abs()
                    );
                }
            }
        }
    }
    let mut json_row = String::from("{");
    let mut first = true;
    json::push_str_field(&mut json_row, &mut first, "cell", cell.name());
    json::push_raw_field(
        &mut json_row,
        &mut first,
        "ok",
        if ok { "true" } else { "false" },
    );
    json::push_f64_field(&mut json_row, &mut first, "max_relative_deviation", max_rel);
    json::push_u64_field(&mut json_row, &mut first, "points", measured.len() as u64);
    json::push_u64_field(&mut json_row, &mut first, "golden_points", g_s.len() as u64);
    json::push_str_field(&mut json_row, &mut first, "worst", &worst);
    json_row.push('}');
    Ok(CellDiff {
        ok,
        max_rel,
        message,
        json: json_row,
    })
}
