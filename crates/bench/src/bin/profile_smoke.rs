//! Profiler smoke gate for CI.
//!
//! Three checks on the compressed-clock TSPC workload:
//!
//! 1. **Identity** — tracing the contour with a profiler installed (at the
//!    deepest `Detail::Iter` level) must produce bitwise the same points
//!    as the unprofiled trace. Observation may not perturb the physics.
//! 2. **Overhead** — `Detail::Step` profiling (the `--profile` default)
//!    must cost at most [`OVERHEAD_LIMIT_PCT`] of wall clock on the
//!    contour trace, measured as block-accumulated ABBA floors with a
//!    base-vs-base null arm that widens the budget by the measured
//!    noise of the runner.
//! 3. **Ratchet** — the phase-share breakdown of the contour trace and a
//!    20x20 (400-simulation) surface sweep must stay within
//!    `--tol-pp` percentage points of the committed
//!    `PROFILE_baseline.json`: a phase silently eating a bigger share of
//!    the run fails CI even when total wall clock drifts with the runner.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin profile_smoke                      # gate
//! cargo run --release -p shc-bench --bin profile_smoke -- --write-baseline  # re-pin
//! cargo run --release -p shc-bench --bin profile_smoke -- --skip-overhead   # ratchet only
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use shc_bench::{Cell, Timing};
use shc_core::{surface, SurfaceOptions};
use shc_obs::json;
use shc_prof::{check, parse_baseline, render_baseline, Detail, Phase, ProfileReport, Profiler};

/// Contour resolution the smoke trace uses.
const SMOKE_POINTS: usize = 16;
/// Surface grid edge: 20x20 = 400 transient simulations.
const SURFACE_N: usize = 20;
/// ABBA rounds for the overhead measurement; each letter times a block
/// of [`OVERHEAD_BLOCK`] back-to-back traces.
const OVERHEAD_ROUNDS: usize = 4;
/// Traces accumulated per timed block: single traces are too short for
/// stable floors on a shared runner, ~1 s blocks are not.
const OVERHEAD_BLOCK: usize = 4;
/// Maximum tolerated Step-detail profiling overhead, percent of wall clock.
const OVERHEAD_LIMIT_PCT: f64 = 2.0;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("profile_smoke: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Wall-clock timing is this gate's subject, so it gets its own
/// sanctioned timer beside shc-obs spans (clippy.toml).
#[allow(clippy::disallowed_methods)]
fn seconds<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let skip_overhead = args.iter().any(|a| a == "--skip-overhead");
    let baseline_path = PathBuf::from(flag_value("--baseline").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROFILE_baseline.json").to_string()
    }));
    let report_path =
        PathBuf::from(flag_value("--report").unwrap_or_else(|| "profile-smoke-report.json".into()));
    let tol_pp: f64 = match flag_value("--tol-pp") {
        Some(v) => v.parse().map_err(|_| format!("bad --tol-pp '{v}'"))?,
        None => shc_prof::DEFAULT_TOLERANCE_PP,
    };

    let problem = Cell::Tspc.problem(Timing::Fast)?;

    // --- 1. Identity: profiled trace must be bitwise the unprofiled one.
    let reference = problem.trace_contour(SMOKE_POINTS)?;
    let iter_profiler = Profiler::with_detail(Detail::Iter);
    let profiled = {
        let _profile = shc_prof::install_scoped(&iter_profiler);
        problem.trace_contour(SMOKE_POINTS)?
    };
    let identical = reference
        .points()
        .iter()
        .zip(profiled.points().iter())
        .all(|(a, b)| {
            a.tau_s.to_bits() == b.tau_s.to_bits()
                && a.tau_h.to_bits() == b.tau_h.to_bits()
                && a.residual.to_bits() == b.residual.to_bits()
                && a.corrector_iterations == b.corrector_iterations
        })
        && reference.points().len() == profiled.points().len();
    if identical {
        println!(
            "identity: profiled contour bitwise identical ({} points) OK",
            reference.points().len()
        );
    } else {
        eprintln!("identity: installing the profiler changed the traced contour");
    }
    let tspc_report = iter_profiler.report("tspc_contour");

    // --- Surface sweep section (the 400-simulation workload whose
    // device-eval share the baseline pins).
    let surface_profiler = Profiler::with_detail(Detail::Iter);
    {
        let _profile = shc_prof::install_scoped(&surface_profiler);
        let grid = SurfaceOptions::around_contour(&reference, SURFACE_N);
        surface::generate(&problem, &grid)?;
    }
    let surface_report = surface_profiler.report("surface_sweep");
    for report in [&tspc_report, &surface_report] {
        if let Some(p) = report.phase(Phase::DeviceEval.name()) {
            println!(
                "{}: device_eval {:.1}% of {:.1} ms covered",
                report.label,
                100.0 * p.self_share(report.wall_ns),
                report.wall_ns as f64 / 1e6
            );
        }
    }

    // --- 2. Overhead: block-accumulated ABBA comparison at Step detail
    // (the default --profile level). Shared runners jitter by several
    // percent run to run — more than the ~1.5% signal — so two defenses:
    // each timed sample accumulates [`OVERHEAD_BLOCK`] back-to-back
    // traces (~1 s, long enough that the fastest block converges on the
    // true floor), and each round times off/on/on/off so slow drift
    // cancels across the palindrome. The two off positions measure the
    // same thing, so the spread between their floors is pure measurement
    // noise; the on arm must stay within the budget *plus that measured
    // noise*. On a quiet machine the noise term vanishes and the 2%
    // budget binds exactly; on a loaded one the gate degrades gracefully
    // instead of flaking. One unmeasured warmup block settles caches.
    let mut floors = [f64::INFINITY; 3]; // [off-lead, on, off-trail]
    if !skip_overhead {
        let time_block = |profiled: bool| -> Result<f64, shc_core::CharError> {
            let (r, s) = seconds(|| -> Result<(), shc_core::CharError> {
                for _ in 0..OVERHEAD_BLOCK {
                    if profiled {
                        let step = Profiler::with_detail(Detail::Step);
                        let _profile = shc_prof::install_scoped(&step);
                        problem.trace_contour(SMOKE_POINTS)?;
                    } else {
                        problem.trace_contour(SMOKE_POINTS)?;
                    }
                }
                Ok(())
            });
            r.map(|()| s)
        };
        time_block(true)?;
        for _ in 0..OVERHEAD_ROUNDS {
            floors[0] = floors[0].min(time_block(false)?);
            floors[1] = floors[1].min(time_block(true)?);
            floors[1] = floors[1].min(time_block(true)?);
            floors[2] = floors[2].min(time_block(false)?);
        }
    }
    let [base_s, prof_s] = [floors[0].min(floors[2]), floors[1]];
    let (overhead_pct, noise_pct) = if skip_overhead {
        (0.0, 0.0)
    } else {
        (
            100.0 * (prof_s / base_s - 1.0),
            100.0 * (floors[0].max(floors[2]) / base_s - 1.0),
        )
    };
    let overhead_ok = skip_overhead || overhead_pct <= OVERHEAD_LIMIT_PCT + noise_pct;
    if skip_overhead {
        println!("overhead: skipped (--skip-overhead)");
    } else if overhead_ok {
        println!(
            "overhead: {overhead_pct:+.2}% at Step detail \
             ({base_s:.3} s off, {prof_s:.3} s on; budget {OVERHEAD_LIMIT_PCT:.1}% \
             + {noise_pct:.2}% null spread) OK"
        );
    } else {
        eprintln!(
            "overhead: {overhead_pct:+.2}% at Step detail exceeds the \
             {OVERHEAD_LIMIT_PCT:.1}% budget + {noise_pct:.2}% null spread \
             ({base_s:.3} s off, {prof_s:.3} s on)"
        );
    }

    let sections = [tspc_report, surface_report];
    if write_baseline {
        std::fs::write(&baseline_path, render_baseline(&sections))?;
        println!("wrote {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    // --- 3. Ratchet: phase shares vs the committed baseline.
    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} (run --write-baseline?): {e}",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&baseline_text)?;
    let mut ratchet_ok = true;
    for current in &sections {
        let base = baseline
            .iter()
            .find(|s| s.label == current.label)
            .ok_or_else(|| format!("baseline has no '{}' section", current.label))?;
        match check(current, base, tol_pp) {
            Ok(lines) => {
                for line in lines {
                    println!("{}: {line}", current.label);
                }
            }
            Err(violations) => {
                ratchet_ok = false;
                for line in violations {
                    eprintln!("RATCHET VIOLATION {}: {line}", current.label);
                }
            }
        }
    }

    std::fs::write(
        &report_path,
        render_report(
            &sections,
            identical,
            base_s,
            prof_s,
            overhead_pct,
            noise_pct,
            skip_overhead,
        ),
    )?;
    println!("wrote {}", report_path.display());

    if identical && overhead_ok && ratchet_ok {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "profile smoke gate failed; if the phase-share shift is intentional, \
             re-pin with --write-baseline and commit PROFILE_baseline.json"
        );
        Ok(ExitCode::FAILURE)
    }
}

#[allow(clippy::fn_params_excessive_bools)]
fn render_report(
    sections: &[ProfileReport],
    identical: bool,
    base_s: f64,
    prof_s: f64,
    overhead_pct: f64,
    noise_pct: f64,
    skip_overhead: bool,
) -> String {
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", "shc-prof-smoke-v1");
    json::push_u64_field(&mut out, &mut first, "smoke_points", SMOKE_POINTS as u64);
    json::push_u64_field(&mut out, &mut first, "surface_n", SURFACE_N as u64);
    json::push_raw_field(
        &mut out,
        &mut first,
        "bitwise_identical",
        if identical { "true" } else { "false" },
    );
    if !skip_overhead {
        json::push_f64_field(&mut out, &mut first, "base_seconds", base_s);
        json::push_f64_field(&mut out, &mut first, "profiled_seconds", prof_s);
        json::push_f64_field(&mut out, &mut first, "overhead_percent", overhead_pct);
        json::push_f64_field(&mut out, &mut first, "null_spread_percent", noise_pct);
        json::push_f64_field(
            &mut out,
            &mut first,
            "overhead_limit_percent",
            OVERHEAD_LIMIT_PCT,
        );
    }
    // The measured sections ride along in baseline format, so a failing
    // run's artifact is directly diffable against PROFILE_baseline.json.
    json::push_raw_field(
        &mut out,
        &mut first,
        "current",
        render_baseline(sections).trim_end(),
    );
    out.push_str("}\n");
    out
}
