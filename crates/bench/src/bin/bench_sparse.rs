//! Dense-vs-sparse wall-time benchmark for CI.
//!
//! Two measurements, both gated:
//!
//! 1. **Register bank** (the >100-unknown cell-zoo workload): the same
//!    capture transient runs once per solver backend; the sparse-direct
//!    path must be at least [`MIN_BANK_SPEEDUP`]× faster than the dense
//!    one, and the two final states must agree to solver tolerance.
//! 2. **Seed cells** (TSPC, C²MOS, TG, D-latch): a 12-point contour traced
//!    with the default auto dispatch must be no slower than the forced
//!    dense path beyond a generous noise allowance — auto keeps small
//!    circuits dense, so this is a dispatch-overhead canary.
//!
//! Writes `BENCH_sparse.json` with the measured wall times.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin bench_sparse
//! cargo run --release -p shc-bench --bin bench_sparse -- --out BENCH_sparse.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use shc_bench::{bank_register, d_latch_problem, run_bank_transient, Cell, Timing};
use shc_obs::json;
use shc_spice::SolverChoice;

/// Bank width for the wall-time comparison: twice the cell default, deep
/// into the regime where the dense `O(n³)` refactor dominates each step.
const BANK_BITS: usize = 32;
/// Required sparse speedup on the register-bank transient.
const MIN_BANK_SPEEDUP: f64 = 3.0;
/// Auto may be at most this factor slower than dense on seed cells
/// (pure timer noise: the two runs execute the same dense code).
const MAX_SEED_SLOWDOWN: f64 = 1.25;
/// Wall-time repetitions; the minimum is reported.
const REPS: usize = 3;
/// Contour resolution for the seed-cell timings.
const CONTOUR_POINTS: usize = 12;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_sparse: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// This binary exists to measure wall-clock (the sparse-vs-dense gate),
/// so it gets its own sanctioned timer beside shc-obs spans (clippy.toml).
#[allow(clippy::disallowed_methods)]
fn min_time<F: FnMut() -> Result<(), Box<dyn std::error::Error>>>(
    mut f: F,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f()?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let out_path = PathBuf::from(
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json").to_string()
            }),
    );
    let mut ok = true;
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", "shc-bench-sparse-v1");
    json::push_str_field(&mut out, &mut first, "clock", "fast");

    // 1. Register bank: dense vs sparse on the identical transient.
    let bank = bank_register(Timing::Fast, BANK_BITS);
    let n = bank.circuit().unknown_count();
    let dense_res = run_bank_transient(&bank, SolverChoice::Dense)?;
    let sparse_res = run_bank_transient(&bank, SolverChoice::Sparse)?;
    let diff = dense_res
        .final_state()
        .sub(sparse_res.final_state())
        .norm_inf();
    if diff > 1e-9 {
        ok = false;
        eprintln!("bank: dense and sparse final states differ by {diff:.2e}");
    }
    let t_dense = min_time(|| Ok(run_bank_transient(&bank, SolverChoice::Dense).map(|_| ())?))?;
    let t_sparse = min_time(|| Ok(run_bank_transient(&bank, SolverChoice::Sparse).map(|_| ())?))?;
    let speedup = t_dense / t_sparse;
    json::push_u64_field(&mut out, &mut first, "bank_bits", BANK_BITS as u64);
    json::push_u64_field(&mut out, &mut first, "bank_unknowns", n as u64);
    json::push_u64_field(
        &mut out,
        &mut first,
        "bank_steps",
        dense_res.stats().steps as u64,
    );
    json::push_f64_field(&mut out, &mut first, "bank_dense_seconds", t_dense);
    json::push_f64_field(&mut out, &mut first, "bank_sparse_seconds", t_sparse);
    json::push_f64_field(&mut out, &mut first, "bank_sparse_speedup", speedup);
    json::push_f64_field(&mut out, &mut first, "bank_state_deviation", diff);
    println!(
        "bank ({BANK_BITS} bits, {n} unknowns): dense {t_dense:.3} s, \
         sparse {t_sparse:.3} s — {speedup:.1}x"
    );
    if speedup < MIN_BANK_SPEEDUP {
        ok = false;
        eprintln!("bank: sparse speedup {speedup:.2}x below the required {MIN_BANK_SPEEDUP}x");
    }

    // 2. Seed cells: auto dispatch must not cost anything vs forced dense.
    let seed_problem = |name: &str, solver| match name {
        "tspc" => Cell::Tspc.problem_with_solver(Timing::Fast, solver),
        "c2mos" => Cell::C2mos.problem_with_solver(Timing::Fast, solver),
        "tg" => Cell::Tg.problem_with_solver(Timing::Fast, solver),
        _ => d_latch_problem(Timing::Fast, solver),
    };
    for name in ["tspc", "c2mos", "tg", "dlatch"] {
        let trace = |solver| -> Result<f64, Box<dyn std::error::Error>> {
            let problem = seed_problem(name, solver)?;
            min_time(|| {
                problem
                    .trace_contour(CONTOUR_POINTS)
                    .map(|_| ())
                    .map_err(Into::into)
            })
        };
        let t_dense = trace(SolverChoice::Dense)?;
        let t_auto = trace(SolverChoice::Auto)?;
        let ratio = t_auto / t_dense;
        json::push_f64_field(
            &mut out,
            &mut first,
            &format!("{name}_dense_seconds"),
            t_dense,
        );
        json::push_f64_field(
            &mut out,
            &mut first,
            &format!("{name}_auto_seconds"),
            t_auto,
        );
        json::push_f64_field(
            &mut out,
            &mut first,
            &format!("{name}_auto_over_dense"),
            ratio,
        );
        println!("{name}: dense {t_dense:.3} s, auto {t_auto:.3} s (ratio {ratio:.2})");
        if ratio > MAX_SEED_SLOWDOWN {
            ok = false;
            eprintln!(
                "{name}: auto dispatch {ratio:.2}x slower than dense \
                 (allowance {MAX_SEED_SLOWDOWN}x)"
            );
        }
    }

    out.push_str("}\n");
    std::fs::write(&out_path, &out)?;
    println!("wrote {}", out_path.display());
    if !ok {
        eprintln!("sparse benchmark gate failed");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
