//! Regenerates every table and figure of the paper's evaluation section and
//! prints paper-vs-measured rows (the source for EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin experiments            # paper clock (minutes)
//! cargo run --release -p shc-bench --bin experiments -- --fast  # compressed clock (seconds)
//! cargo run --release -p shc-bench --bin experiments -- --fast --surface-n 20
//! cargo run --release -p shc-bench --bin experiments -- --fast --threads 0  # 0 = all CPUs
//! cargo run --release -p shc-bench --bin experiments -- --fast \
//!     --journal experiments.jsonl --metrics experiments-metrics.json
//! ```
//!
//! `--threads N` sets the fan-out for the parallel-scaling section
//! (`0` = all CPUs, `1` = serial, the default); the section also writes
//! `BENCH_parallel.json` to the repository root.
//!
//! `--batch auto|scalar|batched` picks the batched-engine policy for every
//! characterization problem (default `auto`: serial sweeps of supported
//! circuits run lanes in lockstep; `scalar` forces the per-simulation
//! path, `batched` asserts the lockstep path engages).
//!
//! `--journal <path>` records every traced contour point as one JSONL
//! event; `--metrics <path>` dumps end-of-run solver counters, histograms,
//! and span timings as JSON (and prints the human-readable summary).
//!
//! `--profile <path>` runs everything under an shc-prof profiler and
//! writes the phase report as JSON (plus a collapsed-stack `.folded`
//! flamegraph next to it); `--profile-detail step|iter` picks the
//! granularity.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use shc_obs::{Collector, FileSink, Metric, Sink};

use shc_bench::{Cell, Timing};
use shc_core::independent::{binary_search, newton, IndependentOptions, SkewAxis};
use shc_core::report::{CellReport, ContourTable, OverlayReport, SpeedupRow};
use shc_core::{
    surface, BatchPolicy, CharacterizationProblem, Parallelism, SeedOptions, SurfaceOptions,
    TracerOptions,
};

/// This binary exists to measure wall-clock (the paper's speedup table),
/// so it gets its own sanctioned timer beside shc-obs spans (clippy.toml).
#[allow(clippy::disallowed_methods)]
fn now() -> Instant {
    Instant::now()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let timing = if args.iter().any(|a| a == "--fast") {
        Timing::Fast
    } else {
        Timing::Paper
    };
    let surface_n: usize = args
        .iter()
        .position(|a| a == "--surface-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let threads_arg: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let parallelism = Parallelism::from_thread_arg(threads_arg);
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let batch: BatchPolicy = match flag_value("--batch").as_deref() {
        None => BatchPolicy::default(),
        Some(v) => match v.parse() {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("--batch: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let journal_path = flag_value("--journal");
    let metrics_path = flag_value("--metrics");
    let profile_path = flag_value("--profile");
    let profile_detail = match flag_value("--profile-detail").as_deref() {
        None | Some("step") => shc_prof::Detail::Step,
        Some("iter") => shc_prof::Detail::Iter,
        Some(other) => {
            eprintln!("--profile-detail must be step or iter, got '{other}'");
            return ExitCode::FAILURE;
        }
    };
    // A collector is always installed: its transient-run counter feeds
    // the end-of-run summary line on both the success and failure paths.
    let collector = match &journal_path {
        Some(path) => match FileSink::create(Path::new(path)) {
            Ok(sink) => {
                let sink: Arc<dyn Sink> = Arc::new(sink);
                Collector::with_sink(sink)
            }
            Err(e) => {
                eprintln!("cannot create --journal '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Collector::new(),
    };
    let profiler = profile_path
        .as_ref()
        .map(|_| shc_prof::Profiler::with_detail(profile_detail));

    let t0 = now();
    let result = {
        let _telemetry = shc_obs::install_scoped(&collector);
        let _profile = profiler.as_ref().map(shc_prof::install_scoped);
        run_experiments(
            timing,
            surface_n,
            parallelism,
            batch,
            &collector,
            journal_path.as_deref(),
            metrics_path.as_deref(),
        )
    };
    let wall_seconds = t0.elapsed().as_secs_f64();

    if let (Some(path), Some(profiler)) = (&profile_path, profiler) {
        let report = profiler.report("experiments");
        let folded_path = Path::new(path).with_extension("folded");
        let written = std::fs::write(path, report.to_json())
            .and_then(|()| std::fs::write(&folded_path, report.to_folded()));
        print!("\n{}", report.table());
        match written {
            Ok(()) => println!(
                "profile written to {path} (flamegraph: {})",
                folded_path.display()
            ),
            Err(e) => eprintln!("cannot write --profile '{path}': {e}"),
        }
    }

    // One-line accounting on *both* paths: a run that dies mid-table
    // should still say how much simulation budget it burned and where
    // it stopped.
    let simulations = collector.counter(Metric::TransientRuns);
    match result {
        Ok(()) => {
            println!("experiments: {simulations} transient simulations in {wall_seconds:.1} s");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "experiments: FAILED after {simulations} transient simulations in {wall_seconds:.1} s"
            );
            ExitCode::FAILURE
        }
    }
}

/// The evaluation pipeline proper. Telemetry/profiling guards are
/// installed by `main`, which also owns the end-of-run accounting line.
#[allow(clippy::too_many_arguments)]
fn run_experiments(
    timing: Timing,
    surface_n: usize,
    parallelism: Parallelism,
    batch: BatchPolicy,
    collector: &Collector,
    journal_path: Option<&str>,
    metrics_path: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let n_points = 40;

    println!("=== shc experiments: DAC 2007 reproduction ({timing:?} clock) ===\n");

    // ---------------------------------------------------------------- //
    // Characteristic delays (paper Sec. IV-A/IV-B prose).
    // ---------------------------------------------------------------- //
    println!("--- Characterization targets (paper: TSPC t_CQ = 298 ps @50%, r = 1.25 V;");
    println!("---                          C2MOS 90% criterion, r = 0.25 V) ---");
    let mut problems: Vec<(Cell, CharacterizationProblem)> = Vec::new();
    for cell in Cell::ALL {
        let problem = cell.problem_with_batch(timing, batch)?;
        let report = CellReport {
            cell: cell.name().to_string(),
            t_cq: problem.characteristic_delay(),
            t_f: problem.t_f(),
            r: problem.r(),
            degradation: problem.degradation(),
        };
        println!("{report}");
        problems.push((cell, problem));
    }

    // ---------------------------------------------------------------- //
    // FIG 8 / FIG 12a: Euler-Newton contours.
    // FIG 9/10, 12b: surface + overlay.
    // TBL-SPEEDUP: trace vs surface, simulations and wall clock.
    // ---------------------------------------------------------------- //
    println!("\n--- Contours, overlays, speedups (paper: ~26x at n = 40; 2-3 MPNR iters/pt) ---");
    // Figure contours stop at the pure-setup asymptote (the paper's plots
    // cover the bend region: setup 150-350 ps in its Fig. 8).
    let figure_tracer = TracerOptions {
        min_tangent_hold: 0.05,
        ..TracerOptions::default()
    };
    for (cell, problem) in &problems {
        problem.reset_simulation_count();
        let t0 = now();
        let contour =
            problem.trace_contour_with(n_points, &SeedOptions::default(), &figure_tracer)?;
        let trace_seconds = t0.elapsed().as_secs_f64();
        let trace_sims = problem.simulation_count();

        println!("\n{}", ContourTable::from_contour(cell.name(), &contour));

        problem.reset_simulation_count();
        let grid = SurfaceOptions::around_contour(&contour, surface_n);
        let t0 = now();
        let surf = surface::generate(problem, &grid)?;
        let surface_seconds = t0.elapsed().as_secs_f64();
        let surface_contour = surf.contour_at(problem.r());

        let row = SpeedupRow {
            cell: cell.name().to_string(),
            n_points,
            points_traced: contour.points().len(),
            trace_simulations: trace_sims,
            surface_simulations: surf.simulations(),
            trace_seconds: Some(trace_seconds),
            surface_seconds: Some(surface_seconds),
            mean_corrector_iterations: contour.mean_corrector_iterations(),
        };
        println!("{row}");
        let overlay = OverlayReport::compare(cell.name(), &contour, &surface_contour, surface_n);
        println!("overlay: {overlay}");
    }

    // ---------------------------------------------------------------- //
    // Speedup scaling: linear in n (paper Sec. I: O(n) vs O(n^2)).
    // ---------------------------------------------------------------- //
    println!("\n--- Speedup vs contour resolution n (paper: speedup grows linearly in n) ---");
    println!(
        "{:<8} {:>4} {:>12} {:>14} {:>10}",
        "cell", "n", "trace sims", "surface sims", "speedup"
    );
    for (cell, problem) in &problems {
        if !Cell::PAPER.iter().any(|c| c.name() == cell.name()) {
            continue;
        }
        for n in [10usize, 20, 40] {
            problem.reset_simulation_count();
            let contour = problem.trace_contour(n)?;
            let trace_sims = problem.simulation_count();
            let surface_sims = n * n; // by construction of the baseline
            println!(
                "{:<8} {:>4} {:>12} {:>14} {:>9.1}x",
                cell.name(),
                n,
                trace_sims,
                surface_sims,
                surface_sims as f64 / trace_sims as f64,
            );
            let _ = contour;
        }
    }

    // ---------------------------------------------------------------- //
    // TBL-INDEP: independent characterization, bisection vs Newton
    // (paper ref [6]: 4-10x).
    // ---------------------------------------------------------------- //
    println!("\n--- Independent characterization (paper ref [6]: Newton 4-10x over bisection) ---");
    println!(
        "{:<8} {:>6} {:>12} {:>6} {:>12} {:>6} {:>9}",
        "cell", "axis", "bisect(ps)", "sims", "newton(ps)", "sims", "speedup"
    );
    for (cell, problem) in &problems {
        for axis in [SkewAxis::Setup, SkewAxis::Hold] {
            let opts = IndependentOptions {
                tol: 0.1e-12,
                ..IndependentOptions::default()
            };
            problem.reset_simulation_count();
            let bis = binary_search(problem, axis, &opts)?;
            let warm = IndependentOptions {
                initial_guess: Some(bis.skew * 0.85),
                ..opts
            };
            problem.reset_simulation_count();
            let nwt = newton(problem, axis, &warm)?;
            println!(
                "{:<8} {:>6} {:>12.2} {:>6} {:>12.2} {:>6} {:>8.1}x",
                cell.name(),
                format!("{axis:?}"),
                bis.skew * 1e12,
                bis.simulations,
                nwt.skew * 1e12,
                nwt.simulations,
                bis.simulations as f64 / nwt.simulations as f64,
            );
        }
    }

    // ---------------------------------------------------------------- //
    // BENCH-PARALLEL: serial vs fanned-out surface generation.
    // ---------------------------------------------------------------- //
    let worker_threads = parallelism.thread_count();
    println!(
        "\n--- Parallel scaling: TSPC surface, serial vs {} worker thread(s) ---",
        worker_threads
    );
    let parallel_n = 20usize;
    let (_, tspc) = problems
        .iter()
        .find(|(cell, _)| cell.name() == "tspc")
        .expect("tspc fixture exists");
    let contour = tspc.trace_contour(8)?;
    let grid = SurfaceOptions::around_contour(&contour, parallel_n);

    let t0 = now();
    let serial_surface = surface::generate(tspc, &grid)?;
    let serial_seconds = t0.elapsed().as_secs_f64();

    let t0 = now();
    let fanned_surface = surface::generate(tspc, &grid.with_parallelism(parallelism))?;
    let parallel_seconds = t0.elapsed().as_secs_f64();

    let bitwise_identical = serial_surface.values() == fanned_surface.values();
    let speedup = serial_seconds / parallel_seconds;
    println!(
        "n = {parallel_n} ({sims} sims): serial {serial_seconds:.3} s, \
         {worker_threads} thread(s) {parallel_seconds:.3} s, speedup {speedup:.2}x, \
         bitwise identical: {bitwise_identical}",
        sims = serial_surface.simulations(),
    );

    // Per-simulation costs make batched gains attributable: the serial
    // figure reflects the batched engine whenever the policy engages it,
    // so wall/sims is the honest per-transient price on one core.
    let json = format!(
        "{{\n  \"bench\": \"parallel_surface_generation\",\n  \"cell\": \"tspc\",\n  \
         \"clock\": \"{timing:?}\",\n  \"batch_policy\": \"{batch}\",\n  \
         \"surface_n\": {parallel_n},\n  \
         \"grid_simulations\": {sims},\n  \"host_cpus\": {cpus},\n  \
         \"worker_threads\": {worker_threads},\n  \
         \"serial_seconds\": {serial_seconds:.6},\n  \
         \"parallel_seconds\": {parallel_seconds:.6},\n  \
         \"serial_seconds_per_sim\": {serial_per_sim:.9},\n  \
         \"parallel_seconds_per_sim\": {parallel_per_sim:.9},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"bitwise_identical\": {bitwise_identical}\n}}\n",
        sims = serial_surface.simulations(),
        cpus = Parallelism::Auto.thread_count(),
        serial_per_sim = serial_seconds / serial_surface.simulations() as f64,
        parallel_per_sim = parallel_seconds / serial_surface.simulations() as f64,
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(json_path, json)?;
    println!("wrote {json_path}");

    collector.flush()?;
    if metrics_path.is_some() || journal_path.is_some() {
        let snapshot = collector.snapshot();
        if let Some(path) = metrics_path {
            std::fs::write(path, snapshot.to_json())?;
            println!("\nwrote {path}");
        }
        if let Some(path) = journal_path {
            println!("wrote {path}");
        }
        println!("\n{snapshot}");
    }

    println!("\ndone.");
    Ok(())
}
