//! Batched-vs-scalar wall-time benchmark for CI.
//!
//! One measurement, two gates:
//!
//! 1. **Identity**: the 400-simulation TSPC surface sweep (20×20 grid
//!    around an 8-point contour) generated through the lockstep batched
//!    engine must be *bitwise* identical to the scalar sweep — every grid
//!    value compared by `to_bits`.
//! 2. **Speedup**: the batched sweep must be at least `--min-speedup`
//!    (default [`MIN_BATCHED_SPEEDUP`]) times faster than the scalar one
//!    on a single core — the SoA/lockstep payoff on 1-CPU hosts where
//!    threading cannot help.
//!
//! Writes `BENCH_batched.json` with the measured wall times and the
//! per-simulation costs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p shc-bench --bin bench_batched
//! cargo run --release -p shc-bench --bin bench_batched -- --out BENCH_batched.json
//! cargo run --release -p shc-bench --bin bench_batched -- --min-speedup 3.0
//! cargo run --release -p shc-bench --bin bench_batched -- --profile
//! ```
//!
//! `--profile` additionally runs one scalar and one batched sweep under an
//! `shc-prof` profiler and prints both phase tables — the attribution view
//! for chasing where the batched engine spends its time.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use shc_bench::{Cell, Timing};
use shc_core::{surface, BatchPolicy, SurfaceOptions};
use shc_obs::json;
use shc_spice::batch::DEFAULT_LANES;

/// Required batched speedup on the one-core surface sweep (ISSUE 9 /
/// ROADMAP item 2 target), overridable with `--min-speedup` so CI can
/// rehearse the gate's failure path without editing source.
const MIN_BATCHED_SPEEDUP: f64 = 3.0;
/// Grid points per axis: 20×20 = the 400-simulation sweep.
const GRID_N: usize = 20;
/// Contour points seeding the grid window.
const CONTOUR_POINTS: usize = 8;
/// Wall-time repetitions; the minimum is reported.
const REPS: usize = 3;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_batched: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// This binary exists to measure wall-clock (the batched-vs-scalar gate),
/// so it gets its own sanctioned timer beside shc-obs spans (clippy.toml).
#[allow(clippy::disallowed_methods)]
fn min_time<F: FnMut() -> Result<(), Box<dyn std::error::Error>>>(
    mut f: F,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f()?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = PathBuf::from(flag_value("--out").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched.json").to_string()
    }));
    let min_speedup: f64 = match flag_value("--min-speedup") {
        Some(v) => v.parse().map_err(|_| format!("bad --min-speedup '{v}'"))?,
        None => MIN_BATCHED_SPEEDUP,
    };

    let mut ok = true;
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", "shc-bench-batched-v1");
    json::push_str_field(&mut out, &mut first, "cell", "tspc");
    json::push_str_field(&mut out, &mut first, "clock", "fast");

    // The same cell on both paths; the policy is fixed per problem so the
    // surface driver's auto dispatch cannot blur the comparison.
    let scalar_problem = Cell::Tspc.problem_with_batch(Timing::Fast, BatchPolicy::Scalar)?;
    let batched_problem = Cell::Tspc.problem_with_batch(Timing::Fast, BatchPolicy::Batched)?;
    let contour = scalar_problem.trace_contour(CONTOUR_POINTS)?;
    let grid = SurfaceOptions::around_contour(&contour, GRID_N);

    // Gate 1: bitwise identity, lane for lane.
    let scalar_surface = surface::generate(&scalar_problem, &grid)?;
    let batched_surface = surface::generate(&batched_problem, &grid)?;
    let sims = scalar_surface.simulations();
    let mut mismatches = 0usize;
    for (row_s, row_b) in scalar_surface.values().iter().zip(batched_surface.values()) {
        for (s, b) in row_s.iter().zip(row_b) {
            if s.to_bits() != b.to_bits() {
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        ok = false;
        eprintln!("surface: {mismatches}/{sims} grid values differ from the scalar sweep");
    }

    if args.iter().any(|a| a == "--profile") {
        for (label, problem) in [("scalar", &scalar_problem), ("batched", &batched_problem)] {
            let profiler = shc_prof::Profiler::with_detail(shc_prof::Detail::Iter);
            {
                let _guard = shc_prof::install_scoped(&profiler);
                surface::generate(problem, &grid)?;
            }
            print!("\n{}", profiler.report(label).table());
        }
    }

    // Gate 2: one-core wall-time speedup.
    let t_scalar = min_time(|| Ok(surface::generate(&scalar_problem, &grid).map(|_| ())?))?;
    let t_batched = min_time(|| Ok(surface::generate(&batched_problem, &grid).map(|_| ())?))?;
    let speedup = t_scalar / t_batched;

    json::push_u64_field(&mut out, &mut first, "surface_n", GRID_N as u64);
    json::push_u64_field(&mut out, &mut first, "grid_simulations", sims as u64);
    json::push_u64_field(&mut out, &mut first, "lanes", DEFAULT_LANES as u64);
    json::push_f64_field(&mut out, &mut first, "surface_scalar_seconds", t_scalar);
    json::push_f64_field(&mut out, &mut first, "surface_batched_seconds", t_batched);
    json::push_f64_field(
        &mut out,
        &mut first,
        "scalar_seconds_per_sim",
        t_scalar / sims as f64,
    );
    json::push_f64_field(
        &mut out,
        &mut first,
        "batched_seconds_per_sim",
        t_batched / sims as f64,
    );
    json::push_f64_field(&mut out, &mut first, "batched_speedup", speedup);
    json::push_u64_field(&mut out, &mut first, "value_mismatches", mismatches as u64);
    json::push_f64_field(&mut out, &mut first, "min_speedup", min_speedup);
    println!(
        "surface (n = {GRID_N}, {sims} sims, {DEFAULT_LANES} lanes): \
         scalar {t_scalar:.3} s, batched {t_batched:.3} s — {speedup:.1}x, \
         bitwise identical: {}",
        mismatches == 0
    );
    if speedup < min_speedup {
        ok = false;
        eprintln!("surface: batched speedup {speedup:.2}x below the required {min_speedup}x");
    }

    out.push_str("}\n");
    std::fs::write(&out_path, &out)?;
    println!("wrote {}", out_path.display());
    if !ok {
        eprintln!("batched benchmark gate failed");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
