//! Perf-trajectory consolidation behind `bench history`.
//!
//! The repository's benchmark gates each write a standalone snapshot
//! (`BENCH_sparse.json`, `BENCH_parallel.json`, `BENCH_batched.json`,
//! `BENCH_baseline.json`)
//! that the next run overwrites, so there is no trend to look at. This
//! module folds the wall-clock figures of those snapshots into an
//! append-only `BENCH_history.jsonl` — one line per recorded run, tagged
//! with the git revision and a caller-supplied timestamp — and flags
//! throughput regressions against the previous entry.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use shc_obs::json;

/// Schema tag stamped into every history line.
pub const SCHEMA: &str = "shc-bench-history-v1";

/// Relative slowdown above which a metric is flagged, e.g. `0.10` = 10%.
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// History file name, relative to the repository root.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// The wall-clock metrics tracked across runs as `(key, source file)`.
/// All are seconds, so lower is faster for every one of them.
pub const TRACKED: &[(&str, &str)] = &[
    ("bank_dense_seconds", "BENCH_sparse.json"),
    ("bank_sparse_seconds", "BENCH_sparse.json"),
    ("tspc_dense_seconds", "BENCH_sparse.json"),
    ("tspc_auto_seconds", "BENCH_sparse.json"),
    ("c2mos_dense_seconds", "BENCH_sparse.json"),
    ("c2mos_auto_seconds", "BENCH_sparse.json"),
    ("serial_seconds", "BENCH_parallel.json"),
    ("parallel_seconds", "BENCH_parallel.json"),
    ("surface_scalar_seconds", "BENCH_batched.json"),
    ("surface_batched_seconds", "BENCH_batched.json"),
];

/// One recorded benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Git revision the run was taken at (caller-supplied).
    pub rev: String,
    /// Timestamp of the run (caller-supplied, any stable format).
    pub timestamp: String,
    /// `(metric, seconds)` pairs, in [`TRACKED`] order; metrics whose
    /// source snapshot was missing are simply absent.
    pub metrics: Vec<(String, f64)>,
}

impl HistoryEntry {
    /// Harvests the tracked metrics from the `BENCH_*.json` snapshots
    /// under `root`. Missing snapshot files are skipped (their metrics
    /// are absent from the entry), so a partial bench run still records.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than "not found".
    pub fn collect(root: &Path, rev: &str, timestamp: &str) -> io::Result<HistoryEntry> {
        let mut metrics = Vec::new();
        let mut cache: Vec<(&str, Option<String>)> = Vec::new();
        for &(key, file) in TRACKED {
            let body = match cache.iter().find(|(f, _)| *f == file) {
                Some((_, body)) => body.clone(),
                None => {
                    let body = match fs::read_to_string(root.join(file)) {
                        Ok(b) => Some(b),
                        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                        Err(e) => return Err(e),
                    };
                    cache.push((file, body.clone()));
                    body
                }
            };
            if let Some(v) = body.as_deref().and_then(|b| json::scan_f64(b, key)) {
                metrics.push((key.to_string(), v));
            }
        }
        Ok(HistoryEntry {
            rev: rev.to_string(),
            timestamp: timestamp.to_string(),
            metrics,
        })
    }

    /// Looks up one metric's seconds.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Renders the entry as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        json::push_str_field(&mut s, &mut first, "schema", SCHEMA);
        json::push_str_field(&mut s, &mut first, "rev", &self.rev);
        json::push_str_field(&mut s, &mut first, "timestamp", &self.timestamp);
        for (key, v) in &self.metrics {
            json::push_f64_field(&mut s, &mut first, key, *v);
        }
        s.push('}');
        s
    }

    /// Parses a line written by [`HistoryEntry::to_json_line`].
    #[must_use]
    pub fn from_json(line: &str) -> Option<HistoryEntry> {
        let schema = scan_string(line, "schema")?;
        if schema != SCHEMA {
            return None;
        }
        let mut metrics = Vec::new();
        for &(key, _) in TRACKED {
            if let Some(v) = json::scan_f64(line, key) {
                metrics.push((key.to_string(), v));
            }
        }
        Some(HistoryEntry {
            rev: scan_string(line, "rev")?,
            timestamp: scan_string(line, "timestamp")?,
            metrics,
        })
    }
}

/// Flags every tracked metric that slowed down by more than `threshold`
/// relative to `previous`. Returns human-readable lines, one per
/// regression; metrics absent from either entry are not compared.
#[must_use]
pub fn regressions(previous: &HistoryEntry, current: &HistoryEntry, threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    for (key, cur) in &current.metrics {
        let Some(prev) = previous.metric(key) else {
            continue;
        };
        if prev <= 0.0 {
            continue;
        }
        let ratio = cur / prev - 1.0;
        if ratio > threshold {
            let mut line = String::new();
            let _ = write!(
                line,
                "REGRESSION {key}: {cur:.3} s vs {prev:.3} s at {} ({:+.1}%, threshold {:.0}%)",
                previous.rev,
                100.0 * ratio,
                100.0 * threshold
            );
            out.push(line);
        }
    }
    out
}

/// The last parseable entry of a history file's contents.
#[must_use]
pub fn last_entry(body: &str) -> Option<HistoryEntry> {
    body.lines()
        .rev()
        .find_map(|line| HistoryEntry::from_json(line.trim()))
}

/// Records one run: harvests the snapshots under `root`, appends the
/// entry to `BENCH_history.jsonl`, and returns the entry plus any
/// regression flags against the previous recorded entry.
///
/// # Errors
///
/// Propagates snapshot-read and history-append I/O errors.
pub fn record(root: &Path, rev: &str, timestamp: &str) -> io::Result<(HistoryEntry, Vec<String>)> {
    let entry = HistoryEntry::collect(root, rev, timestamp)?;
    let path = root.join(HISTORY_FILE);
    let previous = match fs::read_to_string(&path) {
        Ok(body) => last_entry(&body),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    let flags = previous
        .as_ref()
        .map(|prev| regressions(prev, &entry, REGRESSION_THRESHOLD))
        .unwrap_or_default();
    let mut body = entry.to_json_line();
    body.push('\n');
    let mut existing = match fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    existing.push_str(&body);
    fs::write(&path, existing)?;
    Ok((entry, flags))
}

/// Scans a JSON string value (the writer never emits escapes in these
/// fields: revisions and timestamps are plain tokens).
fn scan_string(text: &str, key: &str) -> Option<String> {
    let raw = json::raw_value(text, key)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rev: &str, bank_sparse: f64, serial: f64) -> HistoryEntry {
        HistoryEntry {
            rev: rev.to_string(),
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            metrics: vec![
                ("bank_sparse_seconds".to_string(), bank_sparse),
                ("serial_seconds".to_string(), serial),
            ],
        }
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let e = entry("abc1234", 0.114, 1.48);
        let back = HistoryEntry::from_json(&e.to_json_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn regressions_flag_only_slowdowns_past_threshold() {
        let prev = entry("aaa", 1.0, 1.0);
        // +9% is inside the threshold, +11% is not; speedups never flag.
        assert!(regressions(&prev, &entry("bbb", 1.09, 0.5), 0.10).is_empty());
        let flags = regressions(&prev, &entry("ccc", 1.11, 0.5), 0.10);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].contains("bank_sparse_seconds"), "{flags:?}");
        assert!(flags[0].contains("REGRESSION"));
    }

    #[test]
    fn incomparable_metrics_are_skipped() {
        let mut prev = entry("aaa", 1.0, 1.0);
        prev.metrics.retain(|(k, _)| k != "serial_seconds");
        let flags = regressions(&prev, &entry("bbb", 1.0, 99.0), 0.10);
        assert!(flags.is_empty(), "{flags:?}");
    }

    #[test]
    fn record_appends_and_flags_against_previous_entry() {
        let dir = std::env::temp_dir().join(format!("shc_bench_history_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_sparse.json"),
            "{\"schema\":\"shc-bench-sparse-v1\",\"bank_sparse_seconds\":0.10,\"bank_dense_seconds\":0.80}",
        )
        .unwrap();
        // BENCH_parallel.json intentionally absent: its metrics skip.
        let (first, flags) = record(&dir, "rev1", "t1").unwrap();
        assert!(flags.is_empty());
        assert_eq!(first.metric("bank_sparse_seconds"), Some(0.10));
        assert_eq!(first.metric("serial_seconds"), None);

        std::fs::write(
            dir.join("BENCH_sparse.json"),
            "{\"schema\":\"shc-bench-sparse-v1\",\"bank_sparse_seconds\":0.15,\"bank_dense_seconds\":0.80}",
        )
        .unwrap();
        let (_, flags) = record(&dir, "rev2", "t2").unwrap();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("rev1"));

        let body = std::fs::read_to_string(dir.join(HISTORY_FILE)).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert_eq!(last_entry(&body).unwrap().rev, "rev2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
