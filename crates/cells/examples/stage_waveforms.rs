//! Prints the internal stage waveforms of the TSPC register around a
//! successful capture — useful for understanding how the 9T topology
//! latches (stage X samples, Y evaluates, Q is clock-protected).
//!
//! Run with: `cargo run -p shc-cells --release --example stage_waveforms`

use shc_cells::{tspc_register_with, ClockSpec, Technology};
use shc_spice::transient::{TransientAnalysis, TransientOptions};
use shc_spice::waveform::Params;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default_250nm();
    let reg = tspc_register_with(&tech, ClockSpec::fast());
    let edge = reg.active_edge_time();
    println!(
        "active edge at {:.3} ns; data pulse: Vdd -> 0 -> Vdd (capture 0)\n",
        edge * 1e9
    );

    let opts = TransientOptions::builder(edge + 1.0e-9).dt(4e-12).build();
    let res = TransientAnalysis::new(reg.circuit(), opts).run(&Params::new(0.5e-9, 0.5e-9))?;
    let names = ["d", "clk", "x", "y", "q"];
    let idx: Vec<usize> = names
        .iter()
        .map(|n| {
            reg.node(n)
                .and_then(|node| node.unknown())
                .expect("known internal node")
        })
        .collect();
    print!("{:>9}", "t(ns)");
    for n in &names {
        print!("{n:>8}");
    }
    println!();
    let times = res.times();
    for k in (0..times.len()).step_by((times.len() / 48).max(1)) {
        print!("{:9.3}", times[k] * 1e9);
        for &i in &idx {
            print!("{:8.3}", res.states()[k][i]);
        }
        println!();
    }
    Ok(())
}
