use serde::{Deserialize, Serialize};
use shc_spice::MosParams;

/// A technology card: device model parameters, supply, and default
/// geometry/parasitics for cell construction.
///
/// The default card is a generic 0.25 µm-class, 2.5 V process — the same
/// supply and clock era as the DAC 2007 paper's experiments. Absolute
/// delays depend on these values, but the characterization algorithm and
/// the contour *shape* do not.
///
/// # Example
///
/// ```rust
/// use shc_cells::Technology;
///
/// let tech = Technology::default_250nm();
/// assert_eq!(tech.vdd, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// NMOS model card.
    pub nmos: MosParams,
    /// PMOS model card.
    pub pmos: MosParams,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Minimum (default) channel length in meters.
    pub lmin: f64,
    /// Default NMOS width in meters.
    pub wn: f64,
    /// Default PMOS width in meters (wider to balance mobility).
    pub wp: f64,
    /// Parasitic capacitance added to every internal node, in farads.
    pub cnode: f64,
    /// Load capacitance at the register output, in farads.
    pub cload: f64,
}

impl Technology {
    /// The default 0.25 µm / 2.5 V technology.
    pub fn default_250nm() -> Self {
        Technology {
            nmos: MosParams::nmos_250nm(),
            pmos: MosParams::pmos_250nm(),
            vdd: 2.5,
            lmin: 0.25e-6,
            wn: 1.0e-6,
            wp: 2.5e-6,
            cnode: 3e-15,
            cload: 20e-15,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::default_250nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_card_is_sane() {
        let t = Technology::default();
        assert!(t.vdd > 0.0);
        assert!(t.wn > 0.0 && t.wp > t.wn, "pmos should be wider");
        assert!(t.nmos.vt0 > 0.0 && t.nmos.vt0 < t.vdd / 2.0);
        assert!(t.cload > t.cnode);
        assert_eq!(t, Technology::default_250nm());
    }
}
