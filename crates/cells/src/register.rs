//! Register/latch netlist builders.

use serde::{Deserialize, Serialize};
use shc_spice::waveform::{DataPulse, Pulse};
use shc_spice::{Capacitor, Circuit, Mosfet, Node, RampShape, VoltageSource, Waveform};

use crate::Technology;

/// Clock stimulus description.
///
/// [`ClockSpec::paper`] reproduces the paper's timing exactly: 10 ns period,
/// 1 ns initial delay, 0.1 ns rise/fall, 2.5 V swing, with the *second*
/// rising edge (50% point at 11.05 ns) as the measured active edge — the
/// first edge initializes the internal dynamic nodes. [`ClockSpec::fast`]
/// is a compressed variant for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// Clock period in seconds.
    pub period: f64,
    /// Initial delay before the first rising ramp, in seconds.
    pub delay: f64,
    /// Rise time in seconds.
    pub rise: f64,
    /// Fall time in seconds.
    pub fall: f64,
    /// High-pulse width in seconds.
    pub width: f64,
    /// Index of the rising edge used as the measured active edge.
    pub active_edge_index: usize,
}

impl ClockSpec {
    /// The paper's clock: 10 ns period, 1 ns delay, 0.1 ns edges, active
    /// edge = second rising edge (11.05 ns at its 50% point).
    pub fn paper() -> Self {
        ClockSpec {
            period: 10e-9,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 4.9e-9,
            active_edge_index: 1,
        }
    }

    /// A compressed clock for fast unit tests: 3 ns period, active edge =
    /// second rising edge (3.25 ns), so one full initialization cycle still
    /// precedes the measurement.
    pub fn fast() -> Self {
        ClockSpec {
            period: 3e-9,
            delay: 0.2e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 1.4e-9,
            active_edge_index: 1,
        }
    }

    /// Time of the 50% crossing of the measured active (rising) edge.
    pub fn active_edge_time(&self) -> f64 {
        self.delay + self.rise / 2.0 + self.active_edge_index as f64 * self.period
    }

    /// Time of the 50% crossing of the `k`-th *falling* edge.
    pub fn falling_edge_time(&self, k: usize) -> f64 {
        self.delay + self.rise + self.width + self.fall / 2.0 + k as f64 * self.period
    }

    /// Converts to a [`Pulse`] waveform of the given swing.
    pub fn to_pulse(&self, vdd: f64) -> Pulse {
        Pulse {
            v0: 0.0,
            v1: vdd,
            delay: self.delay,
            rise: self.rise,
            fall: self.fall,
            width: self.width,
            period: self.period,
            shape: RampShape::Smoothstep,
        }
    }

    /// Converts to the *inverted* pulse delayed by `skew` (the `clk̄`
    /// generation the paper uses for the C²MOS register).
    pub fn to_inverted_pulse(&self, vdd: f64, skew: f64) -> Pulse {
        Pulse {
            v0: vdd,
            v1: 0.0,
            delay: self.delay + skew,
            rise: self.rise,
            fall: self.fall,
            width: self.width,
            period: self.period,
            shape: RampShape::Smoothstep,
        }
    }
}

/// Direction of the monitored output transition for the configured data
/// capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputTransition {
    /// Output rises toward Vdd.
    Rising,
    /// Output falls toward ground.
    Falling,
}

/// Which cell a [`Register`] was built as (used to rebuild with a different
/// clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellKind {
    Tspc,
    C2mos,
    Tg,
    DLatch,
    Saff,
    PulsedLatch,
    /// N-bit register bank (carries its bit width for rebuilds).
    Bank(usize),
    Custom,
}

/// A complete register/latch characterization fixture: transistor netlist
/// with embedded clock and data sources, plus measurement metadata.
#[derive(Debug)]
pub struct Register {
    circuit: Circuit,
    output: Node,
    data: DataPulse,
    clock: ClockSpec,
    vdd: f64,
    name: &'static str,
    transition: OutputTransition,
    capture_fraction: f64,
    kind: CellKind,
    tech: Technology,
    active_edge_time: f64,
    reference_setup_hint: Option<f64>,
}

impl Register {
    /// The transistor-level netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The monitored output node (`Q`).
    pub fn output(&self) -> Node {
        self.output
    }

    /// MNA unknown index of the output node.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the output node is never ground.
    pub fn output_unknown(&self) -> usize {
        self.output.unknown().expect("output node is never ground")
    }

    /// The τs/τh-parameterized data pulse template.
    pub fn data_pulse(&self) -> &DataPulse {
        &self.data
    }

    /// The clock stimulus description.
    pub fn clock(&self) -> &ClockSpec {
        &self.clock
    }

    /// Supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Cell name (e.g. `"tspc"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Direction of the monitored output transition.
    pub fn transition(&self) -> OutputTransition {
        self.transition
    }

    /// Default capture fraction: the output is considered "arrived" when it
    /// completes this fraction of its swing (0.5 for TSPC, 0.9 for C²MOS,
    /// following the paper's Sec. IV).
    pub fn capture_fraction(&self) -> f64 {
        self.capture_fraction
    }

    /// Time of the 50% crossing of the measured active edge.
    pub fn active_edge_time(&self) -> f64 {
        self.active_edge_time
    }

    /// Suggested *setup* skew for the reference (characteristic-delay)
    /// measurement, if the cell needs one.
    ///
    /// Edge-triggered registers return `None` (any generous skew works).
    /// Level-sensitive latches are transparent before the closing edge, so
    /// their reference capture must arrive *near* the edge for a
    /// clock-referenced delay to exist; they suggest a small setup skew.
    pub fn reference_setup_hint(&self) -> Option<f64> {
        self.reference_setup_hint
    }

    /// The output level corresponding to completing `fraction` of the
    /// output swing (the paper's `r`).
    ///
    /// For a rising output this is `fraction·Vdd`; for a falling output,
    /// `(1 − fraction)·Vdd` (e.g. the paper's 0.25 V for the C²MOS at 90%).
    pub fn target_level(&self, fraction: f64) -> f64 {
        match self.transition {
            OutputTransition::Rising => fraction * self.vdd,
            OutputTransition::Falling => (1.0 - fraction) * self.vdd,
        }
    }

    /// Looks up a named internal node (for probing/examples).
    pub fn node(&self, name: &str) -> Option<Node> {
        self.circuit.find_node(name)
    }

    /// Rebuilds the same cell with a different clock specification.
    ///
    /// # Panics
    ///
    /// Panics for [`Register::custom`] fixtures — their netlists embed the
    /// stimulus and cannot be rebuilt; construct a new fixture instead.
    #[must_use]
    pub fn with_clock(&self, clock: ClockSpec) -> Register {
        match self.kind {
            CellKind::Tspc => tspc_register_with(&self.tech, clock),
            CellKind::C2mos => c2mos_register_with(&self.tech, clock, C2MOS_CLKB_SKEW),
            CellKind::Tg => tg_register_with(&self.tech, clock),
            CellKind::DLatch => d_latch_with(&self.tech, clock),
            CellKind::Saff => crate::extra::saff_register_with(&self.tech, clock),
            CellKind::PulsedLatch => crate::extra::pulsed_latch_with(&self.tech, clock),
            CellKind::Bank(bits) => crate::bank::register_bank_with(&self.tech, clock, bits),
            CellKind::Custom => {
                panic!("custom registers embed their stimulus; rebuild the fixture instead")
            }
        }
    }

    /// Wraps an externally built netlist (e.g. from
    /// [`shc_spice::netlist::parse`]) as a characterization fixture.
    ///
    /// The circuit must already contain the clock source and a
    /// τs/τh-parameterized data source ([`shc_spice::Waveform::Data`],
    /// written `DATA(...)` in a SPICE deck) whose `t_edge` equals
    /// `active_edge_time`. `clock_period` drives the heuristics that pick
    /// reference skews and settle margins.
    ///
    /// # Panics
    ///
    /// Panics if `output` is the ground node or the timing arguments are
    /// not positive and finite.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        circuit: Circuit,
        output: Node,
        vdd: f64,
        transition: OutputTransition,
        capture_fraction: f64,
        active_edge_time: f64,
        clock_period: f64,
    ) -> Register {
        assert!(!output.is_ground(), "output node must not be ground");
        assert!(
            vdd > 0.0
                && active_edge_time > 0.0
                && clock_period > 0.0
                && active_edge_time.is_finite()
                && clock_period.is_finite(),
            "custom register: vdd, active edge time and period must be positive and finite"
        );
        let clock = ClockSpec {
            period: clock_period,
            delay: (active_edge_time - 0.05e-9).max(0.0),
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: clock_period * 0.49,
            active_edge_index: 0,
        };
        let (rest, active) = match transition {
            OutputTransition::Rising => (vdd, 0.0),
            OutputTransition::Falling => (0.0, vdd),
        };
        let data = DataPulse {
            v_rest: rest,
            v_active: active,
            t_edge: active_edge_time,
            rise: DATA_EDGE_TIME,
            fall: DATA_EDGE_TIME,
            shape: RampShape::Smoothstep,
        };
        Register {
            circuit,
            output,
            data,
            clock,
            vdd,
            name: "custom",
            transition,
            capture_fraction,
            kind: CellKind::Custom,
            tech: Technology::default_250nm(),
            active_edge_time,
            reference_setup_hint: None,
        }
    }
}

/// The paper's clk̄ delay for the C²MOS register (Sec. IV-B): 0.3 ns.
pub const C2MOS_CLKB_SKEW: f64 = 0.3e-9;

/// Rise/fall time of the data pulse edges (same as the clock edges).
const DATA_EDGE_TIME: f64 = 0.1e-9;

fn nmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> Mosfet {
    Mosfet::new(name, d, g, s, tech.nmos, w, tech.lmin)
}

fn pmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> Mosfet {
    Mosfet::new(name, d, g, s, tech.pmos, w, tech.lmin)
}

pub(crate) struct CellBase {
    pub(crate) circuit: Circuit,
    pub(crate) vdd_node: Node,
    pub(crate) clk: Node,
    pub(crate) d: Node,
    pub(crate) data: DataPulse,
}

/// Internal constructor bundle for [`Register`] (used by the cell builders
/// in this crate, including the extra topologies).
#[derive(Debug)]
pub(crate) struct RegisterParts {
    pub(crate) circuit: Circuit,
    pub(crate) output: Node,
    pub(crate) data: DataPulse,
    pub(crate) clock: ClockSpec,
    pub(crate) vdd: f64,
    pub(crate) name: &'static str,
    pub(crate) transition: OutputTransition,
    pub(crate) capture_fraction: f64,
    pub(crate) tech: Technology,
    pub(crate) active_edge_time: f64,
    pub(crate) reference_setup_hint: Option<f64>,
}

impl Register {
    pub(crate) fn from_parts(parts: RegisterParts) -> Register {
        let kind = match parts.name {
            "saff" => CellKind::Saff,
            "pulsed_latch" => CellKind::PulsedLatch,
            _ => CellKind::Custom,
        };
        Register::from_parts_with_kind(parts, kind)
    }

    pub(crate) fn from_parts_with_kind(parts: RegisterParts, kind: CellKind) -> Register {
        Register {
            circuit: parts.circuit,
            output: parts.output,
            data: parts.data,
            clock: parts.clock,
            vdd: parts.vdd,
            name: parts.name,
            transition: parts.transition,
            capture_fraction: parts.capture_fraction,
            kind,
            tech: parts.tech,
            active_edge_time: parts.active_edge_time,
            reference_setup_hint: parts.reference_setup_hint,
        }
    }
}

/// Builds the shared scaffolding: supply, clock source, and the
/// τs/τh-parameterized data source centered on the measured rising edge.
pub(crate) fn cell_base(
    tech: &Technology,
    clock: &ClockSpec,
    data_rest: f64,
    data_active: f64,
) -> CellBase {
    cell_base_at(
        tech,
        clock,
        data_rest,
        data_active,
        clock.active_edge_time(),
    )
}

/// [`cell_base`] with an explicit data-pulse center time (latches close on
/// the falling edge, so their data pulse is centered there instead).
pub(crate) fn cell_base_at(
    tech: &Technology,
    clock: &ClockSpec,
    data_rest: f64,
    data_active: f64,
    t_edge: f64,
) -> CellBase {
    let mut circuit = Circuit::new();
    let vdd_node = circuit.node("vdd");
    let clk = circuit.node("clk");
    let d = circuit.node("d");
    circuit.add(VoltageSource::new(
        "Vdd",
        vdd_node,
        Circuit::GROUND,
        Waveform::dc(tech.vdd),
    ));
    circuit.add(VoltageSource::new(
        "Vclk",
        clk,
        Circuit::GROUND,
        Waveform::Pulse(clock.to_pulse(tech.vdd)),
    ));
    let data = DataPulse {
        v_rest: data_rest,
        v_active: data_active,
        t_edge,
        rise: DATA_EDGE_TIME,
        fall: DATA_EDGE_TIME,
        shape: RampShape::Smoothstep,
    };
    circuit.add(VoltageSource::new(
        "Vdata",
        d,
        Circuit::GROUND,
        Waveform::Data(data),
    ));
    CellBase {
        circuit,
        vdd_node,
        clk,
        d,
        data,
    }
}

fn add_inverter(
    c: &mut Circuit,
    tech: &Technology,
    name: &str,
    input: Node,
    output: Node,
    vdd: Node,
) {
    c.add(pmos(
        tech,
        &format!("{name}.mp"),
        output,
        input,
        vdd,
        tech.wp,
    ));
    c.add(nmos(
        tech,
        &format!("{name}.mn"),
        output,
        input,
        Circuit::GROUND,
        tech.wn,
    ));
}

/// Builds the paper's TSPC positive edge-triggered register (Fig. 6) with
/// the paper's clock timing.
///
/// Topology: the classic 9-transistor Yuan-Svensson true single-phase
/// clocked flip-flop — a p-latch input stage (clock-gated pull-up, so the
/// sampled value is protected once the clock is high), followed by two
/// n-latch stages (clock-gated pulldowns) that evaluate at the rising edge.
///
/// The data pulse captures a logic 0 (Vdd→0→Vdd around the active edge);
/// the monitored `q` output *rises* — matching the rising output waveforms
/// of the paper's Fig. 3 — and the 50% criterion applies (r = 1.25 V).
pub fn tspc_register(tech: &Technology) -> Register {
    tspc_register_with(tech, ClockSpec::paper())
}

/// [`tspc_register`] with an explicit clock specification.
pub fn tspc_register_with(tech: &Technology, clock: ClockSpec) -> Register {
    let mut base = cell_base(tech, &clock, tech.vdd, 0.0);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);
    let m1 = c.node("m1");
    let x = c.node("x");
    let y = c.node("y");
    let s2 = c.node("s2");
    let q = c.node("q");
    let s3 = c.node("s3");

    // Stage 1 (p-latch): transparent inverter of D while the clock is low;
    // pull-up blocked while high, so a captured low X cannot be undone.
    c.add(pmos(tech, "mp1a", m1, clk, vdd, tech.wp));
    c.add(pmos(tech, "mp1b", x, d, m1, tech.wp));
    c.add(nmos(tech, "mn1", x, d, Circuit::GROUND, tech.wn));

    // Stage 2 (n-latch): full inverter of X while the clock is high;
    // rise-only while low.
    c.add(pmos(tech, "mp2", y, x, vdd, tech.wp));
    c.add(nmos(tech, "mn2a", y, x, s2, 2.0 * tech.wn));
    c.add(nmos(tech, "mn2b", s2, clk, Circuit::GROUND, 2.0 * tech.wn));

    // Stage 3 (n-latch, output): evaluates ~Y at the rising edge; its
    // clock-gated pulldown prevents transparency during the low phase.
    c.add(pmos(tech, "mp3", q, y, vdd, tech.wp));
    c.add(nmos(tech, "mn3a", q, y, s3, 2.0 * tech.wn));
    c.add(nmos(tech, "mn3b", s3, clk, Circuit::GROUND, 2.0 * tech.wn));

    for (node, cap) in [
        (x, 2.0 * tech.cnode),
        (y, tech.cnode),
        (m1, tech.cnode / 3.0),
        (s2, tech.cnode / 3.0),
        (s3, tech.cnode / 3.0),
    ] {
        c.add(Capacitor::new(
            &format!("cpar_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            cap,
        ));
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "tspc",
        transition: OutputTransition::Rising,
        capture_fraction: 0.5,
        kind: CellKind::Tspc,
        tech: *tech,
        active_edge_time: clock.active_edge_time(),
        reference_setup_hint: None,
    }
}

/// Builds the paper's C²MOS positive edge-triggered master-slave register
/// (Fig. 11a) with the paper's clock timing and 0.3 ns `clk̄` delay.
///
/// The data pulse captures a logic 0 (Vdd→0→Vdd around the active edge);
/// the monitored `q` output falls, and — following the paper's Sec. IV-B —
/// the 90% criterion is the default (so the target level is 0.25 V for a
/// 2.5 V swing).
pub fn c2mos_register(tech: &Technology) -> Register {
    c2mos_register_with(tech, ClockSpec::paper(), C2MOS_CLKB_SKEW)
}

/// [`c2mos_register`] with explicit clock specification and `clk̄` skew.
pub fn c2mos_register_with(tech: &Technology, clock: ClockSpec, clkb_skew: f64) -> Register {
    let mut base = cell_base(tech, &clock, tech.vdd, 0.0);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);
    let clkb = c.node("clkb");
    c.add(VoltageSource::new(
        "Vclkb",
        clkb,
        Circuit::GROUND,
        Waveform::Pulse(clock.to_inverted_pulse(tech.vdd, clkb_skew)),
    ));

    let x = c.node("x");
    let q = c.node("q");
    let pm = c.node("pm");
    let nm = c.node("nm");
    let ps = c.node("ps");
    let ns = c.node("ns");

    // Master C²MOS inverter: transparent while CLK is low.
    c.add(pmos(tech, "mp1", pm, d, vdd, tech.wp));
    c.add(pmos(tech, "mp2", x, clk, pm, tech.wp));
    c.add(nmos(tech, "mn2", x, clkb, nm, tech.wn));
    c.add(nmos(tech, "mn1", nm, d, Circuit::GROUND, tech.wn));

    // Slave C²MOS inverter: transparent while CLK is high.
    c.add(pmos(tech, "mp3", ps, x, vdd, tech.wp));
    c.add(pmos(tech, "mp4", q, clkb, ps, tech.wp));
    c.add(nmos(tech, "mn4", q, clk, ns, tech.wn));
    c.add(nmos(tech, "mn3", ns, x, Circuit::GROUND, tech.wn));

    for (node, cap) in [
        (x, tech.cnode),
        (pm, tech.cnode / 3.0),
        (nm, tech.cnode / 3.0),
        (ps, tech.cnode / 3.0),
        (ns, tech.cnode / 3.0),
    ] {
        c.add(Capacitor::new(
            &format!("cpar_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            cap,
        ));
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "c2mos",
        transition: OutputTransition::Falling,
        capture_fraction: 0.9,
        kind: CellKind::C2mos,
        tech: *tech,
        active_edge_time: clock.active_edge_time(),
        reference_setup_hint: None,
    }
}

fn add_tgate(
    c: &mut Circuit,
    tech: &Technology,
    name: &str,
    a: Node,
    b: Node,
    n_gate: Node,
    p_gate: Node,
) {
    c.add(nmos(tech, &format!("{name}.mn"), a, n_gate, b, tech.wn));
    c.add(pmos(tech, &format!("{name}.mp"), a, p_gate, b, tech.wp));
}

/// Builds a static transmission-gate master-slave flip-flop (positive
/// edge-triggered) — an additional validation cell beyond the paper's two.
///
/// The `clk̄` is delayed by 0.1 ns, creating a small clock overlap and a
/// modest positive hold time. The data pulse captures a logic 1 and the
/// monitored output rises (50% criterion).
pub fn tg_register(tech: &Technology) -> Register {
    tg_register_with(tech, ClockSpec::paper())
}

/// [`tg_register`] with an explicit clock specification.
pub fn tg_register_with(tech: &Technology, clock: ClockSpec) -> Register {
    let mut base = cell_base(tech, &clock, 0.0, tech.vdd);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);
    let clkb = c.node("clkb");
    c.add(VoltageSource::new(
        "Vclkb",
        clkb,
        Circuit::GROUND,
        Waveform::Pulse(clock.to_inverted_pulse(tech.vdd, 0.1e-9)),
    ));

    let xm = c.node("xm");
    let xmb = c.node("xmb");
    let xmf = c.node("xmf");
    let ys = c.node("ys");
    let q = c.node("q");
    let qf = c.node("qf");

    // Master: transparent while CLK is low.
    add_tgate(c, tech, "tg1", d, xm, clkb, clk);
    add_inverter(c, tech, "inv_m1", xm, xmb, vdd);
    add_inverter(c, tech, "inv_m2", xmb, xmf, vdd);
    add_tgate(c, tech, "tg2", xmf, xm, clk, clkb);

    // Slave: transparent while CLK is high.
    add_tgate(c, tech, "tg3", xmb, ys, clk, clkb);
    add_inverter(c, tech, "inv_s1", ys, q, vdd);
    add_inverter(c, tech, "inv_s2", q, qf, vdd);
    add_tgate(c, tech, "tg4", qf, ys, clkb, clk);

    for node in [xm, xmb, xmf, ys, qf] {
        c.add(Capacitor::new(
            &format!("cpar_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            tech.cnode,
        ));
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "tg",
        transition: OutputTransition::Rising,
        capture_fraction: 0.5,
        kind: CellKind::Tg,
        tech: *tech,
        active_edge_time: clock.active_edge_time(),
        reference_setup_hint: None,
    }
}

/// Builds a level-sensitive dynamic D latch, transparent while the clock is
/// high. The active (latching) edge is the clock's *falling* edge; setup
/// and hold skews are measured against it.
pub fn d_latch(tech: &Technology) -> Register {
    d_latch_with(tech, ClockSpec::paper())
}

/// [`d_latch`] with an explicit clock specification.
pub fn d_latch_with(tech: &Technology, clock: ClockSpec) -> Register {
    // The latch closes at the falling edge: center the data pulse there.
    let falling_edge = clock.falling_edge_time(clock.active_edge_index);
    let mut base = cell_base_at(tech, &clock, 0.0, tech.vdd, falling_edge);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);
    let clkb = c.node("clkb");
    c.add(VoltageSource::new(
        "Vclkb",
        clkb,
        Circuit::GROUND,
        Waveform::Pulse(clock.to_inverted_pulse(tech.vdd, 0.0)),
    ));
    let x = c.node("x");
    let qb = c.node("qb");
    let q = c.node("q");
    add_tgate(c, tech, "tg1", d, x, clk, clkb);
    add_inverter(c, tech, "inv1", x, qb, vdd);
    add_inverter(c, tech, "inv2", qb, q, vdd);
    c.add(Capacitor::new("cpar_x", x, Circuit::GROUND, tech.cnode));
    c.add(Capacitor::new("cpar_qb", qb, Circuit::GROUND, tech.cnode));
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "dlatch",
        transition: OutputTransition::Rising,
        capture_fraction: 0.5,
        kind: CellKind::DLatch,
        tech: *tech,
        active_edge_time: falling_edge,
        // Transparent-high latch: the reference capture must reach the
        // output just after the closing edge, not long before it.
        reference_setup_hint: Some(0.12e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_spice::transient::{RecordMode, TransientAnalysis, TransientOptions};
    use shc_spice::waveform::Params;

    fn run_capture(reg: &Register, tau_s: f64, tau_h: f64, tstop: f64) -> f64 {
        let opts = TransientOptions::builder(tstop)
            .dt(4e-12)
            .record(RecordMode::Probe(reg.output_unknown()))
            .build();
        let res = TransientAnalysis::new(reg.circuit(), opts)
            .run(&Params::new(tau_s, tau_h))
            .expect("transient");
        res.final_state()[reg.output_unknown()]
    }

    #[test]
    fn clock_spec_edge_times() {
        let p = ClockSpec::paper();
        assert!((p.active_edge_time() - 11.05e-9).abs() < 1e-15);
        assert!((p.falling_edge_time(0) - 6.05e-9).abs() < 1e-15);
        let f = ClockSpec::fast();
        assert!(f.active_edge_time() < p.active_edge_time());
    }

    #[test]
    fn target_levels_follow_transition_direction() {
        let tech = Technology::default_250nm();
        let tspc = tspc_register_with(&tech, ClockSpec::fast());
        assert!((tspc.target_level(0.5) - 1.25).abs() < 1e-12);
        let c2 = c2mos_register_with(&tech, ClockSpec::fast(), C2MOS_CLKB_SKEW);
        assert!((c2.target_level(0.9) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn netlists_validate() {
        let tech = Technology::default_250nm();
        for reg in [
            tspc_register_with(&tech, ClockSpec::fast()),
            c2mos_register_with(&tech, ClockSpec::fast(), C2MOS_CLKB_SKEW),
            tg_register_with(&tech, ClockSpec::fast()),
            d_latch_with(&tech, ClockSpec::fast()),
        ] {
            reg.circuit().validate().unwrap_or_else(|e| {
                panic!("{} failed validation: {e}", reg.name());
            });
        }
    }

    #[test]
    fn tspc_captures_zero_with_generous_skews() {
        let tech = Technology::default_250nm();
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        let edge = reg.active_edge_time();
        // Measure shortly after the edge (the t_f regime): the rising q
        // output must have completed its transition.
        let v = run_capture(&reg, 0.5e-9, 0.5e-9, edge + 0.4e-9);
        assert!(v > 0.9 * tech.vdd, "tspc failed to capture 0: q = {v}");
    }

    #[test]
    fn tspc_fails_with_hopeless_skews() {
        let tech = Technology::default_250nm();
        let reg = tspc_register_with(&tech, ClockSpec::fast());
        let edge = reg.active_edge_time();
        // Data pulse entirely before the edge: nothing to capture.
        let v = run_capture(&reg, 0.9e-9, -0.6e-9, edge + 0.4e-9);
        assert!(v < 0.3 * tech.vdd, "tspc latched spuriously: q = {v}");
    }

    #[test]
    fn c2mos_latches_zero_with_generous_skews() {
        let tech = Technology::default_250nm();
        let reg = c2mos_register_with(&tech, ClockSpec::fast(), C2MOS_CLKB_SKEW);
        let edge = reg.active_edge_time();
        let v = run_capture(&reg, 0.9e-9, 0.9e-9, edge + 1.2e-9);
        assert!(v < 0.1 * tech.vdd, "c2mos failed to latch 0: q = {v}");
    }

    #[test]
    fn c2mos_holds_one_when_data_pulse_absent() {
        let tech = Technology::default_250nm();
        let reg = c2mos_register_with(&tech, ClockSpec::fast(), C2MOS_CLKB_SKEW);
        let edge = reg.active_edge_time();
        // Degenerate pulse (τs + τh < 0 ⇒ no low excursion near the edge).
        let v = run_capture(&reg, -0.5e-9, -0.3e-9, edge + 1.2e-9);
        assert!(v > 0.9 * tech.vdd, "c2mos lost its rest state: q = {v}");
    }

    #[test]
    fn tg_register_latches_one() {
        let tech = Technology::default_250nm();
        let reg = tg_register_with(&tech, ClockSpec::fast());
        let edge = reg.active_edge_time();
        let v = run_capture(&reg, 0.9e-9, 0.9e-9, edge + 1.2e-9);
        assert!(v > 0.9 * tech.vdd, "tg register failed to latch 1: q = {v}");
    }

    #[test]
    fn d_latch_captures_at_falling_edge() {
        let tech = Technology::default_250nm();
        let reg = d_latch_with(&tech, ClockSpec::fast());
        // Active edge is the falling edge.
        let clk_fall = reg.clock().falling_edge_time(reg.clock().active_edge_index);
        assert!((reg.active_edge_time() - clk_fall).abs() < 1e-15);
        let v = run_capture(&reg, 0.6e-9, 0.6e-9, clk_fall + 1.0e-9);
        assert!(v > 0.9 * tech.vdd, "d latch failed to capture 1: q = {v}");
    }

    #[test]
    fn with_clock_rebuilds_same_kind() {
        let tech = Technology::default_250nm();
        let reg = tspc_register(&tech);
        let fast = reg.with_clock(ClockSpec::fast());
        assert_eq!(fast.name(), "tspc");
        assert!(fast.active_edge_time() < reg.active_edge_time());
    }
}
