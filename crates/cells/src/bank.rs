//! Parameterized N-bit register bank: chained latch bit-slices sharing
//! one clock, with RC wire-load ladders between stages.
//!
//! The seed cells have a few dozen MNA unknowns, which keeps them on the
//! dense linear-solver path. The bank is the cell-zoo workload that
//! crosses the sparse-dispatch threshold: at the default 16 bits the
//! netlist has well over 100 unknowns, and its Jacobian is sparse enough
//! (a handful of entries per row) that the sparse-direct path wins by a
//! wide margin. See `DESIGN.md` §11 and the `sparse_solve` benchmark.
//!
//! Topology: every bit slice is a transparent-high transmission-gate
//! latch (tgate + two inverters), all gated by the same `clk`/`clk̄`
//! pair. Slice `i`'s output drives slice `i+1`'s data input through a
//! four-segment RC wire ladder modeling interconnect loading. Because
//! all slices share the clock phase, a data edge must ripple through the
//! whole chain while the clock is high; the latching (active) edge is
//! the clock's *falling* edge, as for [`crate::d_latch`].

use shc_spice::{Capacitor, Circuit, Node, Resistor, VoltageSource, Waveform};

use crate::register::{cell_base_at, CellKind, ClockSpec, OutputTransition, RegisterParts};
use crate::{Register, Technology};

/// Resistance of one inter-slice wire segment, in ohms.
const WIRE_SEGMENT_R: f64 = 400.0;
/// Capacitance hung on each inter-slice wire node, in farads.
const WIRE_SEGMENT_C: f64 = 2e-15;
/// RC segments per inter-slice wire ladder.
const WIRE_SEGMENTS: usize = 4;
/// Per-slice ripple-delay allowance used for the reference-setup hint.
const SLICE_DELAY_HINT: f64 = 0.12e-9;

/// Default width of the benchmark register bank.
pub const REGISTER_BANK_DEFAULT_BITS: usize = 16;

fn nmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> shc_spice::Mosfet {
    shc_spice::Mosfet::new(name, d, g, s, tech.nmos, w, tech.lmin)
}

fn pmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> shc_spice::Mosfet {
    shc_spice::Mosfet::new(name, d, g, s, tech.pmos, w, tech.lmin)
}

fn inverter(c: &mut Circuit, tech: &Technology, name: &str, input: Node, output: Node, vdd: Node) {
    c.add(pmos(
        tech,
        &format!("{name}.mp"),
        output,
        input,
        vdd,
        tech.wp,
    ));
    c.add(nmos(
        tech,
        &format!("{name}.mn"),
        output,
        input,
        Circuit::GROUND,
        tech.wn,
    ));
}

/// Builds an `n_bits`-wide register bank with the paper's clock timing.
///
/// # Panics
///
/// Panics if `n_bits` is zero.
pub fn register_bank(tech: &Technology, n_bits: usize) -> Register {
    register_bank_with(tech, ClockSpec::paper(), n_bits)
}

/// [`register_bank`] with an explicit clock specification.
///
/// The data pulse is centered on the clock's falling (latching) edge;
/// the monitored output is the last slice's `q`, which rises when the
/// chain captures the data pulse's logic 1. A full capture requires the
/// data edge to lead the closing edge by roughly `n_bits` slice delays,
/// so wide banks need a clock whose high phase accommodates the ripple
/// (the paper clock does for the default 16 bits).
///
/// # Panics
///
/// Panics if `n_bits` is zero.
pub fn register_bank_with(tech: &Technology, clock: ClockSpec, n_bits: usize) -> Register {
    assert!(n_bits >= 1, "register bank needs at least one bit slice");
    // All slices latch at the falling edge: center the data pulse there.
    let closing_edge = clock.falling_edge_time(clock.active_edge_index);
    let mut base = cell_base_at(tech, &clock, 0.0, tech.vdd, closing_edge);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);
    let clkb = c.node("clkb");
    c.add(VoltageSource::new(
        "Vclkb",
        clkb,
        Circuit::GROUND,
        Waveform::Pulse(clock.to_inverted_pulse(tech.vdd, 0.0)),
    ));

    let mut din = d;
    let mut q = d;
    for bit in 0..n_bits {
        let x = c.node(&format!("b{bit}.x"));
        let qb = c.node(&format!("b{bit}.qb"));
        q = c.node(&format!("b{bit}.q"));

        // Transparent-high latch slice: tgate into a two-inverter buffer.
        c.add(nmos(tech, &format!("b{bit}.tg.mn"), x, clk, din, tech.wn));
        c.add(pmos(tech, &format!("b{bit}.tg.mp"), x, clkb, din, tech.wp));
        inverter(c, tech, &format!("b{bit}.inv1"), x, qb, vdd);
        inverter(c, tech, &format!("b{bit}.inv2"), qb, q, vdd);
        c.add(Capacitor::new(
            &format!("b{bit}.cpar_x"),
            x,
            Circuit::GROUND,
            tech.cnode,
        ));
        c.add(Capacitor::new(
            &format!("b{bit}.cpar_qb"),
            qb,
            Circuit::GROUND,
            tech.cnode,
        ));

        // Wire-load ladder to the next slice's data input.
        if bit + 1 < n_bits {
            let mut prev = q;
            for seg in 0..WIRE_SEGMENTS {
                let node = if seg + 1 == WIRE_SEGMENTS {
                    c.node(&format!("b{}.din", bit + 1))
                } else {
                    c.node(&format!("b{bit}.w{seg}"))
                };
                c.add(Resistor::new(
                    &format!("b{bit}.rw{seg}"),
                    prev,
                    node,
                    WIRE_SEGMENT_R,
                ));
                c.add(Capacitor::new(
                    &format!("b{bit}.cw{seg}"),
                    node,
                    Circuit::GROUND,
                    WIRE_SEGMENT_C,
                ));
                prev = node;
            }
            din = prev;
        }
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register::from_parts_with_kind(
        RegisterParts {
            circuit: base.circuit,
            output: q,
            data: base.data,
            clock,
            vdd: tech.vdd,
            name: "register_bank",
            transition: OutputTransition::Rising,
            capture_fraction: 0.5,
            tech: *tech,
            active_edge_time: closing_edge,
            // Transparent chain: the reference capture must ripple through
            // all slices before the closing edge.
            reference_setup_hint: Some(SLICE_DELAY_HINT * n_bits as f64),
        },
        CellKind::Bank(n_bits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_spice::transient::{RecordMode, TransientAnalysis, TransientOptions};
    use shc_spice::waveform::Params;

    fn final_q(reg: &Register, tau_s: f64, tau_h: f64, margin: f64) -> f64 {
        let opts = TransientOptions::builder(reg.active_edge_time() + margin)
            .dt(4e-12)
            .record(RecordMode::Probe(reg.output_unknown()))
            .build();
        TransientAnalysis::new(reg.circuit(), opts)
            .run(&Params::new(tau_s, tau_h))
            .expect("transient")
            .final_state()[reg.output_unknown()]
    }

    #[test]
    fn bank_validates_and_crosses_sparse_threshold() {
        let tech = Technology::default_250nm();
        let bank = register_bank_with(&tech, ClockSpec::fast(), REGISTER_BANK_DEFAULT_BITS);
        bank.circuit().validate().unwrap();
        let n = bank.circuit().unknown_count();
        assert!(n >= 100, "16-bit bank has only {n} unknowns");
        assert!(shc_spice::SolverChoice::Auto.wants_sparse(n));

        // Unknown count grows linearly with the bit width.
        let n4 = register_bank_with(&tech, ClockSpec::fast(), 4)
            .circuit()
            .unknown_count();
        let n8 = register_bank_with(&tech, ClockSpec::fast(), 8)
            .circuit()
            .unknown_count();
        assert_eq!(
            n8 - n4,
            n - register_bank_with(&tech, ClockSpec::fast(), 12)
                .circuit()
                .unknown_count()
        );
        assert!(n4 < n8 && n8 < n);
    }

    #[test]
    fn bank_ripples_capture_through_the_chain() {
        let tech = Technology::default_250nm();
        let bank = register_bank_with(&tech, ClockSpec::fast(), 4);
        // Generous setup: the data edge leads the closing edge by enough
        // for the value to ripple through all four slices.
        let v = final_q(&bank, 0.9e-9, 0.5e-9, 0.5e-9);
        assert!(v > 0.9 * tech.vdd, "bank failed to capture 1: q = {v}");
    }

    #[test]
    fn bank_rejects_data_that_cannot_ripple_in_time() {
        let tech = Technology::default_250nm();
        let bank = register_bank_with(&tech, ClockSpec::fast(), 4);
        // Data pulse entirely after the closing edge: nothing to capture.
        let v = final_q(&bank, -0.3e-9, 0.9e-9, 0.5e-9);
        assert!(v < 0.3 * tech.vdd, "bank latched spuriously: q = {v}");
    }

    #[test]
    fn with_clock_rebuilds_same_width() {
        let tech = Technology::default_250nm();
        let bank = register_bank(&tech, 8);
        let fast = bank.with_clock(ClockSpec::fast());
        assert_eq!(fast.name(), "register_bank");
        assert_eq!(
            fast.circuit().unknown_count(),
            bank.circuit().unknown_count()
        );
        assert!(fast.active_edge_time() < bank.active_edge_time());
    }
}
