//! Additional register topologies beyond the paper's two: a
//! sense-amplifier flip-flop and a pulse-triggered latch. Both exercise
//! characterization behaviours the TSPC/C²MOS pair does not — regenerative
//! differential capture and locally generated clock pulses.

use shc_spice::{Capacitor, Circuit, Node};

use crate::register::{cell_base, ClockSpec, OutputTransition, RegisterParts};
use crate::{Register, Technology};

fn nmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> shc_spice::Mosfet {
    shc_spice::Mosfet::new(name, d, g, s, tech.nmos, w, tech.lmin)
}

fn pmos(tech: &Technology, name: &str, d: Node, g: Node, s: Node, w: f64) -> shc_spice::Mosfet {
    shc_spice::Mosfet::new(name, d, g, s, tech.pmos, w, tech.lmin)
}

fn inverter(c: &mut Circuit, tech: &Technology, name: &str, input: Node, output: Node, vdd: Node) {
    c.add(pmos(
        tech,
        &format!("{name}.mp"),
        output,
        input,
        vdd,
        tech.wp,
    ));
    c.add(nmos(
        tech,
        &format!("{name}.mn"),
        output,
        input,
        Circuit::GROUND,
        tech.wn,
    ));
}

fn nand2(c: &mut Circuit, tech: &Technology, name: &str, a: Node, b: Node, out: Node, vdd: Node) {
    c.add(pmos(tech, &format!("{name}.mpa"), out, a, vdd, tech.wp));
    c.add(pmos(tech, &format!("{name}.mpb"), out, b, vdd, tech.wp));
    let mid = c.node(&format!("{name}.mid"));
    c.add(nmos(
        tech,
        &format!("{name}.mna"),
        out,
        a,
        mid,
        2.0 * tech.wn,
    ));
    c.add(nmos(
        tech,
        &format!("{name}.mnb"),
        mid,
        b,
        Circuit::GROUND,
        2.0 * tech.wn,
    ));
}

/// Builds a sense-amplifier flip-flop (SAFF): a clock-precharged
/// StrongARM-style differential first stage resolving `D` vs `D̄` at the
/// rising edge, followed by a NAND SR latch.
///
/// Captures a logic 1 (rising data pulse); the monitored `q` output rises;
/// 50% criterion.
pub fn saff_register(tech: &Technology) -> Register {
    saff_register_with(tech, ClockSpec::paper())
}

/// [`saff_register`] with an explicit clock specification.
pub fn saff_register_with(tech: &Technology, clock: ClockSpec) -> Register {
    let mut base = cell_base(tech, &clock, 0.0, tech.vdd);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);

    // Local inverted data.
    let db = c.node("db");
    inverter(c, tech, "inv_d", d, db, vdd);
    c.add(Capacitor::new(
        "cpar_db",
        db,
        Circuit::GROUND,
        tech.cnode / 2.0,
    ));

    // StrongARM first stage: sb/rb precharge high while clock is low and
    // race to discharge at the rising edge; the data side wins.
    let sb = c.node("sb");
    let rb = c.node("rb");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    let tail = c.node("tail");
    c.add(nmos(
        tech,
        "mtail",
        tail,
        clk,
        Circuit::GROUND,
        3.0 * tech.wn,
    ));
    c.add(nmos(tech, "min1", n1, d, tail, 2.0 * tech.wn));
    c.add(nmos(tech, "min2", n2, db, tail, 2.0 * tech.wn));
    // Cross-coupled pair on top of the input devices.
    c.add(nmos(tech, "mxn1", sb, rb, n1, 2.0 * tech.wn));
    c.add(nmos(tech, "mxn2", rb, sb, n2, 2.0 * tech.wn));
    c.add(pmos(tech, "mxp1", sb, rb, vdd, tech.wp));
    c.add(pmos(tech, "mxp2", rb, sb, vdd, tech.wp));
    // Precharge.
    c.add(pmos(tech, "mpc1", sb, clk, vdd, tech.wp));
    c.add(pmos(tech, "mpc2", rb, clk, vdd, tech.wp));

    // NAND SR latch: q = nand(sb, qb); qb = nand(rb, q).
    let q = c.node("q");
    let qb = c.node("qb");
    nand2(c, tech, "nand_s", sb, qb, q, vdd);
    nand2(c, tech, "nand_r", rb, q, qb, vdd);

    for (node, cap) in [
        (sb, tech.cnode),
        (rb, tech.cnode),
        (n1, tech.cnode / 3.0),
        (n2, tech.cnode / 3.0),
        (tail, tech.cnode / 3.0),
        (qb, tech.cnode),
    ] {
        c.add(Capacitor::new(
            &format!("cpar_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            cap,
        ));
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register::from_parts(RegisterParts {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "saff",
        transition: OutputTransition::Rising,
        capture_fraction: 0.5,
        tech: *tech,
        active_edge_time: clock.active_edge_time(),
        reference_setup_hint: None,
    })
}

/// Builds a pulse-triggered latch: a local one-shot pulse generator
/// (clock AND its 3-inverter-delayed complement) gates a transmission-gate
/// latch, so the cell is transparent only during a narrow window after the
/// rising edge.
///
/// Captures a logic 1; the monitored `q` output rises; 50% criterion.
pub fn pulsed_latch(tech: &Technology) -> Register {
    pulsed_latch_with(tech, ClockSpec::paper())
}

/// [`pulsed_latch`] with an explicit clock specification.
pub fn pulsed_latch_with(tech: &Technology, clock: ClockSpec) -> Register {
    let mut base = cell_base(tech, &clock, 0.0, tech.vdd);
    let c = &mut base.circuit;
    let (vdd, clk, d) = (base.vdd_node, base.clk, base.d);

    // Pulse generator: pulse_b = NAND(clk, delay3(clk̄)); pulse = ~pulse_b.
    let c1 = c.node("pg1");
    let c2 = c.node("pg2");
    let c3 = c.node("pg3");
    inverter(c, tech, "pg_inv1", clk, c1, vdd);
    inverter(c, tech, "pg_inv2", c1, c2, vdd);
    inverter(c, tech, "pg_inv3", c2, c3, vdd);
    let pulse_b = c.node("pulse_b");
    let pulse = c.node("pulse");
    nand2(c, tech, "pg_nand", clk, c3, pulse_b, vdd);
    inverter(c, tech, "pg_inv4", pulse_b, pulse, vdd);
    // Slow the delay chain slightly so the pulse is wide enough to latch.
    for node in [c1, c2, c3] {
        c.add(Capacitor::new(
            &format!("cpg_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            2.0 * tech.cnode,
        ));
    }

    // Transmission-gate latch gated by the pulse.
    let x = c.node("x");
    let qb = c.node("qb");
    let q = c.node("q");
    c.add(nmos(tech, "tg.mn", x, pulse, d, tech.wn));
    c.add(pmos(tech, "tg.mp", x, pulse_b, d, tech.wp));
    inverter(c, tech, "inv1", x, qb, vdd);
    inverter(c, tech, "inv2", qb, q, vdd);

    for (node, cap) in [(x, tech.cnode), (qb, tech.cnode), (pulse, tech.cnode)] {
        c.add(Capacitor::new(
            &format!("cpar_{}", c.node_name(node)),
            node,
            Circuit::GROUND,
            cap,
        ));
    }
    c.add(Capacitor::new("cload", q, Circuit::GROUND, tech.cload));

    Register::from_parts(RegisterParts {
        circuit: base.circuit,
        output: q,
        data: base.data,
        clock,
        vdd: tech.vdd,
        name: "pulsed_latch",
        transition: OutputTransition::Rising,
        capture_fraction: 0.5,
        tech: *tech,
        active_edge_time: clock.active_edge_time(),
        reference_setup_hint: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_spice::transient::{RecordMode, TransientAnalysis, TransientOptions};
    use shc_spice::waveform::Params;

    fn final_q(reg: &Register, tau_s: f64, tau_h: f64, margin: f64) -> f64 {
        let opts = TransientOptions::builder(reg.active_edge_time() + margin)
            .dt(4e-12)
            .record(RecordMode::Probe(reg.output_unknown()))
            .build();
        TransientAnalysis::new(reg.circuit(), opts)
            .run(&Params::new(tau_s, tau_h))
            .expect("transient")
            .final_state()[reg.output_unknown()]
    }

    #[test]
    fn saff_validates_and_captures_one() {
        let tech = Technology::default_250nm();
        let reg = saff_register_with(&tech, ClockSpec::fast());
        reg.circuit().validate().unwrap();
        let v = final_q(&reg, 0.5e-9, 0.5e-9, 0.6e-9);
        assert!(v > 0.9 * tech.vdd, "saff failed to capture 1: q = {v}");
    }

    #[test]
    fn saff_rejects_absent_data() {
        let tech = Technology::default_250nm();
        let reg = saff_register_with(&tech, ClockSpec::fast());
        let v = final_q(&reg, 0.9e-9, -0.6e-9, 0.6e-9);
        assert!(v < 0.3 * tech.vdd, "saff latched spuriously: q = {v}");
    }

    #[test]
    fn pulsed_latch_validates_and_captures_one() {
        let tech = Technology::default_250nm();
        let reg = pulsed_latch_with(&tech, ClockSpec::fast());
        reg.circuit().validate().unwrap();
        let v = final_q(&reg, 0.5e-9, 0.5e-9, 0.6e-9);
        assert!(
            v > 0.9 * tech.vdd,
            "pulsed latch failed to capture: q = {v}"
        );
    }

    #[test]
    fn pulsed_latch_pulse_is_narrow() {
        // The local pulse must rise at the edge and fall again well before
        // the next edge — that's what makes the cell edge-triggered.
        let tech = Technology::default_250nm();
        let reg = pulsed_latch_with(&tech, ClockSpec::fast());
        let pulse = reg.node("pulse").unwrap().unknown().unwrap();
        let edge = reg.active_edge_time();
        let opts = TransientOptions::builder(edge + 1.2e-9).dt(4e-12).build();
        let res = TransientAnalysis::new(reg.circuit(), opts)
            .run(&Params::new(0.5e-9, 0.5e-9))
            .unwrap();
        use shc_spice::transient::CrossingDirection;
        let t_up = res
            .crossing_time(pulse, 1.25, edge - 0.2e-9, CrossingDirection::Rising)
            .expect("pulse rises at the edge");
        let t_down = res
            .crossing_time(pulse, 1.25, t_up, CrossingDirection::Falling)
            .expect("pulse falls again");
        let width = t_down - t_up;
        assert!(
            width > 20e-12 && width < 0.5e-9,
            "pulse width {:.1} ps out of range",
            width * 1e12
        );
    }
}
