//! # shc-cells
//!
//! Latch and register cell library for setup/hold characterization.
//!
//! Each builder returns a [`Register`]: a complete transistor-level netlist
//! with embedded clock and τs/τh-parameterized data sources, plus the
//! metadata (output node, active-edge time, expected output transition) the
//! characterization core needs.
//!
//! Cells provided:
//!
//! - [`tspc_register`] — the true single-phase-clocked positive
//!   edge-triggered register of the paper's Fig. 6 (three dynamic stages
//!   plus a static output buffer);
//! - [`c2mos_register`] — the C²MOS master-slave positive edge-triggered
//!   register of the paper's Fig. 11(a), with the 0.3 ns delayed `clk̄`
//!   that creates clock overlap and a positive hold time;
//! - [`tg_register`] — a static transmission-gate master-slave flip-flop
//!   (extra validation cell beyond the paper's two);
//! - [`d_latch`] — a level-sensitive dynamic D latch;
//! - [`register_bank`] — a parameterized N-bit chain of latch slices with
//!   RC wire-load parasitics, large enough to exercise the sparse-direct
//!   linear-solver path.
//!
//! # Example
//!
//! ```rust
//! use shc_cells::{tspc_register, ClockSpec, Technology};
//!
//! let tech = Technology::default_250nm();
//! let reg = tspc_register(&tech).with_clock(ClockSpec::fast());
//! assert!(reg.active_edge_time() > 0.0);
//! ```

mod bank;
mod extra;
mod register;
mod tech;

pub use bank::{register_bank, register_bank_with, REGISTER_BANK_DEFAULT_BITS};
pub use extra::{pulsed_latch, pulsed_latch_with, saff_register, saff_register_with};
pub use register::{
    c2mos_register, c2mos_register_with, d_latch, d_latch_with, tg_register, tg_register_with,
    tspc_register, tspc_register_with, ClockSpec, OutputTransition, Register, C2MOS_CLKB_SKEW,
};
pub use tech::Technology;
