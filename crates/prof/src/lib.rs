//! `shc-prof`: a zero-dependency hierarchical phase profiler.
//!
//! `shc-obs` answers *how much work* a run did (counters, spans at the
//! per-run level); this crate answers *where the time went inside a
//! simulation*: an exact self/total-time tree over a closed taxonomy of
//! [`Phase`]s (device evaluation, stamping, LU factor/refactor/solve,
//! LTE control, corrector and tracer bookkeeping, …), with per-phase
//! invocation counts and work units.
//!
//! Like the telemetry collector, instrumentation is always compiled in
//! and inert until a [`Profiler`] is installed on the thread with
//! [`install_scoped`]; the off-path cost is one thread-local boolean
//! read per frame, and profile-on runs are bitwise identical to
//! profile-off runs (the profiler only reads clocks, never perturbs
//! numerics).
//!
//! ```
//! use shc_prof::{Phase, Profiler};
//!
//! let profiler = Profiler::new();
//! {
//!     let _guard = shc_prof::install_scoped(&profiler);
//!     let _frame = shc_prof::enter(Phase::Transient);
//!     {
//!         let _inner = shc_prof::enter(Phase::DeviceEval);
//!         shc_prof::add_work(12); // devices stamped
//!     }
//! }
//! let report = profiler.report("example");
//! assert_eq!(report.phase("device_eval").unwrap().work, 12);
//! println!("{}", report.table());
//! ```
//!
//! Reports serialize to hand-rolled JSON ([`ProfileReport::to_json`]),
//! collapsed-stack flamegraph input ([`ProfileReport::to_folded`]), and
//! text tables; [`diff`] compares two profiles phase-by-phase and
//! [`check`] ratchets phase shares against a committed baseline (the CI
//! `profile-smoke` gate).

#![warn(missing_docs)]

mod clock;
mod phase;
mod profiler;
mod report;

pub use clock::{ticks, ticks_per_ns, ticks_to_ns};
pub use phase::Phase;
pub use profiler::{
    add_work, current, enabled, enter, install_scoped, iter_detail, open_frames, phase_totals,
    record, Detail, FrameGuard, InstallGuard, Laps, Profiler, Sample, MAX_LAP_SLOTS,
};
pub use report::{
    check, diff, parse_baseline, render_baseline, render_diff, PhaseAgg, PhaseDelta, ProfileReport,
    ReportNode, BASELINE_SCHEMA, DEFAULT_TOLERANCE_PP, RATCHET_MIN_SHARE, SCHEMA,
};
