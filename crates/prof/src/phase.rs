//! The fixed phase taxonomy.
//!
//! A [`Phase`] names one kind of work a simulation spends wall-clock time
//! on. The set is closed (like `shc_obs::Metric`) so the frame stack can
//! key nodes by a single byte and reports can aggregate into fixed-size
//! arrays; `shc-lint`'s telemetry-hygiene rule checks that every
//! `Phase::X` use in the workspace names a variant declared here.

/// One kind of work in the profiler's frame taxonomy.
///
/// Variants are ordered roughly top-down: drivers first, then per-run
/// machinery, then the per-iteration primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Fan-out sweep driver (surface grid, batch contours, corners).
    Sweep,
    /// Euler-Newton tracer bookkeeping: predictor, tangent refresh,
    /// recovery ladder, checkpointing (self-time excludes the corrector).
    TracerOverhead,
    /// First-point search: hold bisection, setup bracketing, polish.
    SeedSearch,
    /// MPNR corrector bookkeeping around its transient evaluations.
    CorrectorOverhead,
    /// One transient simulation run (self-time is the stepping loop's own
    /// bookkeeping: history rotation, waveform sampling, predictors).
    Transient,
    /// DC operating-point solve.
    DcOp,
    /// Newton loop bookkeeping: convergence checks, damping, recovery
    /// retries (self-time excludes assembly and linear algebra).
    NewtonOverhead,
    /// Dense device evaluation + stamping loop (`assemble_into`).
    DeviceEval,
    /// Residual formation and companion-model combination after the
    /// device loop (`combine_step_jacobian_into` and friends).
    Stamp,
    /// Sparse device evaluation + stamping loop (`assemble_sparse_into`).
    AssembleSparse,
    /// Dense LU fresh factorization (allocating).
    LuFactor,
    /// Dense LU in-place refactorization.
    LuRefactor,
    /// Dense LU forward/back substitution.
    LuSolve,
    /// Sparse-LU symbolic analysis (ordering + pattern).
    SparseAnalyze,
    /// Sparse-LU fresh numeric factorization (allocating).
    SparseFactor,
    /// Sparse-LU value-only refactorization.
    SparseRefactor,
    /// Sparse-LU forward/back substitution.
    SparseSolve,
    /// Local-truncation-error estimate and step-size control.
    LteControl,
    /// Parameter-sensitivity right-hand sides and solves.
    SensSolve,
}

impl Phase {
    /// Number of phase variants; sizes aggregation arrays.
    pub const COUNT: usize = 19;

    /// All variants, in `repr` order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Sweep,
        Phase::TracerOverhead,
        Phase::SeedSearch,
        Phase::CorrectorOverhead,
        Phase::Transient,
        Phase::DcOp,
        Phase::NewtonOverhead,
        Phase::DeviceEval,
        Phase::Stamp,
        Phase::AssembleSparse,
        Phase::LuFactor,
        Phase::LuRefactor,
        Phase::LuSolve,
        Phase::SparseAnalyze,
        Phase::SparseFactor,
        Phase::SparseRefactor,
        Phase::SparseSolve,
        Phase::LteControl,
        Phase::SensSolve,
    ];

    /// Stable snake_case name used in reports, folded stacks, and JSON.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Sweep => "sweep",
            Phase::TracerOverhead => "tracer_overhead",
            Phase::SeedSearch => "seed_search",
            Phase::CorrectorOverhead => "corrector_overhead",
            Phase::Transient => "transient",
            Phase::DcOp => "dc_op",
            Phase::NewtonOverhead => "newton_overhead",
            Phase::DeviceEval => "device_eval",
            Phase::Stamp => "stamp",
            Phase::AssembleSparse => "assemble_sparse",
            Phase::LuFactor => "lu_factor",
            Phase::LuRefactor => "lu_refactor",
            Phase::LuSolve => "lu_solve",
            Phase::SparseAnalyze => "sparse_analyze",
            Phase::SparseFactor => "sparse_factor",
            Phase::SparseRefactor => "sparse_refactor",
            Phase::SparseSolve => "sparse_solve",
            Phase::LteControl => "lte_control",
            Phase::SensSolve => "sens_solve",
        }
    }

    /// Looks a variant up by its [`name`](Phase::name).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// The unit its `work` column counts, for report headers.
    #[must_use]
    pub const fn work_unit(self) -> &'static str {
        match self {
            Phase::DeviceEval | Phase::AssembleSparse => "device evals",
            Phase::Stamp => "unknowns",
            Phase::LuFactor | Phase::LuRefactor | Phase::LuSolve => "n",
            Phase::SparseAnalyze
            | Phase::SparseFactor
            | Phase::SparseRefactor
            | Phase::SparseSolve => "nnz",
            Phase::NewtonOverhead => "iterations",
            Phase::Transient => "steps",
            Phase::CorrectorOverhead => "iterations",
            _ => "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matches_repr_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{}", p.name());
        }
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
    }
}
