//! The frame stack, the per-thread tree, and the shared handle.
//!
//! Design constraints, in order (mirroring `shc_obs::collector`):
//!
//! 1. **One branch when off.** [`enter`] and [`add_work`] first read a
//!    thread-local `Cell<bool>`; with no profiler installed that is the
//!    entire cost, so frames can bracket the allocation-free transient
//!    hot loop.
//! 2. **Exact, not sampled.** Every frame is timed with two raw clock
//!    reads ([`crate::clock::ticks`]); self-time is total minus the
//!    accumulated time of child frames, so the tree adds up exactly.
//! 3. **Thread-aware.** Each thread grows a private tree (no atomics, no
//!    locks in the hot path); uninstalling merges it into the shared
//!    handle under a mutex. `parallel::run_indexed` captures [`current`]
//!    and installs it per worker, exactly like the telemetry collector.
//! 4. **Unwind-safe.** Frames are RAII guards: an early `return`, a `?`,
//!    a `continue`, or a fault-injected abort closes them in order, so
//!    the stack stays balanced without cooperation from the code under
//!    measurement.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::clock;
use crate::phase::Phase;
use crate::report::{PhaseAgg, ProfileReport, ReportNode};

/// Sentinel "no node" index.
const NONE: u32 = u32::MAX;
/// Pre-sized frame-stack depth; deeper nesting still works (the stack is
/// a `Vec`) but will allocate once.
const STACK_CAPACITY: usize = 64;
/// Pre-sized node arena; first encounters beyond this allocate once.
const ARENA_CAPACITY: usize = 4 * Phase::COUNT;

#[derive(Clone, Copy)]
struct Node {
    /// `Phase` repr index; unused for the root node.
    phase: u8,
    first_child: u32,
    next_sibling: u32,
    self_ticks: u64,
    total_ticks: u64,
    count: u64,
    work: u64,
}

impl Node {
    fn new(phase: u8) -> Node {
        Node {
            phase,
            first_child: NONE,
            next_sibling: NONE,
            self_ticks: 0,
            total_ticks: 0,
            count: 0,
            work: 0,
        }
    }
}

/// A path-keyed tree of phase frames. Node 0 is a synthetic root whose
/// children are the outermost frames seen on a thread.
#[derive(Clone)]
pub(crate) struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Tree {
        let mut nodes = Vec::with_capacity(ARENA_CAPACITY);
        nodes.push(Node::new(u8::MAX)); // root
        Tree { nodes }
    }

    /// Index of `parent`'s child for `phase`, creating it on first use.
    fn child(&mut self, parent: u32, phase: Phase) -> u32 {
        let repr = phase as u8;
        let mut cursor = self.nodes[parent as usize].first_child;
        let mut last = NONE;
        while cursor != NONE {
            let node = &self.nodes[cursor as usize];
            if node.phase == repr {
                return cursor;
            }
            last = cursor;
            cursor = node.next_sibling;
        }
        // A profiler must never abort the run it is measuring: if the
        // arena ever saturates the u32 id space (pathological phase
        // nesting), charge the frame to its parent instead of panicking.
        let Ok(id) = u32::try_from(self.nodes.len()) else {
            return parent;
        };
        self.nodes.push(Node::new(repr));
        if last == NONE {
            self.nodes[parent as usize].first_child = id;
        } else {
            self.nodes[last as usize].next_sibling = id;
        }
        id
    }

    /// True when no frame has ever been recorded.
    fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Adds every node of `other` into `self`, matching by path.
    fn merge(&mut self, other: &Tree) {
        // (other node, my parent) work stack; paths are matched top-down.
        let mut pending: Vec<(u32, u32)> = Vec::new();
        let mut cursor = other.nodes[0].first_child;
        while cursor != NONE {
            pending.push((cursor, 0));
            cursor = other.nodes[cursor as usize].next_sibling;
        }
        while let Some((theirs, my_parent)) = pending.pop() {
            let node = other.nodes[theirs as usize];
            let phase = Phase::ALL[node.phase as usize];
            let mine = self.child(my_parent, phase);
            let m = &mut self.nodes[mine as usize];
            m.self_ticks += node.self_ticks;
            m.total_ticks += node.total_ticks;
            m.count += node.count;
            m.work += node.work;
            let mut child = node.first_child;
            while child != NONE {
                pending.push((child, mine));
                child = other.nodes[child as usize].next_sibling;
            }
        }
    }

    /// Per-phase `(self_ticks, count)` aggregated across the whole tree.
    fn phase_totals(&self) -> [(u64, u64); Phase::COUNT] {
        let mut totals = [(0u64, 0u64); Phase::COUNT];
        for node in &self.nodes[1..] {
            let slot = &mut totals[node.phase as usize];
            slot.0 += node.self_ticks;
            slot.1 += node.count;
        }
        totals
    }

    /// Flattens into report rows (depth-first, stable child order).
    fn report_nodes(&self) -> Vec<ReportNode> {
        let mut out = Vec::new();
        let mut stack_names: Vec<&'static str> = Vec::new();
        self.flatten(0, &mut stack_names, &mut out);
        out
    }

    fn flatten(&self, id: u32, names: &mut Vec<&'static str>, out: &mut Vec<ReportNode>) {
        let node = self.nodes[id as usize];
        if id != 0 {
            names.push(Phase::ALL[node.phase as usize].name());
            out.push(ReportNode {
                stack: names.join(";"),
                self_ns: clock::ticks_to_ns(node.self_ticks),
                total_ns: clock::ticks_to_ns(node.total_ticks),
                count: node.count,
                work: node.work,
            });
        }
        let mut child = node.first_child;
        while child != NONE {
            self.flatten(child, names, out);
            child = self.nodes[child as usize].next_sibling;
        }
        if id != 0 {
            names.pop();
        }
    }
}

/// Instrumentation granularity, chosen when the profiler is created.
///
/// Both levels produce bitwise-identical simulation results; they differ
/// only in how many clock reads the hot loop performs and therefore in
/// how finely the Newton solve is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Detail {
    /// Per-step lap timing plus exact invocation counts everywhere.
    /// The default: ~4 clock reads per accepted time step, sized to
    /// keep profiling overhead within the ~2% budget on the transient
    /// hot loop. The Newton solve appears as one phase with exact
    /// device-eval/stamp/factor/solve *counts* but no time split.
    #[default]
    Step,
    /// Adds the per-Newton-iteration lap chain (device eval → stamp →
    /// factor → solve), splitting the Newton solve's time exactly.
    /// Costs ~5 extra clock reads per Newton iteration (~5% overhead on
    /// small circuits) and is opt-in for that reason.
    Iter,
}

/// Handle to a profiler; cheap to clone (an `Arc`).
///
/// Does nothing until installed on a thread with [`install_scoped`];
/// frames are opened with the free function [`enter`].
#[derive(Clone)]
pub struct Profiler {
    merged: Arc<Mutex<Tree>>,
    /// Mirrors "any thread has merged frames" so [`Profiler::is_empty`]
    /// is one atomic load — no lock acquisition, no poison handling.
    has_frames: Arc<AtomicBool>,
    detail: Detail,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").finish()
    }
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates an empty profiler at the default [`Detail::Step`] level.
    #[must_use]
    pub fn new() -> Profiler {
        Profiler::with_detail(Detail::Step)
    }

    /// Creates an empty profiler at the given detail level.
    #[must_use]
    pub fn with_detail(detail: Detail) -> Profiler {
        Profiler {
            merged: Arc::new(Mutex::new(Tree::new())),
            has_frames: Arc::new(AtomicBool::new(false)),
            detail,
        }
    }

    /// The detail level threads will record at while this profiler is
    /// installed.
    #[must_use]
    pub fn detail(&self) -> Detail {
        self.detail
    }

    /// Builds the report from everything merged so far.
    ///
    /// Threads contribute when their install guard drops, so drop the
    /// guard (end the scope) before reporting; frames still open on a
    /// live thread are not included.
    #[must_use]
    pub fn report(&self, label: &str) -> ProfileReport {
        let tree = self.merged.lock().unwrap_or_else(PoisonError::into_inner);
        let nodes = tree.report_nodes();
        let mut phases: Vec<PhaseAgg> = Vec::new();
        let totals = tree.phase_totals();
        let mut work = [0u64; Phase::COUNT];
        let mut total_ns = [0u64; Phase::COUNT];
        for node in &tree.nodes[1..] {
            work[node.phase as usize] += node.work;
            total_ns[node.phase as usize] += node.total_ticks;
        }
        let mut wall_ns = 0u64;
        let mut cursor = tree.nodes[0].first_child;
        while cursor != NONE {
            wall_ns += clock::ticks_to_ns(tree.nodes[cursor as usize].total_ticks);
            cursor = tree.nodes[cursor as usize].next_sibling;
        }
        for phase in Phase::ALL {
            let (self_ticks, count) = totals[phase as usize];
            if count == 0 {
                continue;
            }
            phases.push(PhaseAgg {
                phase: phase.name().to_string(),
                self_ns: clock::ticks_to_ns(self_ticks),
                total_ns: clock::ticks_to_ns(total_ns[phase as usize]),
                count,
                work: work[phase as usize],
            });
        }
        phases.sort_by_key(|p| std::cmp::Reverse(p.self_ns));
        ProfileReport {
            label: label.to_string(),
            wall_ns,
            phases,
            nodes,
        }
    }

    /// True when no thread has merged any frames yet. One atomic load:
    /// safe to call from certified hot paths (no lock, cannot panic).
    ///
    /// effects: none
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.has_frames.load(Ordering::Acquire)
    }
}

#[derive(Clone, Copy)]
struct Frame {
    node: u32,
    start: u64,
    child_ticks: u64,
}

struct ThreadState {
    handle: Profiler,
    tree: Tree,
    stack: Vec<Frame>,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
    // 0 = off, 1 = Detail::Step, 2 = Detail::Iter.
    static LEVEL: Cell<u8> = const { Cell::new(0) };
}

/// True when a profiler is installed on this thread.
///
/// This is the hot-path gate: a single thread-local `Cell` read.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    LEVEL.with(Cell::get) != 0
}

/// True when the installed profiler asks for [`Detail::Iter`]: the
/// per-Newton-iteration lap chain should read clocks.
#[inline]
#[must_use]
pub fn iter_detail() -> bool {
    LEVEL.with(Cell::get) == 2
}

/// The profiler installed on this thread, if any.
///
/// Captured by the parallel layer before spawning workers so profiles
/// follow the work onto its threads.
#[must_use]
pub fn current() -> Option<Profiler> {
    if !enabled() {
        return None;
    }
    STATE.with(|s| s.borrow().as_ref().map(|st| st.handle.clone()))
}

/// Installs `profiler` on the current thread until the guard drops.
///
/// The thread records into a private tree; dropping the guard merges it
/// into the shared handle and restores whatever was installed before.
/// Calibrates the clock eagerly so the one-time spin never lands inside
/// a measured region.
#[must_use]
pub fn install_scoped(profiler: &Profiler) -> InstallGuard {
    let _ = clock::ticks_per_ns();
    let previous = STATE.with(|s| {
        s.borrow_mut().replace(ThreadState {
            handle: profiler.clone(),
            tree: Tree::new(),
            stack: Vec::with_capacity(STACK_CAPACITY),
        })
    });
    let level = match profiler.detail {
        Detail::Step => 1,
        Detail::Iter => 2,
    };
    let was_level = LEVEL.with(|e| e.replace(level));
    InstallGuard {
        previous,
        was_level,
    }
}

/// Restores the previous thread-local profiler state on drop, merging
/// this scope's tree into its shared handle.
pub struct InstallGuard {
    previous: Option<ThreadState>,
    was_level: u8,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        LEVEL.with(|e| e.set(self.was_level));
        let finished =
            STATE.with(|s| std::mem::replace(&mut *s.borrow_mut(), self.previous.take()));
        if let Some(st) = finished {
            if !st.tree.is_empty() {
                // Best-effort telemetry: a panic on another thread must
                // not cascade through the profiler, so recover the data
                // behind a poisoned mutex instead of re-panicking.
                st.handle
                    .merged
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .merge(&st.tree);
                st.handle.has_frames.store(true, Ordering::Release);
            }
        }
    }
}

/// Opens a frame for `phase`; close it by dropping the guard.
///
/// When no profiler is installed this is one thread-local boolean read
/// and the guard is inert.
#[inline]
pub fn enter(phase: Phase) -> FrameGuard {
    if !enabled() {
        return FrameGuard { active: false };
    }
    enter_frame(phase);
    FrameGuard { active: true }
}

fn enter_frame(phase: Phase) {
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(st) = borrow.as_mut() else { return };
        let parent = st.stack.last().map_or(0, |f| f.node);
        let node = st.tree.child(parent, phase);
        st.tree.nodes[node as usize].count += 1;
        // Clock read last: the lookup above is profiler overhead and must
        // not be attributed to the frame being opened.
        st.stack.push(Frame {
            node,
            start: clock::ticks(),
            child_ticks: 0,
        });
    });
}

fn exit_frame() {
    // Clock read first, symmetrically: bookkeeping below is not part of
    // the closing frame.
    let now = clock::ticks();
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(st) = borrow.as_mut() else { return };
        let Some(frame) = st.stack.pop() else { return };
        let elapsed = now.wrapping_sub(frame.start);
        let node = &mut st.tree.nodes[frame.node as usize];
        node.total_ticks += elapsed;
        node.self_ticks += elapsed.saturating_sub(frame.child_ticks);
        if let Some(parent) = st.stack.last_mut() {
            parent.child_ticks += elapsed;
        }
    });
}

/// RAII guard for a frame; records elapsed time when dropped.
#[must_use = "a frame measures the time until this guard drops"]
pub struct FrameGuard {
    active: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.active {
            exit_frame();
        }
    }
}

/// Adds `units` of work to the innermost open frame. A no-op when the
/// profiler is off or no frame is open.
#[inline]
pub fn add_work(units: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(st) = borrow.as_mut() else { return };
        let Some(frame) = st.stack.last() else { return };
        st.tree.nodes[frame.node as usize].work += units;
    });
}

/// Depth of this thread's open frame stack (0 when off). Test hook for
/// asserting balanced enter/exit under fault-injected aborts.
#[must_use]
pub fn open_frames() -> usize {
    STATE.with(|s| s.borrow().as_ref().map_or(0, |st| st.stack.len()))
}

/// Number of lap slots a [`Laps`] accumulator carries.
pub const MAX_LAP_SLOTS: usize = 8;

/// An aggregated measurement destined for one tree path: lap ticks plus
/// invocation count and work units, flushed in bulk via [`record`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Raw clock ticks ([`crate::clock::ticks`]) spent in the region.
    pub ticks: u64,
    /// Invocations of the region.
    pub count: u64,
    /// Work units (see [`Phase::work_unit`]) performed in the region.
    pub work: u64,
}

impl Sample {
    /// True when there is nothing to record.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.ticks == 0 && self.count == 0 && self.work == 0
    }
}

/// Lap-cursor accumulator for regions too hot to frame individually.
///
/// A [`FrameGuard`] costs two clock reads *and* two thread-local
/// `RefCell` round-trips per invocation — fine per run, far too much per
/// Newton iteration. A `Laps` instead lives on the caller's stack,
/// shared by `&` (all state is in `Cell`s), and attributes time with a
/// *cursor*: each [`Laps::end_region`] performs one clock read and
/// charges the time since the previous boundary to the slot just ended,
/// so a chain of N boundaries costs N reads total, not 2N.
///
/// Timing and counting are decided once, at construction, from the
/// thread's installed detail level; after that every call is a branch on
/// a plain struct field — no thread-local access in the hot loop. With
/// the profiler off both flags are false and the accumulator is fully
/// inert. Slot totals are flushed in bulk (once per run) through
/// [`record`].
#[derive(Debug)]
pub struct Laps {
    timing: bool,
    counting: bool,
    cursor: Cell<u64>,
    ticks: [Cell<u64>; MAX_LAP_SLOTS],
    counts: [Cell<u64>; MAX_LAP_SLOTS],
    work: [Cell<u64>; MAX_LAP_SLOTS],
}

impl Laps {
    /// An accumulator with explicit timing/counting activation.
    #[must_use]
    pub fn new(timing: bool, counting: bool) -> Laps {
        Laps {
            timing,
            counting,
            cursor: Cell::new(if timing { clock::ticks() } else { 0 }),
            ticks: std::array::from_fn(|_| Cell::new(0)),
            counts: std::array::from_fn(|_| Cell::new(0)),
            work: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    /// A per-step accumulator: timed (and counted) whenever the profiler
    /// is on — this is the [`Detail::Step`] workhorse.
    #[must_use]
    pub fn step() -> Laps {
        let on = enabled();
        Laps::new(on, on)
    }

    /// A per-iteration accumulator: counts whenever the profiler is on,
    /// but reads clocks only at [`Detail::Iter`] — at the default level
    /// the Newton split stays count-exact and time-free.
    #[must_use]
    pub fn iter() -> Laps {
        Laps::new(iter_detail(), enabled())
    }

    /// True when at least one of timing/counting is active (i.e. a
    /// flush will have something to say).
    #[inline]
    #[must_use]
    pub fn active(&self) -> bool {
        self.timing || self.counting
    }

    /// True when boundaries read clocks.
    #[inline]
    #[must_use]
    pub fn timing(&self) -> bool {
        self.timing
    }

    /// Re-arms the cursor at "now", discarding time since the last
    /// boundary. Call before entering a measured chain when the
    /// preceding gap should not be charged to the first region.
    #[inline]
    pub fn restart(&self) {
        if self.timing {
            self.cursor.set(clock::ticks());
        }
    }

    /// Closes the region `slot`: one clock read, charging the time since
    /// the previous boundary to `slot` and moving the cursor.
    #[inline]
    pub fn end_region(&self, slot: usize) {
        if self.timing {
            let now = clock::ticks();
            let cell = &self.ticks[slot];
            cell.set(cell.get().wrapping_add(now.wrapping_sub(self.cursor.get())));
            self.cursor.set(now);
        }
    }

    /// Tallies `count` invocations and `work` units into `slot` — a few
    /// `Cell` adds, no clock read. Exact counts stay cheap even where
    /// timing is off.
    #[inline]
    pub fn bump(&self, slot: usize, count: u64, work: u64) {
        if self.counting {
            let c = &self.counts[slot];
            c.set(c.get() + count);
            let w = &self.work[slot];
            w.set(w.get() + work);
        }
    }

    /// The accumulated totals of `slot`.
    #[must_use]
    pub fn sample(&self, slot: usize) -> Sample {
        Sample {
            ticks: self.ticks[slot].get(),
            count: self.counts[slot].get(),
            work: self.work[slot].get(),
        }
    }
}

/// Bulk-records `sample` at `path` beneath the innermost open frame.
///
/// Every node along the path gains `sample.ticks` of total time; the
/// last node additionally gains the self time, count, and work. The open
/// frame's child-time accumulator is advanced so its own self time still
/// excludes everything recorded beneath it. Zero samples, an empty
/// `path`, and the profiler-off state are all no-ops.
///
/// This is the flush half of the [`Laps`] protocol: the hot loop tallies
/// into lap slots, then once per run each slot is mapped to its tree
/// path here.
pub fn record(path: &[Phase], sample: Sample) {
    if path.is_empty() || sample.is_zero() || !enabled() {
        return;
    }
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(st) = borrow.as_mut() else { return };
        let mut node = st.stack.last().map_or(0, |f| f.node);
        for (i, &phase) in path.iter().enumerate() {
            node = st.tree.child(node, phase);
            let n = &mut st.tree.nodes[node as usize];
            n.total_ticks += sample.ticks;
            if i == path.len() - 1 {
                n.self_ticks += sample.ticks;
                n.count += sample.count;
                n.work += sample.work;
            }
        }
        if let Some(top) = st.stack.last_mut() {
            top.child_ticks += sample.ticks;
        }
    });
}

/// Per-phase `(self_ns, count)` totals of this thread's live tree.
///
/// The tracer uses consecutive snapshots to journal per-point phase
/// deltas without waiting for the install guard to merge. `None` when
/// the profiler is off.
#[must_use]
pub fn phase_totals() -> Option<[(u64, u64); Phase::COUNT]> {
    if !enabled() {
        return None;
    }
    STATE.with(|s| {
        s.borrow().as_ref().map(|st| {
            let mut totals = st.tree.phase_totals();
            for slot in &mut totals {
                slot.0 = clock::ticks_to_ns(slot.0);
            }
            totals
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!enabled());
        let _f = enter(Phase::Transient);
        add_work(5);
        assert!(current().is_none());
        assert_eq!(open_frames(), 0);
    }

    #[test]
    fn frames_nest_and_self_time_adds_up() {
        let profiler = Profiler::new();
        {
            let _guard = install_scoped(&profiler);
            let _outer = enter(Phase::Transient);
            for _ in 0..3 {
                let _inner = enter(Phase::DeviceEval);
                add_work(7);
            }
        }
        let report = profiler.report("test");
        let transient = report.phase("transient").expect("transient row");
        let eval = report.phase("device_eval").expect("device_eval row");
        assert_eq!(transient.count, 1);
        assert_eq!(eval.count, 3);
        assert_eq!(eval.work, 21);
        assert!(transient.total_ns >= eval.total_ns);
        assert!(transient.self_ns <= transient.total_ns);
        // The nodes table carries the full path.
        assert!(report
            .nodes
            .iter()
            .any(|n| n.stack == "transient;device_eval"));
    }

    #[test]
    fn sibling_scopes_share_path_nodes() {
        let profiler = Profiler::new();
        {
            let _guard = install_scoped(&profiler);
            for _ in 0..2 {
                let _t = enter(Phase::Transient);
                let _n = enter(Phase::NewtonOverhead);
            }
        }
        let report = profiler.report("test");
        let node = report
            .nodes
            .iter()
            .find(|n| n.stack == "transient;newton_overhead")
            .expect("merged path");
        assert_eq!(node.count, 2);
    }

    #[test]
    fn nested_install_isolates_and_restores() {
        let outer = Profiler::new();
        let inner = Profiler::new();
        let _g1 = install_scoped(&outer);
        {
            let _g2 = install_scoped(&inner);
            let _f = enter(Phase::DcOp);
        }
        {
            let _f = enter(Phase::Transient);
        }
        drop(_g1);
        assert_eq!(inner.report("i").phases.len(), 1);
        let outer_report = outer.report("o");
        assert!(outer_report.phase("transient").is_some());
        assert!(outer_report.phase("dc_op").is_none());
    }

    #[test]
    fn early_exit_unwinds_frames() {
        let profiler = Profiler::new();
        {
            let _guard = install_scoped(&profiler);
            fn bails_mid_frame() -> Result<(), ()> {
                let _t = enter(Phase::Transient);
                let _n = enter(Phase::NewtonOverhead);
                Err(())
            }
            let result = bails_mid_frame();
            assert!(result.is_err());
            assert_eq!(open_frames(), 0);
        }
        let report = profiler.report("test");
        assert_eq!(report.phase("transient").unwrap().count, 1);
        assert_eq!(report.phase("newton_overhead").unwrap().count, 1);
    }

    #[test]
    fn worker_threads_merge_via_current() {
        let profiler = Profiler::new();
        let _guard = install_scoped(&profiler);
        let captured = current().expect("profiler installed");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let captured = &captured;
                scope.spawn(move || {
                    let _g = install_scoped(captured);
                    let _f = enter(Phase::Transient);
                    add_work(1);
                });
            }
        });
        // Workers merged on their guard drops; this thread contributed
        // nothing yet.
        let report = profiler.report("test");
        let t = report.phase("transient").expect("worker frames merged");
        assert_eq!(t.count, 2);
        assert_eq!(t.work, 2);
    }

    #[test]
    fn detail_level_gates_iter_timing() {
        assert!(!iter_detail());
        let step = Profiler::new();
        {
            let _g = install_scoped(&step);
            assert!(enabled());
            assert!(!iter_detail());
            let laps = Laps::iter();
            assert!(!laps.timing(), "iter laps must not time at Step detail");
            assert!(laps.active(), "iter laps still count at Step detail");
        }
        let deep = Profiler::with_detail(Detail::Iter);
        {
            let _g = install_scoped(&deep);
            assert!(iter_detail());
            assert!(Laps::iter().timing());
            assert!(Laps::step().timing());
        }
        assert!(!enabled());
    }

    #[test]
    fn laps_are_inert_when_off() {
        let laps = Laps::step();
        assert!(!laps.active());
        laps.end_region(0);
        laps.bump(0, 3, 9);
        assert_eq!(laps.sample(0), Sample::default());
    }

    #[test]
    fn laps_cursor_charges_elapsed_to_ended_region() {
        let profiler = Profiler::new();
        let _g = install_scoped(&profiler);
        let laps = Laps::step();
        laps.restart();
        std::hint::black_box((0..1000).sum::<u64>());
        laps.end_region(0);
        laps.end_region(1);
        laps.bump(0, 1, 0);
        let busy = laps.sample(0);
        assert_eq!(busy.count, 1);
        assert!(busy.ticks > 0, "region with work must accumulate ticks");
    }

    #[test]
    fn record_builds_path_and_preserves_frame_self_time() {
        let profiler = Profiler::new();
        {
            let _g = install_scoped(&profiler);
            let _t = enter(Phase::Transient);
            record(
                &[Phase::NewtonOverhead, Phase::DeviceEval],
                Sample {
                    ticks: 100,
                    count: 7,
                    work: 70,
                },
            );
            record(
                &[Phase::NewtonOverhead],
                Sample {
                    ticks: 40,
                    count: 3,
                    work: 0,
                },
            );
            // Zero samples and empty paths must not create nodes.
            record(&[Phase::LteControl], Sample::default());
            record(
                &[],
                Sample {
                    ticks: 5,
                    count: 1,
                    work: 0,
                },
            );
        }
        let report = profiler.report("test");
        let newton = report.phase("newton_overhead").expect("newton row");
        let eval = report.phase("device_eval").expect("device_eval row");
        assert_eq!(eval.count, 7);
        assert_eq!(eval.work, 70);
        assert_eq!(newton.count, 3);
        assert!(newton.total_ns >= eval.total_ns + newton.self_ns);
        assert!(report.phase("lte_control").is_none());
        assert!(report
            .nodes
            .iter()
            .any(|n| n.stack == "transient;newton_overhead;device_eval"));
        // The transient frame's self time excludes the recorded ticks.
        let transient_node = report
            .nodes
            .iter()
            .find(|n| n.stack == "transient")
            .expect("transient node");
        assert!(transient_node.total_ns >= transient_node.self_ns);
    }

    #[test]
    fn phase_totals_snapshots_live_tree() {
        let profiler = Profiler::new();
        let _guard = install_scoped(&profiler);
        {
            let _f = enter(Phase::CorrectorOverhead);
        }
        let totals = phase_totals().expect("profiler on");
        assert_eq!(totals[Phase::CorrectorOverhead as usize].1, 1);
        assert_eq!(totals[Phase::Transient as usize].1, 0);
    }
}
