//! Profile reports: JSON serialization, collapsed-stack flamegraph
//! export, text tables, differential comparison, and the phase-share
//! ratchet used by the CI `profile-smoke` gate.
//!
//! All JSON is hand-rolled through `shc_obs::json` (the vendored serde is
//! a stub); parsing targets exactly the shapes this module emits.

use std::fmt::Write as _;

use shc_obs::json;

use crate::phase::Phase;

/// Schema tag stamped into every report this crate writes.
pub const SCHEMA: &str = "shc-prof-v1";
/// Schema tag of the committed multi-section baseline file.
pub const BASELINE_SCHEMA: &str = "shc-prof-baseline-v1";

/// Aggregated totals for one phase across the whole tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Time spent in this phase itself, excluding child frames.
    pub self_ns: u64,
    /// Time spent in this phase including child frames.
    pub total_ns: u64,
    /// Frame invocations.
    pub count: u64,
    /// Work units (phase-specific, see [`Phase::work_unit`]).
    pub work: u64,
}

impl PhaseAgg {
    /// This phase's share of the report's covered wall-clock, in [0, 1].
    #[must_use]
    pub fn self_share(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            self.self_ns as f64 / wall_ns as f64
        }
    }
}

/// One path-keyed node of the frame tree, flattened for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportNode {
    /// Semicolon-joined phase path, e.g. `transient;newton_overhead`.
    pub stack: String,
    /// Self time of this node.
    pub self_ns: u64,
    /// Inclusive time of this node.
    pub total_ns: u64,
    /// Frame invocations at this path.
    pub count: u64,
    /// Work units at this path.
    pub work: u64,
}

/// A complete profile: per-phase aggregates plus the exact tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// What was profiled (e.g. `tspc_contour`).
    pub label: String,
    /// Wall-clock covered by top-level frames. Worker-thread frames merge
    /// in too, so under parallel sweeps this exceeds elapsed wall time
    /// (it is closer to CPU time).
    pub wall_ns: u64,
    /// Per-phase aggregates, sorted by descending self time.
    pub phases: Vec<PhaseAgg>,
    /// The flattened tree, depth-first.
    pub nodes: Vec<ReportNode>,
}

impl ProfileReport {
    /// Looks up one phase's aggregate row.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseAgg> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        json::push_str_field(&mut out, &mut first, "schema", SCHEMA);
        self.push_body(&mut out, &mut first);
        out.push_str("}\n");
        out
    }

    /// Renders the report as one element of a baseline `sections` array.
    fn push_body(&self, out: &mut String, first: &mut bool) {
        json::push_str_field(out, first, "label", &self.label);
        json::push_u64_field(out, first, "wall_ns", self.wall_ns);
        let mut phases = String::from("[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push('{');
            let mut pf = true;
            json::push_str_field(&mut phases, &mut pf, "phase", &p.phase);
            json::push_u64_field(&mut phases, &mut pf, "self_ns", p.self_ns);
            json::push_u64_field(&mut phases, &mut pf, "total_ns", p.total_ns);
            json::push_u64_field(&mut phases, &mut pf, "count", p.count);
            json::push_u64_field(&mut phases, &mut pf, "work", p.work);
            json::push_f64_field(
                &mut phases,
                &mut pf,
                "self_share",
                p.self_share(self.wall_ns),
            );
            phases.push('}');
        }
        phases.push(']');
        json::push_raw_field(out, first, "phases", &phases);
        let mut nodes = String::from("[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                nodes.push(',');
            }
            nodes.push('{');
            let mut nf = true;
            json::push_str_field(&mut nodes, &mut nf, "stack", &n.stack);
            json::push_u64_field(&mut nodes, &mut nf, "self_ns", n.self_ns);
            json::push_u64_field(&mut nodes, &mut nf, "total_ns", n.total_ns);
            json::push_u64_field(&mut nodes, &mut nf, "count", n.count);
            json::push_u64_field(&mut nodes, &mut nf, "work", n.work);
            nodes.push('}');
        }
        nodes.push(']');
        json::push_raw_field(out, first, "nodes", &nodes);
    }

    /// Parses a report written by [`to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(text: &str) -> Result<ProfileReport, String> {
        let schema = scan_string(text, "schema").ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want {SCHEMA})"));
        }
        Self::from_section(text)
    }

    /// Parses one report object (without checking the schema tag), as
    /// found inside a baseline's `sections` array.
    fn from_section(text: &str) -> Result<ProfileReport, String> {
        let label = scan_string(text, "label").ok_or("missing 'label'")?;
        let wall_ns = json::scan_u64(text, "wall_ns").ok_or("missing 'wall_ns'")?;
        let mut phases = Vec::new();
        for obj in array_objects(text, "phases").ok_or("missing 'phases'")? {
            phases.push(PhaseAgg {
                phase: scan_string(obj, "phase").ok_or("phase row missing 'phase'")?,
                self_ns: json::scan_u64(obj, "self_ns").ok_or("phase row missing 'self_ns'")?,
                total_ns: json::scan_u64(obj, "total_ns").ok_or("phase row missing 'total_ns'")?,
                count: json::scan_u64(obj, "count").ok_or("phase row missing 'count'")?,
                work: json::scan_u64(obj, "work").ok_or("phase row missing 'work'")?,
            });
        }
        let mut nodes = Vec::new();
        for obj in array_objects(text, "nodes").ok_or("missing 'nodes'")? {
            nodes.push(ReportNode {
                stack: scan_string(obj, "stack").ok_or("node row missing 'stack'")?,
                self_ns: json::scan_u64(obj, "self_ns").ok_or("node row missing 'self_ns'")?,
                total_ns: json::scan_u64(obj, "total_ns").ok_or("node row missing 'total_ns'")?,
                count: json::scan_u64(obj, "count").ok_or("node row missing 'count'")?,
                work: json::scan_u64(obj, "work").ok_or("node row missing 'work'")?,
            });
        }
        Ok(ProfileReport {
            label,
            wall_ns,
            phases,
            nodes,
        })
    }

    /// Collapsed-stack flamegraph export: one `path value` line per tree
    /// node, value = self time in ns. Loadable by `flamegraph.pl` /
    /// `inferno-flamegraph` as-is.
    #[must_use]
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            if node.self_ns > 0 {
                let _ = writeln!(out, "{} {}", node.stack, node.self_ns);
            }
        }
        out
    }

    /// Human-readable per-phase table, widest consumers: `--profile`
    /// output and DESIGN.md's measured sections.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} ({:.1} ms covered)",
            self.label,
            self.wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  {:<20} {:>10} {:>7} {:>10} {:>12} {:>14} {:>9}",
            "phase", "self ms", "self %", "total ms", "calls", "work", "ns/call"
        );
        for p in &self.phases {
            let per_call = if p.count == 0 {
                0.0
            } else {
                p.self_ns as f64 / p.count as f64
            };
            let work = if p.work == 0 {
                String::new()
            } else {
                let unit = Phase::from_name(&p.phase).map_or("", Phase::work_unit);
                format!("{} {}", p.work, unit)
            };
            let _ = writeln!(
                out,
                "  {:<20} {:>10.3} {:>6.1}% {:>10.3} {:>12} {:>14} {:>9.0}",
                p.phase,
                p.self_ns as f64 / 1e6,
                100.0 * p.self_share(self.wall_ns),
                p.total_ns as f64 / 1e6,
                p.count,
                work,
                per_call,
            );
        }
        out
    }
}

/// Renders a multi-section baseline file (`PROFILE_baseline.json`).
#[must_use]
pub fn render_baseline(sections: &[ProfileReport]) -> String {
    let mut out = String::from("{");
    let mut first = true;
    json::push_str_field(&mut out, &mut first, "schema", BASELINE_SCHEMA);
    let mut arr = String::from("[");
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push('{');
        let mut sf = true;
        section.push_body(&mut arr, &mut sf);
        arr.push('}');
    }
    arr.push(']');
    json::push_raw_field(&mut out, &mut first, "sections", &arr);
    out.push_str("}\n");
    out
}

/// Parses a baseline file written by [`render_baseline`].
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn parse_baseline(text: &str) -> Result<Vec<ProfileReport>, String> {
    let schema = scan_string(text, "schema").ok_or("missing 'schema'")?;
    if schema != BASELINE_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (want {BASELINE_SCHEMA})"
        ));
    }
    let mut sections = Vec::new();
    for obj in array_objects(text, "sections").ok_or("missing 'sections'")? {
        sections.push(ProfileReport::from_section(obj)?);
    }
    Ok(sections)
}

/// One phase's before/after comparison from [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Phase name.
    pub phase: String,
    /// Self-time share in the first profile, [0, 1].
    pub share_a: f64,
    /// Self-time share in the second profile, [0, 1].
    pub share_b: f64,
    /// Work units in the first profile.
    pub work_a: u64,
    /// Work units in the second profile.
    pub work_b: u64,
    /// Calls in the first / second profile.
    pub count_a: u64,
    /// Calls in the second profile.
    pub count_b: u64,
}

impl PhaseDelta {
    /// Share change in percentage points (positive = grew in `b`).
    #[must_use]
    pub fn share_delta_pp(&self) -> f64 {
        100.0 * (self.share_b - self.share_a)
    }
}

/// Compares two profiles phase-by-phase, sorted by |Δ share| descending.
#[must_use]
pub fn diff(a: &ProfileReport, b: &ProfileReport) -> Vec<PhaseDelta> {
    let mut names: Vec<&str> = a
        .phases
        .iter()
        .chain(b.phases.iter())
        .map(|p| p.phase.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut deltas: Vec<PhaseDelta> = names
        .into_iter()
        .map(|name| {
            let pa = a.phase(name);
            let pb = b.phase(name);
            PhaseDelta {
                phase: name.to_string(),
                share_a: pa.map_or(0.0, |p| p.self_share(a.wall_ns)),
                share_b: pb.map_or(0.0, |p| p.self_share(b.wall_ns)),
                work_a: pa.map_or(0, |p| p.work),
                work_b: pb.map_or(0, |p| p.work),
                count_a: pa.map_or(0, |p| p.count),
                count_b: pb.map_or(0, |p| p.count),
            }
        })
        .collect();
    deltas.sort_by(|x, y| {
        y.share_delta_pp()
            .abs()
            .partial_cmp(&x.share_delta_pp().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    deltas
}

/// Renders a [`diff`] as a text table.
#[must_use]
pub fn render_diff(a: &ProfileReport, b: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile diff: {} ({:.1} ms) -> {} ({:.1} ms)",
        a.label,
        a.wall_ns as f64 / 1e6,
        b.label,
        b.wall_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  {:<20} {:>8} {:>8} {:>8}  {:>12} {:>12}  {:>10} {:>10}",
        "phase", "a %", "b %", "Δpp", "a work", "b work", "a calls", "b calls"
    );
    for d in diff(a, b) {
        let _ = writeln!(
            out,
            "  {:<20} {:>7.1}% {:>7.1}% {:>+7.1}  {:>12} {:>12}  {:>10} {:>10}",
            d.phase,
            100.0 * d.share_a,
            100.0 * d.share_b,
            d.share_delta_pp(),
            d.work_a,
            d.work_b,
            d.count_a,
            d.count_b,
        );
    }
    out
}

/// Default share-ratchet tolerance, percentage points.
pub const DEFAULT_TOLERANCE_PP: f64 = 5.0;
/// Phases below this baseline share are exempt from the ratchet: their
/// shares are noise-dominated.
pub const RATCHET_MIN_SHARE: f64 = 0.02;

/// Checks `current` against `baseline` with the phase-share ratchet.
///
/// Every phase whose baseline self-time share is at least
/// [`RATCHET_MIN_SHARE`] must stay within `tolerance_pp` percentage
/// points of its baseline share, and no phase absent from the baseline
/// may appear above the tolerance. Returns the per-phase verdict lines;
/// `Err` lines are violations.
#[allow(clippy::result_large_err)]
pub fn check(
    current: &ProfileReport,
    baseline: &ProfileReport,
    tolerance_pp: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut ok_lines = Vec::new();
    let mut violations = Vec::new();
    for d in diff(baseline, current) {
        let ratcheted = d.share_a >= RATCHET_MIN_SHARE || d.share_b >= RATCHET_MIN_SHARE;
        if !ratcheted {
            continue;
        }
        let line = format!(
            "{}: {:.1}% (baseline {:.1}%, Δ{:+.1}pp, tol ±{:.1}pp)",
            d.phase,
            100.0 * d.share_b,
            100.0 * d.share_a,
            d.share_delta_pp(),
            tolerance_pp
        );
        if d.share_delta_pp().abs() <= tolerance_pp {
            ok_lines.push(format!("{line} OK"));
        } else {
            violations.push(line);
        }
    }
    if violations.is_empty() {
        Ok(ok_lines)
    } else {
        Err(violations)
    }
}

/// Scans a JSON string value (no escape handling beyond the writer's:
/// the strings this crate emits are labels and phase names).
fn scan_string(text: &str, key: &str) -> Option<String> {
    let raw = json::raw_value(text, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Splits `"key":[{...},{...}]` into its top-level object slices,
/// tracking brace/bracket depth so nested arrays inside the objects
/// don't confuse the split. Only handles the JSON this crate writes (no
/// braces inside strings).
fn array_objects<'a>(text: &'a str, key: &str) -> Option<Vec<&'a str>> {
    let needle = format!("\"{key}\":[");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => {
                if depth == 0 && c == '{' {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' | ']' => {
                if depth == 0 {
                    // Closing bracket of the array itself.
                    return Some(objects);
                }
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = obj_start.take() {
                        objects.push(&rest[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: &str, eval_ns: u64, solve_ns: u64) -> ProfileReport {
        ProfileReport {
            label: label.to_string(),
            wall_ns: eval_ns + solve_ns,
            phases: vec![
                PhaseAgg {
                    phase: "device_eval".into(),
                    self_ns: eval_ns,
                    total_ns: eval_ns,
                    count: 10,
                    work: 120,
                },
                PhaseAgg {
                    phase: "lu_solve".into(),
                    self_ns: solve_ns,
                    total_ns: solve_ns,
                    count: 30,
                    work: 0,
                },
            ],
            nodes: vec![
                ReportNode {
                    stack: "transient;device_eval".into(),
                    self_ns: eval_ns,
                    total_ns: eval_ns,
                    count: 10,
                    work: 120,
                },
                ReportNode {
                    stack: "transient;lu_solve".into(),
                    self_ns: solve_ns,
                    total_ns: solve_ns,
                    count: 30,
                    work: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample("tspc_contour", 700, 300);
        let parsed = ProfileReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn baseline_round_trips_sections() {
        let a = sample("tspc_contour", 700, 300);
        let b = sample("surface_sweep", 900, 100);
        let text = render_baseline(&[a.clone(), b.clone()]);
        let parsed = parse_baseline(&text).expect("parses");
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn folded_lines_carry_full_stacks() {
        let folded = sample("x", 700, 300).to_folded();
        assert!(folded.contains("transient;device_eval 700"));
        assert!(folded.contains("transient;lu_solve 300"));
    }

    #[test]
    fn diff_ranks_by_share_movement() {
        let a = sample("a", 700, 300);
        let b = sample("b", 300, 700);
        let deltas = diff(&a, &b);
        assert_eq!(deltas[0].share_delta_pp().abs(), 40.0);
        let rendered = render_diff(&a, &b);
        assert!(rendered.contains("device_eval"));
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_outside() {
        let base = sample("base", 700, 300);
        let same = sample("cur", 690, 310);
        assert!(check(&same, &base, 5.0).is_ok());
        let shifted = sample("cur", 300, 700);
        let violations = check(&shifted, &base, 5.0).expect_err("must fail");
        assert!(violations.iter().any(|v| v.contains("device_eval")));
    }

    #[test]
    fn check_ignores_noise_phases() {
        let mut base = sample("base", 980, 0);
        base.phases[1].self_ns = 10; // 1% share: exempt
        base.wall_ns = 990;
        let mut cur = sample("cur", 980, 0);
        cur.phases[1].self_ns = 19;
        cur.wall_ns = 999;
        assert!(check(&cur, &base, 5.0).is_ok());
    }

    #[test]
    fn table_mentions_every_phase() {
        let table = sample("x", 700, 300).table();
        assert!(table.contains("device_eval"));
        assert!(table.contains("lu_solve"));
        assert!(table.contains("device evals"));
    }
}
