//! Profile report tool: differential comparison and the share ratchet.
//!
//! ```text
//! shc-prof diff a.json b.json
//! shc-prof check current.json --baseline PROFILE_baseline.json \
//!     [--section <label>] [--tol-pp <pp>]
//! ```
//!
//! `diff` prints a phase-by-phase table of self-time-share and work-unit
//! movement between two profiles. `check` enforces the phase-share
//! ratchet against a committed baseline (either a single report or a
//! multi-section `PROFILE_baseline.json`); it exits non-zero when any
//! ratcheted phase drifts beyond the tolerance, which is how the CI
//! `profile-smoke` job catches silent hot-path regressions.

use std::process::ExitCode;

use shc_prof::{parse_baseline, render_diff, ProfileReport, DEFAULT_TOLERANCE_PP};

const USAGE: &str = "usage:\n  shc-prof diff <a.json> <b.json>\n  shc-prof check <current.json> --baseline <baseline.json> [--section <label>] [--tol-pp <pp>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shc-prof: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => {
            let [a_path, b_path] = &args[1..] else {
                return Err(USAGE.into());
            };
            let a = load_report(a_path)?;
            let b = load_report(b_path)?;
            print!("{}", render_diff(&a, &b));
            Ok(ExitCode::SUCCESS)
        }
        Some("check") => {
            let current_path = args.get(1).filter(|a| !a.starts_with("--")).ok_or(USAGE)?;
            let flag_value = |flag: &str| {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let baseline_path = flag_value("--baseline").ok_or(USAGE)?;
            let tolerance_pp: f64 = match flag_value("--tol-pp") {
                Some(v) => v.parse().map_err(|_| "invalid --tol-pp")?,
                None => DEFAULT_TOLERANCE_PP,
            };
            let current = load_report(current_path)?;
            let baseline = load_baseline_section(
                &baseline_path,
                flag_value("--section").as_deref().unwrap_or(&current.label),
            )?;
            match shc_prof::check(&current, &baseline, tolerance_pp) {
                Ok(lines) => {
                    for line in lines {
                        println!("{line}");
                    }
                    println!("phase-share ratchet passed ({})", current.label);
                    Ok(ExitCode::SUCCESS)
                }
                Err(violations) => {
                    for line in violations {
                        eprintln!("RATCHET VIOLATION {line}");
                    }
                    eprintln!(
                        "phase-share ratchet failed; if the shift is intentional, \
                         regenerate and commit the baseline (profile_smoke --write-baseline)"
                    );
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        _ => Err(USAGE.into()),
    }
}

fn load_report(path: &str) -> Result<ProfileReport, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ProfileReport::from_json(&text).map_err(|e| format!("{path}: {e}").into())
}

/// Loads `label`'s section from a baseline file, accepting a plain
/// single-report file too.
fn load_baseline_section(
    path: &str,
    label: &str,
) -> Result<ProfileReport, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(report) = ProfileReport::from_json(&text) {
        return Ok(report);
    }
    let sections = parse_baseline(&text).map_err(|e| format!("{path}: {e}"))?;
    sections
        .into_iter()
        .find(|s| s.label == label)
        .ok_or_else(|| format!("{path}: no section labeled '{label}'").into())
}
