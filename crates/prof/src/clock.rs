//! The profiler's clock: raw ticks, calibrated to nanoseconds once.
//!
//! Frames bracket regions measured in hundreds of nanoseconds (a dense LU
//! solve on a latch-sized system), so the per-read cost of the clock *is*
//! the profiler's overhead floor. On x86_64 we read the invariant TSC
//! directly (~6 ns); elsewhere we fall back to `Instant`, which is the
//! vDSO `clock_gettime` on the platforms this workspace targets.
//!
//! Ticks are converted to nanoseconds only at report time, using a
//! once-per-process calibration against `Instant`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Reads the raw clock. Monotonic within a run; unit is "ticks", convert
/// with [`ticks_to_ns`].
///
/// effects: none
#[inline]
#[must_use]
pub fn ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` has no preconditions; it reads the time-stamp
        // counter, invariant and core-synchronized on every x86_64 this
        // workspace targets.
        unsafe { core::arch::x86_64::_rdtsc() } // lint: allow(hot-path-certify, reason = "the profiler's clock primitive: instruments measure the hot path by design, and certification audits the workload, not the measurement")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // lint: allow(hot-path-certify, reason = "the profiler's clock primitive: instruments measure the hot path by design, and certification audits the workload, not the measurement")
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // One sanctioned wall-clock read (clippy.toml): this is the
    // profiler's time source on non-x86_64 targets.
    #[allow(clippy::disallowed_methods)]
    EPOCH.get_or_init(Instant::now)
}

/// Ticks per nanosecond, calibrated once per process.
///
/// The first call spins for ~2 ms measuring the TSC against `Instant`;
/// every later call is a `OnceLock` load. Call it eagerly (it is invoked
/// from [`crate::install_scoped`]) so the spin never lands inside a
/// measured region.
#[must_use]
pub fn ticks_per_ns() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(calibrate)
}

/// Converts raw ticks to nanoseconds.
#[must_use]
pub fn ticks_to_ns(t: u64) -> u64 {
    let ns = t as f64 / ticks_per_ns();
    if ns.is_finite() && ns >= 0.0 {
        ns as u64
    } else {
        0
    }
}

fn calibrate() -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        // One sanctioned wall-clock read pair (clippy.toml): calibrating
        // the TSC is the reason this crate may touch `Instant` at all.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let c0 = ticks();
        while start.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let c1 = ticks();
        let dt = start.elapsed().as_nanos() as f64;
        let rate = (c1.wrapping_sub(c0)) as f64 / dt;
        // A TSC slower than 100 MHz or faster than 100 GHz means the
        // calibration itself misfired; fall back to treating ticks as ns
        // rather than producing absurd reports.
        if rate.is_finite() && (0.1..=100.0).contains(&rate) {
            rate
        } else {
            1.0
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        1.0 // the fallback clock already counts nanoseconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_enough() {
        let a = ticks();
        let b = ticks();
        assert!(b >= a);
    }

    #[test]
    fn calibration_is_sane() {
        let rate = ticks_per_ns();
        assert!(rate.is_finite() && rate > 0.0);
        // ~1 ms of spinning should convert to roughly 1 ms of ns.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let c0 = ticks();
        while start.elapsed() < Duration::from_millis(1) {
            std::hint::spin_loop();
        }
        let measured = ticks_to_ns(ticks().wrapping_sub(c0)) as f64;
        let actual = start.elapsed().as_nanos() as f64;
        assert!(
            (measured / actual - 1.0).abs() < 0.25,
            "ticks_to_ns off by more than 25%: {measured} vs {actual}"
        );
    }
}
