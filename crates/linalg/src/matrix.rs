use std::cell::Cell;
use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::{LinalgError, LuFactor, QrFactor, Result, Vector};

thread_local! {
    /// Per-thread count of matrix buffer allocations.
    static MATRIX_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of linear-algebra buffer allocations performed by the *current
/// thread* so far.
///
/// Every constructor that allocates a fresh backing buffer increments this
/// counter; in-place operations (`copy_from`, `axpy`, `scale_mut`,
/// `fill_zero`, …) do not. Dense `Matrix` buffers (`zeros`, `from_*`,
/// `identity`, the out-of-place arithmetic ops, and `Clone`) and sparse
/// buffers (`CsrMatrix` construction and `Clone`, `SparseLu` symbolic
/// analysis and fresh numeric factors) all pass through the same funnel, so
/// a warm loop that is clean under this counter allocates on *neither*
/// path. Tests use the difference between two readings to pin down "no
/// allocation in this hot loop" guarantees. The counter is thread-local so
/// concurrent tests and parallel sweep workers cannot perturb each other's
/// readings.
pub fn matrix_allocations() -> u64 {
    MATRIX_ALLOCATIONS.with(|c| c.get())
}

/// Shared funnel for every buffer-allocating constructor in this crate:
/// bumps the thread-local counter and mirrors it to telemetry. Dense
/// [`Matrix`] construction, sparse `CsrMatrix` construction, and `SparseLu`
/// symbolic/numeric factor storage all report here so the warm-loop
/// allocation assertions see sparse and dense buffers alike.
pub(crate) fn note_buffer_allocation() {
    // lint: allow(thread-local-discipline, reason = "monotonic per-thread counter, not an installable override; read back only by this thread's tests")
    MATRIX_ALLOCATIONS.with(|c| c.set(c.get() + 1));
    shc_obs::count(shc_obs::Metric::MatrixAllocations, 1);
}

/// A dense, row-major matrix of `f64`.
///
/// This is the storage used for MNA conductance/capacitance matrices and for
/// the small Jacobians of the MPNR solver.
///
/// # Example
///
/// ```rust
/// use shc_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), shc_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let v = Vector::from_slice(&[3.0, -1.0]);
/// assert_eq!(a.mul_vec(&v), v);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

// `Clone` is implemented by hand (not derived) so that clones pass through
// the allocation counter like every other buffer-allocating constructor.
impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix::tracked(self.rows, self.cols, self.data.clone())
    }

    fn clone_from(&mut self, source: &Self) {
        if self.shape() == source.shape() {
            self.data.copy_from_slice(&source.data);
        } else {
            *self = source.clone();
        }
    }
}

impl Matrix {
    /// Single funnel for freshly allocated backing buffers.
    fn tracked(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        note_buffer_allocation();
        Matrix { rows, cols, data }
    }

    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::tracked(rows, cols, vec![0.0; rows * cols])
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "from_rows: no rows",
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidInput {
                reason: "from_rows: zero columns",
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidInput {
                    reason: "from_rows: ragged rows",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix::tracked(rows.len(), cols, data))
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput {
                reason: "from_vec: buffer length does not match shape",
            });
        }
        Ok(Matrix::tracked(rows, cols, data))
    }

    /// Builds a matrix whose columns are the given vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `cols` is empty or the
    /// vectors have differing lengths.
    pub fn from_cols(cols: &[Vector]) -> Result<Self> {
        if cols.is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "from_cols: no columns",
            });
        }
        let n = cols[0].len();
        if cols.iter().any(|c| c.len() != n) {
            return Err(LinalgError::InvalidInput {
                reason: "from_cols: ragged columns",
            });
        }
        let mut m = Matrix::zeros(n, cols.len());
        for (j, c) in cols.iter().enumerate() {
            for i in 0..n {
                m[(i, j)] = c[i];
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index {j} out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Adds `value` to entry `(i, j)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_at(&mut self, i: usize, j: usize, value: f64) {
        let c = self.cols;
        assert!(
            i < self.rows && j < c,
            "add_at: index ({i},{j}) out of range"
        );
        self.data[i * c + j] += value;
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix–vector product `A·v` into a caller-provided buffer
    /// (no allocation). `v` and `out` may not alias.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec: output length mismatch");
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[i] = acc;
        }
    }

    /// Transposed matrix–vector product `Aᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn mul_vec_transposed(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            for j in 0..self.cols {
                out[j] += self[(i, j)] * vi;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "mul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Entrywise sum `A + B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix::tracked(self.rows, self.cols, data))
    }

    /// Entrywise difference `A − B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix::tracked(self.rows, self.cols, data))
    }

    /// Scaled copy `s·A`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix::tracked(
            self.rows,
            self.cols,
            self.data.iter().map(|a| a * s).collect(),
        )
    }

    /// In-place scaling `self *= s`.
    pub fn scale_mut(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Copies `other`'s entries into `self` without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "copy_from",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// In-place scaled accumulation `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns the transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum); `0.0` for an empty matrix.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input or
    /// [`LinalgError::Singular`] if a pivot underflows.
    pub fn lu(&self) -> Result<LuFactor> {
        LuFactor::new(self)
    }

    /// Householder QR factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the matrix has more columns
    /// than rows (use the transpose for underdetermined systems).
    pub fn qr(&self) -> Result<QrFactor> {
        QrFactor::new(self)
    }

    /// Solves `A·x = b` via LU.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        self.lu()?.solve(b)
    }

    /// Computes the inverse `A⁻¹` via LU.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Matrix> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let x = lu.solve(&Vector::unit(n, j))?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Ok(inv)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_shapes() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(Matrix::identity(3).is_square());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_cols_builds_column_major() {
        let c0 = Vector::from_slice(&[1.0, 2.0]);
        let c1 = Vector::from_slice(&[3.0, 4.0]);
        let m = Matrix::from_cols(&[c0, c1]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn identity_is_mul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.mul_vec(&v).as_slice(), &[3.0, 7.0]);
        assert_eq!(a.mul_vec_transposed(&v).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-12));
            }
        }
    }

    #[test]
    fn add_sub_scale_axpy() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s[(0, 1)], 2.0);
        let d = s.sub(&b).unwrap();
        assert_eq!(d, a);
        assert_eq!(a.scale(3.0)[(1, 1)], 3.0);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c[(1, 0)], 6.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(a.norm_frobenius(), 5.0);
        assert_eq!(a.norm_inf(), 7.0);
    }

    #[test]
    fn stamp_primitive_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_at(0, 0, 1.5);
        m.add_at(0, 0, 0.5);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn checked_get() {
        let m = Matrix::identity(2);
        assert_eq!(m.get(1, 1), Some(1.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn row_col_views() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn finiteness() {
        let mut a = Matrix::identity(2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn copy_from_and_scale_mut_do_not_allocate() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let mut dst = Matrix::zeros(2, 2);
        let before = matrix_allocations();
        dst.copy_from(&src).unwrap();
        dst.scale_mut(2.0);
        assert_eq!(matrix_allocations(), before);
        assert_eq!(dst[(1, 0)], 6.0);
        assert!(dst.copy_from(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn allocation_counter_tracks_constructors_and_clone() {
        let before = matrix_allocations();
        let a = Matrix::zeros(2, 2);
        let _b = a.clone();
        let _c = a.scale(2.0);
        let _d = a.add(&a).unwrap();
        assert_eq!(matrix_allocations(), before + 4);
    }
}
