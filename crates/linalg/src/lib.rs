//! # shc-linalg
//!
//! Dense linear-algebra substrate for the setup/hold characterization tool.
//!
//! The circuit matrices in this project are small (tens of unknowns), so a
//! compact, dependency-free dense implementation is both sufficient and easy
//! to audit. The crate provides:
//!
//! - [`Matrix`] and [`Vector`]: row-major dense storage with the usual
//!   arithmetic and iteration APIs;
//! - [`LuFactor`]: LU factorization with partial pivoting, solves, the
//!   determinant, and a cheap condition-number estimate — this backs the
//!   small-circuit Newton-Raphson linear solves in the simulator;
//! - [`BatchLu`]: many same-dimension dense LU factorizations packed into
//!   one contiguous allocation, factored one lane per call — used where
//!   batched work arrives lane-at-a-time (the sensitivity recursion);
//! - [`SoaLu`]: the structure-of-arrays variant — element-major factors
//!   processed for *all* lanes per call so the elimination vectorizes
//!   across lanes (see [`multiversioned!`]) — the linear-solve substrate
//!   of the lockstep batched sweep engine, bitwise identical per lane to
//!   [`LuFactor`];
//! - [`SparseLu`]: KLU-style sparse-direct LU over [`CsrMatrix`] storage —
//!   fill-reducing ordering, one-time symbolic analysis, allocation-free
//!   value-only refactorization — the large-circuit solve path;
//! - [`QrFactor`]: Householder QR, used for least-squares and for the
//!   general Moore-Penrose pseudo-inverse;
//! - [`pinv`]: Moore-Penrose pseudo-inverse for full-row-rank "fat"
//!   matrices, the key ingredient of the MPNR solver of the DAC 2007 paper
//!   (its eq. (15): `H⁺ = Hᵀ (H Hᵀ)⁻¹`).
//!
//! # Example
//!
//! ```rust
//! use shc_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), shc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 5.0]);
//! let lu = a.lu()?;
//! let x = lu.solve(&b)?;
//! assert!(a.mul_vec(&x).sub(&b).norm_inf() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod batch_lu;
mod error;
mod lu;
mod matrix;
mod pinv;
mod qr;
mod simd;
mod soa_lu;
mod sparse;
mod sparse_lu;
mod vector;

pub use batch_lu::BatchLu;
pub use error::LinalgError;
pub use lu::LuFactor;
pub use matrix::{matrix_allocations, Matrix};
pub use pinv::{pinv, pinv_fat, PseudoInverse};
pub use qr::QrFactor;
// The retired ILU(0)/GMRES iterative stack stays in `sparse` (compiled and
// unit-tested) but is deliberately not re-exported; `SparseLu` is the
// supported sparse solve path.
pub use soa_lu::SoaLu;
pub use sparse::CsrMatrix;
pub use sparse_lu::SparseLu;
pub use vector::Vector;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
