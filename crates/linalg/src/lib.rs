//! # shc-linalg
//!
//! Dense linear-algebra substrate for the setup/hold characterization tool.
//!
//! The circuit matrices in this project are small (tens of unknowns), so a
//! compact, dependency-free dense implementation is both sufficient and easy
//! to audit. The crate provides:
//!
//! - [`Matrix`] and [`Vector`]: row-major dense storage with the usual
//!   arithmetic and iteration APIs;
//! - [`LuFactor`]: LU factorization with partial pivoting, solves, the
//!   determinant, and a cheap condition-number estimate — this backs every
//!   Newton-Raphson linear solve in the simulator;
//! - [`QrFactor`]: Householder QR, used for least-squares and for the
//!   general Moore-Penrose pseudo-inverse;
//! - [`pinv`]: Moore-Penrose pseudo-inverse for full-row-rank "fat"
//!   matrices, the key ingredient of the MPNR solver of the DAC 2007 paper
//!   (its eq. (15): `H⁺ = Hᵀ (H Hᵀ)⁻¹`).
//!
//! # Example
//!
//! ```rust
//! use shc_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), shc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 5.0]);
//! let lu = a.lu()?;
//! let x = lu.solve(&b)?;
//! assert!(a.mul_vec(&x).sub(&b).norm_inf() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod lu;
mod matrix;
mod pinv;
mod qr;
mod sparse;
mod vector;

pub use error::LinalgError;
pub use lu::LuFactor;
pub use matrix::{matrix_allocations, Matrix};
pub use pinv::{pinv, pinv_fat, PseudoInverse};
pub use qr::QrFactor;
pub use sparse::{gmres, CsrMatrix, GmresOptions, GmresResult, Ilu0};
pub use vector::Vector;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
