//! Moore-Penrose pseudo-inverse.
//!
//! The MPNR solver of the DAC 2007 paper needs `H⁺` for the 1×2 Jacobian
//! `H = [∂h/∂τs, ∂h/∂τh]` (its eq. (15)): `H⁺ = Hᵀ (H Hᵀ)⁻¹`. This module
//! implements that formula for general full-row-rank fat matrices and a
//! dispatching [`pinv`] that also covers tall full-column-rank matrices via
//! `(AᵀA)⁻¹Aᵀ` computed stably through QR.

use crate::{LinalgError, Matrix, Result, Vector};

/// The Moore-Penrose pseudo-inverse of a matrix, together with metadata
/// about which branch produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct PseudoInverse {
    /// The pseudo-inverse matrix `A⁺` (shape `n × m` for an `m × n` input).
    pub matrix: Matrix,
    /// Whether the input was treated as fat (`m < n`, full row rank) or
    /// tall/square (`m ≥ n`, full column rank).
    pub fat: bool,
}

/// Computes the pseudo-inverse of a *fat* full-row-rank matrix
/// (`m ≤ n`): `A⁺ = Aᵀ (A Aᵀ)⁻¹`.
///
/// This is exactly the paper's eq. (15); for the 1×2 MPNR Jacobian the inner
/// inverse is a scalar.
///
/// # Errors
///
/// - [`LinalgError::InvalidInput`] if `m > n`;
/// - [`LinalgError::RankDeficient`] if `A Aᵀ` is singular (rows dependent).
///
/// # Example
///
/// ```rust
/// use shc_linalg::{pinv_fat, Matrix};
///
/// # fn main() -> Result<(), shc_linalg::LinalgError> {
/// let h = Matrix::from_rows(&[&[3.0, 4.0]])?; // 1x2 Jacobian
/// let hp = pinv_fat(&h)?;
/// // H·H⁺ = 1 for full-row-rank H.
/// let prod = h.mul(&hp)?;
/// assert!((prod[(0, 0)] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pinv_fat(a: &Matrix) -> Result<Matrix> {
    shc_obs::count(shc_obs::Metric::PinvSolves, 1);
    let (m, n) = a.shape();
    if m > n {
        return Err(LinalgError::InvalidInput {
            reason: "pinv_fat: matrix has more rows than columns",
        });
    }
    let at = a.transpose();
    let aat = a.mul(&at)?;
    let inv = aat.inverse().map_err(|e| match e {
        LinalgError::Singular { pivot, .. } => LinalgError::RankDeficient {
            rank: pivot,
            required: m,
        },
        other => other,
    })?;
    at.mul(&inv)
}

/// Computes the Moore-Penrose pseudo-inverse of a full-rank matrix,
/// dispatching on shape:
///
/// - fat (`m < n`): `Aᵀ (A Aᵀ)⁻¹` (right inverse);
/// - tall or square (`m ≥ n`): least-squares left inverse via Householder QR.
///
/// # Errors
///
/// Returns [`LinalgError::RankDeficient`] if the matrix does not have full
/// rank, or construction errors for empty input.
pub fn pinv(a: &Matrix) -> Result<PseudoInverse> {
    let (m, n) = a.shape();
    if m < n {
        Ok(PseudoInverse {
            matrix: pinv_fat(a)?,
            fat: true,
        })
    } else {
        // Solve A⁺ column-by-column: A⁺ e_i = argmin ‖A x − e_i‖.
        let qr = a.qr()?;
        let mut cols = Vec::with_capacity(m);
        for i in 0..m {
            cols.push(qr.solve_least_squares(&Vector::unit(m, i))?);
        }
        Ok(PseudoInverse {
            matrix: Matrix::from_cols(&cols)?,
            fat: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_penrose(a: &Matrix, ap: &Matrix, tol: f64) {
        // The four Penrose conditions.
        let a_ap = a.mul(ap).unwrap();
        let ap_a = ap.mul(a).unwrap();
        // 1) A A⁺ A = A
        let c1 = a_ap.mul(a).unwrap().sub(a).unwrap().norm_inf();
        // 2) A⁺ A A⁺ = A⁺
        let c2 = ap_a.mul(ap).unwrap().sub(ap).unwrap().norm_inf();
        // 3) (A A⁺)ᵀ = A A⁺
        let c3 = a_ap.transpose().sub(&a_ap).unwrap().norm_inf();
        // 4) (A⁺ A)ᵀ = A⁺ A
        let c4 = ap_a.transpose().sub(&ap_a).unwrap().norm_inf();
        assert!(c1 < tol, "Penrose 1 violated: {c1}");
        assert!(c2 < tol, "Penrose 2 violated: {c2}");
        assert!(c3 < tol, "Penrose 3 violated: {c3}");
        assert!(c4 < tol, "Penrose 4 violated: {c4}");
    }

    #[test]
    fn fat_1x2_matches_paper_formula() {
        // H = [a, b] => H⁺ = [a; b] / (a² + b²).
        let h = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let hp = pinv_fat(&h).unwrap();
        assert!((hp[(0, 0)] - 3.0 / 25.0).abs() < 1e-15);
        assert!((hp[(1, 0)] - 4.0 / 25.0).abs() < 1e-15);
        check_penrose(&h, &hp, 1e-12);
    }

    #[test]
    fn fat_2x4_penrose_conditions() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0, -1.0], &[0.0, 1.0, 1.0, 3.0]]).unwrap();
        let p = pinv(&a).unwrap();
        assert!(p.fat);
        check_penrose(&a, &p.matrix, 1e-10);
    }

    #[test]
    fn tall_3x2_penrose_conditions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let p = pinv(&a).unwrap();
        assert!(!p.fat);
        check_penrose(&a, &p.matrix, 1e-10);
    }

    #[test]
    fn square_pinv_equals_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let inv = a.inverse().unwrap();
        assert!(p.matrix.sub(&inv).unwrap().norm_inf() < 1e-12);
    }

    #[test]
    fn rank_deficient_fat_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]]).unwrap();
        assert!(matches!(
            pinv_fat(&a),
            Err(LinalgError::RankDeficient { .. }) | Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn pinv_fat_rejects_tall_input() {
        let a = Matrix::zeros(3, 2);
        assert!(pinv_fat(&a).is_err());
    }

    #[test]
    fn mpnr_step_moves_to_nearest_solution() {
        // For scalar h(τ) = Hτ − c with H fat, the MPNR step from τ0 lands on
        // the solution closest to τ0 — the geometric property (point B in the
        // paper's Fig. 4) that makes MPNR attractive.
        let h = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(); // h(τ) = τ1 + τ2 − 2
        let hp = pinv_fat(&h).unwrap();
        let tau0 = Vector::from_slice(&[3.0, 1.0]);
        let hval = tau0[0] + tau0[1] - 2.0;
        let step = hp.mul_vec(&Vector::from_slice(&[hval]));
        let tau1 = tau0.sub(&step);
        // Solution line: τ1 + τ2 = 2; closest point to (3,1) is (2,0).
        assert!((tau1[0] - 2.0).abs() < 1e-12);
        assert!((tau1[1] - 0.0).abs() < 1e-12);
    }
}
